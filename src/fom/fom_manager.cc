#include "src/fom/fom_manager.h"

#include <algorithm>

namespace o1mem {

FomManager::FomManager(Machine* machine, Pmfs* pmfs, const FomConfig& config)
    : machine_(machine), pmfs_(pmfs), config_(config) {
  O1_CHECK(machine != nullptr && pmfs != nullptr);
  O1_CHECK(IsAligned(config.map_region_base, kLargePageSize));
}

std::unique_ptr<FomProcess> FomManager::CreateProcess() {
  auto proc = std::unique_ptr<FomProcess>(new FomProcess(machine_->CreateAddressSpace()));
  // ASLR-like per-process stagger: without PBM, nothing guarantees two
  // processes map a file at the same address (the premise of Sec. 4.2).
  const uint64_t slot = proc->address_space().asid() % 512;
  proc->bump_ = config_.map_region_base + slot * (config_.map_region_bytes / 512);
  return proc;
}

Status FomManager::ExitProcess(FomProcess& proc) {
  // Reclamation in units of files: drop every mapping; no page scans.
  while (!proc.mappings_.empty()) {
    O1_RETURN_IF_ERROR(Unmap(proc, proc.mappings_.begin()->first));
  }
  return OkStatus();
}

Result<InodeId> FomManager::CreateSegment(std::string_view path, uint64_t bytes,
                                          const SegmentOptions& options) {
  if (bytes == 0) {
    return InvalidArgument("zero-byte segment");
  }
  auto inode = pmfs_->Create(path, options.flags);
  if (!inode.ok()) {
    return inode;
  }
  Status grow = options.require_single_extent ? pmfs_->ResizeSingleExtent(*inode, bytes)
                                              : pmfs_->Resize(*inode, bytes);
  if (!grow.ok()) {
    (void)pmfs_->Unlink(path);
    return grow;
  }
  if (config_.precreate_page_tables) {
    auto tables = TablesFor(*inode);
    if (!tables.ok()) {
      (void)pmfs_->Unlink(path);
      return tables.status();
    }
  }
  return inode;
}

Result<InodeId> FomManager::OpenSegment(std::string_view path) {
  return pmfs_->LookupPath(path);
}

Status FomManager::DeleteSegment(std::string_view path) {
  auto inode = pmfs_->LookupPath(path);
  if (inode.ok()) {
    tables_.erase(*inode);
  }
  return pmfs_->Unlink(path);
}

Result<const PrecreatedTables*> FomManager::TablesFor(InodeId inode) {
  auto it = tables_.find(inode);
  if (it != tables_.end()) {
    return const_cast<const PrecreatedTables*>(&it->second);
  }
  auto extents = pmfs_->Extents(inode);
  if (!extents.ok()) {
    return extents.status();
  }
  auto stat = pmfs_->Stat(inode);
  if (!stat.ok()) {
    return stat.status();
  }
  auto tables = BuildPrecreatedTables(&machine_->ctx(), &machine_->phys(), *extents,
                                      AlignUp(stat->size, kPageSize), stat->persistent);
  if (!tables.ok()) {
    return tables.status();
  }
  auto [inserted, ok] = tables_.emplace(inode, std::move(tables).value());
  O1_CHECK(ok);
  return const_cast<const PrecreatedTables*>(&inserted->second);
}

Result<Vaddr> FomManager::PickVaddr(FomProcess& proc, uint64_t bytes, const MapOptions& options,
                                    MapMechanism mech, InodeId inode) {
  if (mech == MapMechanism::kPbm) {
    // Physically based mapping: the VA is derived from the extent's physical
    // address, identical in every process (Sec. 4.2).
    auto extents = pmfs_->Extents(inode);
    if (!extents.ok()) {
      return extents.status();
    }
    if (extents->size() != 1) {
      return Unsupported("PBM requires a single-extent file");
    }
    return config_.pbm_base + extents->front().paddr;
  }
  if (options.fixed_vaddr.has_value()) {
    const Vaddr fixed = *options.fixed_vaddr;
    if (mech == MapMechanism::kPtSplice && !IsAligned(fixed, kLargePageSize)) {
      return InvalidArgument("kPtSplice requires a 2 MiB aligned vaddr");
    }
    // Reject overlap with an existing mapping.
    auto next = proc.mappings_.upper_bound(fixed);
    if (next != proc.mappings_.end() && next->first < fixed + bytes) {
      return AlreadyExists("fixed vaddr overlaps a mapping");
    }
    if (next != proc.mappings_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second.bytes > fixed) {
        return AlreadyExists("fixed vaddr overlaps a mapping");
      }
    }
    return fixed;
  }
  // Aligned bump allocation; mappings are dense enough for the benches and
  // address-space size makes reuse optional. Gigabyte-class splice mappings
  // take 1 GiB alignment so the level-2 fast path applies.
  const uint64_t align =
      mech == MapMechanism::kPtSplice && bytes >= BytesPerNode(2) ? BytesPerNode(2)
                                                                  : kLargePageSize;
  const Vaddr vaddr = AlignUp(proc.bump_, align);
  const uint64_t reserve = AlignUp(bytes, kLargePageSize);
  if (vaddr + reserve > config_.map_region_base + config_.map_region_bytes) {
    return OutOfMemory("FOM map region exhausted");
  }
  proc.bump_ = vaddr + reserve;
  return vaddr;
}

Status FomManager::InstallRange(FomProcess& proc, Vaddr vaddr, InodeId inode, Prot prot,
                                FomProcess::Mapping* record) {
  auto extents = pmfs_->Extents(inode);
  if (!extents.ok()) {
    return extents.status();
  }
  SimContext& ctx = machine_->ctx();
  for (const FileExtentView& e : *extents) {
    const RangeEntry entry{.vbase = vaddr + e.file_offset,
                           .bytes = e.bytes,
                           .pbase = e.paddr,
                           .prot = prot};
    Status s = proc.as_->range_table().Insert(entry);
    if (!s.ok()) {
      return s;
    }
    ctx.Charge(ctx.cost().range_entry_install_cycles);
    ctx.counters().range_entries_installed++;
    record->range_bases.push_back(entry.vbase);
  }
  return OkStatus();
}

Status FomManager::InstallSplice(FomProcess& proc, Vaddr vaddr, InodeId inode, Prot prot,
                                 FomProcess::Mapping* record) {
  auto tables = TablesFor(inode);
  if (!tables.ok()) {
    return tables.status();
  }
  const std::vector<NodeRef>& l1 = (*tables)->ForProt(prot);
  const std::vector<NodeRef>& l2 = (*tables)->ForProtL2(prot);
  size_t window = 0;
  // Level-2 splices (one store per GiB) when the target address is 1 GiB
  // aligned -- the "1GB" natural granularity of Sec. 3.1.
  if (IsAligned(vaddr, BytesPerNode(2))) {
    for (size_t g = 0; g < l2.size(); ++g) {
      const Vaddr at = vaddr + g * BytesPerNode(2);
      O1_RETURN_IF_ERROR(proc.as_->page_table().SpliceSubtree(at, /*level=*/2, l2[g]));
      record->splices.emplace_back(at, 2);
      window += kPtEntriesPerNode;
    }
  }
  for (; window < l1.size(); ++window) {
    const Vaddr at = vaddr + window * BytesPerNode(1);
    O1_RETURN_IF_ERROR(proc.as_->page_table().SpliceSubtree(at, /*level=*/1, l1[window]));
    record->splices.emplace_back(at, 1);
  }
  return OkStatus();
}

Status FomManager::InstallPerPage(FomProcess& proc, Vaddr vaddr, InodeId inode, Prot prot,
                                  FomProcess::Mapping* record) {
  auto extents = pmfs_->Extents(inode);
  if (!extents.ok()) {
    return extents.status();
  }
  for (const FileExtentView& e : *extents) {
    for (uint64_t off = 0; off < e.bytes; off += kPageSize) {
      O1_RETURN_IF_ERROR(proc.as_->page_table().MapPage(vaddr + e.file_offset + off,
                                                        e.paddr + off, kPageSize, prot));
    }
  }
  (void)record;
  return OkStatus();
}

Result<Vaddr> FomManager::Map(FomProcess& proc, InodeId inode, Prot prot,
                              const MapOptions& options) {
  if (options.guard_page) {
    return Unsupported("guard pages depend on page-level mappings (Sec. 3.1)");
  }
  if (options.copy_on_write) {
    return Unsupported("copy-on-write depends on page-level mappings (Sec. 3.1)");
  }
  auto stat = pmfs_->Stat(inode);
  if (!stat.ok()) {
    return stat.status();
  }
  if (stat->size == 0) {
    return InvalidArgument("cannot map an empty file");
  }
  SimContext& ctx = machine_->ctx();
  ctx.Charge(ctx.cost().fom_map_base_cycles);
  const MapMechanism mech = options.mechanism.value_or(config_.default_mechanism);
  const uint64_t bytes = AlignUp(stat->size, kPageSize);
  auto vaddr = PickVaddr(proc, bytes, options, mech, inode);
  if (!vaddr.ok()) {
    return vaddr;
  }
  FomProcess::Mapping record;
  record.inode = inode;
  record.bytes = bytes;
  record.mech = mech;
  record.prot = prot;
  Status installed = OkStatus();
  switch (mech) {
    case MapMechanism::kRangeTable:
    case MapMechanism::kPbm:
      installed = InstallRange(proc, *vaddr, inode, prot, &record);
      break;
    case MapMechanism::kPtSplice:
      installed = InstallSplice(proc, *vaddr, inode, prot, &record);
      break;
    case MapMechanism::kPerPage:
      installed = InstallPerPage(proc, *vaddr, inode, prot, &record);
      break;
  }
  if (!installed.ok()) {
    // Roll back partial installation.
    for (Vaddr base : record.range_bases) {
      (void)proc.as_->range_table().Remove(base);
    }
    for (const auto& [at, level] : record.splices) {
      (void)proc.as_->page_table().UnspliceSubtree(at, level);
    }
    return installed;
  }
  O1_RETURN_IF_ERROR(pmfs_->AddMapRef(inode));
  proc.mappings_.emplace(*vaddr, std::move(record));
  return *vaddr;
}

Status FomManager::Unmap(FomProcess& proc, Vaddr vaddr) {
  auto it = proc.mappings_.find(vaddr);
  if (it == proc.mappings_.end()) {
    return NotFound("no FOM mapping at vaddr");
  }
  SimContext& ctx = machine_->ctx();
  ctx.Charge(ctx.cost().fom_map_base_cycles);
  FomProcess::Mapping& m = it->second;
  switch (m.mech) {
    case MapMechanism::kRangeTable:
    case MapMechanism::kPbm:
      for (Vaddr base : m.range_bases) {
        O1_RETURN_IF_ERROR(proc.as_->range_table().Remove(base));
      }
      break;
    case MapMechanism::kPtSplice:
      for (const auto& [at, level] : m.splices) {
        O1_RETURN_IF_ERROR(proc.as_->page_table().UnspliceSubtree(at, level));
      }
      break;
    case MapMechanism::kPerPage:
      for (uint64_t off = 0; off < m.bytes; off += kPageSize) {
        O1_RETURN_IF_ERROR(proc.as_->page_table().UnmapPage(vaddr + off, kPageSize));
      }
      break;
  }
  // One shootdown for the whole mapping ("unmapping a file can be a single
  // operation to update the range table and shoot down the entry").
  machine_->mmu().ShootdownRange(proc.as_->asid(), vaddr, m.bytes);
  const InodeId inode = m.inode;
  proc.mappings_.erase(it);
  return pmfs_->DropMapRef(inode);
}

Status FomManager::Protect(FomProcess& proc, Vaddr vaddr, Prot prot) {
  auto it = proc.mappings_.find(vaddr);
  if (it == proc.mappings_.end()) {
    return NotFound("no FOM mapping at vaddr");
  }
  SimContext& ctx = machine_->ctx();
  ctx.Charge(ctx.cost().fom_map_base_cycles);
  FomProcess::Mapping& m = it->second;
  switch (m.mech) {
    case MapMechanism::kRangeTable:
    case MapMechanism::kPbm:
      for (Vaddr base : m.range_bases) {
        O1_RETURN_IF_ERROR(proc.as_->range_table().Protect(base, prot));
        ctx.Charge(ctx.cost().range_entry_install_cycles);
      }
      break;
    case MapMechanism::kPtSplice: {
      // Swap table sets: unsplice, resplice the other variant. O(splices).
      auto tables = TablesFor(m.inode);
      if (!tables.ok()) {
        return tables.status();
      }
      const std::vector<NodeRef>& l1 = (*tables)->ForProt(prot);
      const std::vector<NodeRef>& l2 = (*tables)->ForProtL2(prot);
      for (const auto& [at, level] : m.splices) {
        // A splice at `at` serves file offset (at - vaddr); the node index
        // within its level's vector follows directly from that offset.
        const uint64_t index = (at - vaddr) / BytesPerNode(level);
        const NodeRef& node = level == 2 ? l2.at(index) : l1.at(index);
        O1_RETURN_IF_ERROR(proc.as_->page_table().UnspliceSubtree(at, level));
        O1_RETURN_IF_ERROR(proc.as_->page_table().SpliceSubtree(at, level, node));
      }
      break;
    }
    case MapMechanism::kPerPage:
      O1_RETURN_IF_ERROR(proc.as_->page_table().ProtectRange(vaddr, m.bytes, prot));
      break;
  }
  machine_->mmu().ShootdownRange(proc.as_->asid(), vaddr, m.bytes);
  m.prot = prot;
  return OkStatus();
}

Result<std::vector<FileExtentView>> FomManager::PinnedExtents(FomProcess& proc, Vaddr vaddr) {
  auto it = proc.mappings_.find(vaddr);
  if (it == proc.mappings_.end()) {
    return NotFound("no FOM mapping at vaddr");
  }
  // Data is implicitly pinned: frames never move while mapped, so this is a
  // metadata read, not a per-page pin loop.
  return pmfs_->Extents(it->second.inode);
}

Result<uint64_t> FomManager::HandlePressure(uint64_t bytes_needed) {
  auto released = pmfs_->ReclaimDiscardable(bytes_needed);
  if (released.ok()) {
    // Drop cached tables for files that no longer exist.
    for (auto it = tables_.begin(); it != tables_.end();) {
      if (!pmfs_->Stat(it->first).ok()) {
        it = tables_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return released;
}

Status FomManager::OnCrash() {
  // Processes are gone; volatile files were dropped by Pmfs::OnCrash. Keep
  // pre-created tables only for files that still exist (persistent ones) --
  // those were stored in NVM and are what makes the first map after reboot
  // O(1).
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (!pmfs_->Stat(it->first).ok()) {
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
  return OkStatus();
}

uint64_t FomManager::precreated_node_count() const {
  uint64_t n = 0;
  for (const auto& [inode, tables] : tables_) {
    n += tables.node_count();
  }
  return n;
}

}  // namespace o1mem
