#include "src/fom/fom_manager.h"

#include <algorithm>
#include <cstdlib>

#include "src/obs/span.h"
#include "src/support/crc32.h"

namespace o1mem {

namespace {

// Sidecar wire format: header + one u64 backing paddr per 4 KiB page.
//   off  0  u64  magic
//   off  8  u64  inode
//   off 16  u64  file_bytes
//   off 24  u64  page_count
//   off 32  u32  crc   (CRC-32 of the paddr payload)
//   off 36  u32  reserved
constexpr uint64_t kSidecarMagic = 0x4f31464f4d545331ull;  // "O1FOMTS1"
constexpr uint64_t kSidecarHeaderBytes = 40;

void PutU64At(std::vector<uint8_t>& v, size_t off, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    v[off + static_cast<size_t>(i)] = static_cast<uint8_t>(x >> (8 * i));
  }
}

uint64_t GetU64At(const std::vector<uint8_t>& v, size_t off) {
  uint64_t x = 0;
  for (int i = 7; i >= 0; --i) {
    x = (x << 8) | v[off + static_cast<size_t>(i)];
  }
  return x;
}

}  // namespace

FomManager::FomManager(Machine* machine, Pmfs* pmfs, const FomConfig& config)
    : machine_(machine), pmfs_(pmfs), config_(config) {
  O1_CHECK(machine != nullptr && pmfs != nullptr);
  O1_CHECK(IsAligned(config.map_region_base, kLargePageSize));
}

std::unique_ptr<FomProcess> FomManager::CreateProcess() {
  auto proc = std::unique_ptr<FomProcess>(new FomProcess(machine_->CreateAddressSpace()));
  // ASLR-like per-process stagger: without PBM, nothing guarantees two
  // processes map a file at the same address (the premise of Sec. 4.2).
  const uint64_t slot = proc->address_space().asid() % 512;
  proc->bump_ = config_.map_region_base + slot * (config_.map_region_bytes / 512);
  return proc;
}

Status FomManager::ExitProcess(FomProcess& proc) {
  // Reclamation in units of files: drop every mapping; no page scans.
  while (!proc.mappings_.empty()) {
    O1_RETURN_IF_ERROR(Unmap(proc, proc.mappings_.begin()->first));
  }
  return OkStatus();
}

Result<InodeId> FomManager::CreateSegment(std::string_view path, uint64_t bytes,
                                          const SegmentOptions& options) {
  if (bytes == 0) {
    return InvalidArgument("zero-byte segment");
  }
  auto inode = pmfs_->Create(path, options.flags);
  if (!inode.ok()) {
    return inode;
  }
  Status grow = options.require_single_extent ? pmfs_->ResizeSingleExtent(*inode, bytes)
                                              : pmfs_->Resize(*inode, bytes);
  if (!grow.ok()) {
    (void)pmfs_->Unlink(path);
    return grow;
  }
  if (config_.precreate_page_tables) {
    auto tables = TablesFor(*inode);
    if (!tables.ok()) {
      (void)pmfs_->Unlink(path);
      return tables.status();
    }
  }
  return inode;
}

Result<InodeId> FomManager::CreateVolatileSegment(uint64_t bytes) {
  if (bytes == 0) {
    return InvalidArgument("zero-byte segment");
  }
  O1_ASSIGN_OR_RETURN(const InodeId inode, pmfs_->CreateVolatile(FileFlags{}));
  if (Status grown = pmfs_->Resize(inode, bytes); !grown.ok()) {
    (void)pmfs_->Release(inode);
    return grown;
  }
  return inode;
}

Status FomManager::ReleaseVolatileSegment(InodeId inode) { return pmfs_->Release(inode); }

Result<InodeId> FomManager::OpenSegment(std::string_view path) {
  return pmfs_->LookupPath(path);
}

Status FomManager::DeleteSegment(std::string_view path) {
  auto inode = pmfs_->LookupPath(path);
  if (inode.ok()) {
    tables_.erase(*inode);
    (void)pmfs_->Unlink(SidecarPath(*inode));  // best-effort; may not exist
  }
  return pmfs_->Unlink(path);
}

std::string FomManager::SidecarPath(InodeId inode) {
  return "/.fom/tables/" + std::to_string(inode);
}

void FomManager::WriteSidecar(InodeId inode, const PrecreatedTables& tables) {
  auto extents = pmfs_->Extents(inode);
  if (!extents.ok()) {
    return;
  }
  const uint64_t pages = PagesFor(tables.file_bytes);
  std::vector<uint8_t> buf(kSidecarHeaderBytes + pages * 8, 0);
  PutU64At(buf, 0, kSidecarMagic);
  PutU64At(buf, 8, inode);
  PutU64At(buf, 16, tables.file_bytes);
  PutU64At(buf, 24, pages);
  size_t page = 0;
  for (const FileExtentView& e : *extents) {
    for (uint64_t off = 0; off < e.bytes && page < pages; off += kPageSize) {
      PutU64At(buf, kSidecarHeaderBytes + page * 8, e.paddr + off);
      ++page;
    }
  }
  const uint32_t crc = Crc32(std::span<const uint8_t>(buf).subspan(kSidecarHeaderBytes));
  buf[32] = static_cast<uint8_t>(crc);
  buf[33] = static_cast<uint8_t>(crc >> 8);
  buf[34] = static_cast<uint8_t>(crc >> 16);
  buf[35] = static_cast<uint8_t>(crc >> 24);
  // Best-effort persistence: a degraded (read-only) mount or full device
  // just means the next boot rebuilds the tables from extents.
  const std::string path = SidecarPath(inode);
  auto sidecar = pmfs_->LookupPath(path);
  if (!sidecar.ok()) {
    sidecar = pmfs_->Create(path, FileFlags{.persistent = true, .discardable = false});
    if (!sidecar.ok()) {
      return;
    }
  }
  if (Status sized = pmfs_->Resize(*sidecar, buf.size()); !sized.ok()) {
    (void)pmfs_->Unlink(path);
    return;
  }
  if (auto wrote = pmfs_->WriteAt(*sidecar, 0, buf); !wrote.ok()) {
    (void)pmfs_->Unlink(path);
  }
}

Result<PrecreatedTables> FomManager::LoadSidecar(InodeId inode, uint64_t file_bytes,
                                                 std::span<const FileExtentView> extents) {
  O1_ASSIGN_OR_RETURN(const InodeId sidecar, pmfs_->LookupPath(SidecarPath(inode)));
  const uint64_t pages = PagesFor(file_bytes);
  std::vector<uint8_t> buf(kSidecarHeaderBytes + pages * 8);
  O1_ASSIGN_OR_RETURN(const uint64_t got, pmfs_->ReadAt(sidecar, 0, buf));
  if (got != buf.size()) {
    return Corruption("fom table sidecar truncated");
  }
  if (GetU64At(buf, 0) != kSidecarMagic || GetU64At(buf, 8) != inode ||
      GetU64At(buf, 16) != file_bytes || GetU64At(buf, 24) != pages) {
    return Corruption("fom table sidecar header mismatch");
  }
  const uint32_t stored_crc = static_cast<uint32_t>(buf[32]) |
                              (static_cast<uint32_t>(buf[33]) << 8) |
                              (static_cast<uint32_t>(buf[34]) << 16) |
                              (static_cast<uint32_t>(buf[35]) << 24);
  if (Crc32(std::span<const uint8_t>(buf).subspan(kSidecarHeaderBytes)) != stored_crc) {
    return Corruption("fom table sidecar checksum mismatch");
  }
  // The paddrs must agree with the file's current extents: a stale sidecar
  // (file re-created at a different location) would splice translations to
  // someone else's frames.
  std::vector<Paddr> page_paddrs(pages);
  size_t page = 0;
  for (const FileExtentView& e : extents) {
    for (uint64_t off = 0; off < e.bytes && page < pages; off += kPageSize) {
      const Paddr expect = e.paddr + off;
      if (GetU64At(buf, kSidecarHeaderBytes + page * 8) != expect) {
        return Corruption("fom table sidecar does not match file extents");
      }
      page_paddrs[page] = expect;
      ++page;
    }
  }
  if (page != pages) {
    return Corruption("fom table sidecar does not cover the file");
  }
  return RehydratePrecreatedTables(page_paddrs, file_bytes);
}

Result<const PrecreatedTables*> FomManager::TablesFor(InodeId inode) {
  auto it = tables_.find(inode);
  if (it != tables_.end()) {
    return const_cast<const PrecreatedTables*>(&it->second);
  }
  auto extents = pmfs_->Extents(inode);
  if (!extents.ok()) {
    return extents.status();
  }
  auto stat = pmfs_->Stat(inode);
  if (!stat.ok()) {
    return stat.status();
  }
  const uint64_t file_bytes = AlignUp(stat->size, kPageSize);
  if (stat->persistent) {
    // O(1) first map after reboot: rehydrate the NVM-resident tables.
    if (auto loaded = LoadSidecar(inode, file_bytes, *extents); loaded.ok()) {
      auto [inserted, ok] = tables_.emplace(inode, std::move(loaded).value());
      O1_CHECK(ok);
      return const_cast<const PrecreatedTables*>(&inserted->second);
    }
  }
  auto tables = BuildPrecreatedTables(&machine_->ctx(), &machine_->phys(), *extents,
                                      file_bytes, stat->persistent);
  if (!tables.ok()) {
    return tables.status();
  }
  auto [inserted, ok] = tables_.emplace(inode, std::move(tables).value());
  O1_CHECK(ok);
  if (stat->persistent) {
    WriteSidecar(inode, inserted->second);
  }
  return const_cast<const PrecreatedTables*>(&inserted->second);
}

Result<Vaddr> FomManager::PickVaddr(FomProcess& proc, uint64_t bytes, const MapOptions& options,
                                    MapMechanism mech, InodeId inode) {
  if (mech == MapMechanism::kPbm) {
    // Physically based mapping: the VA is derived from the extent's physical
    // address, identical in every process (Sec. 4.2).
    auto extents = pmfs_->Extents(inode);
    if (!extents.ok()) {
      return extents.status();
    }
    if (extents->size() != 1) {
      return Unsupported("PBM requires a single-extent file");
    }
    return config_.pbm_base + extents->front().paddr;
  }
  if (options.fixed_vaddr.has_value()) {
    const Vaddr fixed = *options.fixed_vaddr;
    if (mech == MapMechanism::kPtSplice && !IsAligned(fixed, kLargePageSize)) {
      return InvalidArgument("kPtSplice requires a 2 MiB aligned vaddr");
    }
    // Reject overlap with an existing mapping.
    auto next = proc.mappings_.upper_bound(fixed);
    if (next != proc.mappings_.end() && next->first < fixed + bytes) {
      return AlreadyExists("fixed vaddr overlaps a mapping");
    }
    if (next != proc.mappings_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second.bytes > fixed) {
        return AlreadyExists("fixed vaddr overlaps a mapping");
      }
    }
    return fixed;
  }
  // Aligned bump allocation; mappings are dense enough for the benches and
  // address-space size makes reuse optional. Gigabyte-class splice mappings
  // take 1 GiB alignment so the level-2 fast path applies.
  const uint64_t align =
      mech == MapMechanism::kPtSplice && bytes >= BytesPerNode(2) ? BytesPerNode(2)
                                                                  : kLargePageSize;
  const Vaddr vaddr = AlignUp(proc.bump_, align);
  const uint64_t reserve = AlignUp(bytes, kLargePageSize);
  if (vaddr + reserve > config_.map_region_base + config_.map_region_bytes) {
    return OutOfMemory("FOM map region exhausted");
  }
  proc.bump_ = vaddr + reserve;
  return vaddr;
}

Status FomManager::InstallRange(FomProcess& proc, Vaddr vaddr, InodeId inode, Prot prot,
                                FomProcess::Mapping* record) {
  auto extents = pmfs_->Extents(inode);
  if (!extents.ok()) {
    return extents.status();
  }
  SimContext& ctx = machine_->ctx();
  for (const FileExtentView& e : *extents) {
    const RangeEntry entry{.vbase = vaddr + e.file_offset,
                           .bytes = e.bytes,
                           .pbase = e.paddr,
                           .prot = prot};
    Status s = proc.as_->range_table().Insert(entry);
    if (!s.ok()) {
      return s;
    }
    ctx.Charge(ctx.cost().range_entry_install_cycles);
    ctx.counters().range_entries_installed++;
    record->range_bases.push_back(entry.vbase);
  }
  return OkStatus();
}

Status FomManager::InstallSplice(FomProcess& proc, Vaddr vaddr, InodeId inode, Prot prot,
                                 FomProcess::Mapping* record) {
  auto tables = TablesFor(inode);
  if (!tables.ok()) {
    return tables.status();
  }
  const std::vector<NodeRef>& l1 = (*tables)->ForProt(prot);
  const std::vector<NodeRef>& l2 = (*tables)->ForProtL2(prot);
  size_t window = 0;
  // Level-2 splices (one store per GiB) when the target address is 1 GiB
  // aligned -- the "1GB" natural granularity of Sec. 3.1.
  if (IsAligned(vaddr, BytesPerNode(2))) {
    for (size_t g = 0; g < l2.size(); ++g) {
      const Vaddr at = vaddr + g * BytesPerNode(2);
      O1_RETURN_IF_ERROR(proc.as_->page_table().SpliceSubtree(at, /*level=*/2, l2[g]));
      record->splices.emplace_back(at, 2);
      window += kPtEntriesPerNode;
    }
  }
  for (; window < l1.size(); ++window) {
    const Vaddr at = vaddr + window * BytesPerNode(1);
    O1_RETURN_IF_ERROR(proc.as_->page_table().SpliceSubtree(at, /*level=*/1, l1[window]));
    record->splices.emplace_back(at, 1);
  }
  return OkStatus();
}

Status FomManager::InstallPerPage(FomProcess& proc, Vaddr vaddr, InodeId inode, Prot prot,
                                  FomProcess::Mapping* record) {
  auto extents = pmfs_->Extents(inode);
  if (!extents.ok()) {
    return extents.status();
  }
  for (const FileExtentView& e : *extents) {
    for (uint64_t off = 0; off < e.bytes; off += kPageSize) {
      O1_RETURN_IF_ERROR(proc.as_->page_table().MapPage(vaddr + e.file_offset + off,
                                                        e.paddr + off, kPageSize, prot));
    }
  }
  (void)record;
  return OkStatus();
}

Result<Vaddr> FomManager::Map(FomProcess& proc, InodeId inode, Prot prot,
                              const MapOptions& options) {
  if (options.guard_page) {
    return Unsupported("guard pages depend on page-level mappings (Sec. 3.1)");
  }
  if (options.copy_on_write) {
    return Unsupported("copy-on-write depends on page-level mappings (Sec. 3.1)");
  }
  auto stat = pmfs_->Stat(inode);
  if (!stat.ok()) {
    return stat.status();
  }
  if (stat->size == 0) {
    return InvalidArgument("cannot map an empty file");
  }
  SimContext& ctx = machine_->ctx();
  // Whole-file map: the operand is the full file size, the exact axis the
  // paper's O(1) claim must be flat along.
  ObsSpan span(ctx, TraceKind::kFomMap, stat->size);
  ctx.Charge(ctx.cost().fom_map_base_cycles);
  const MapMechanism mech = options.mechanism.value_or(config_.default_mechanism);
  const uint64_t bytes = AlignUp(stat->size, kPageSize);
  auto vaddr = PickVaddr(proc, bytes, options, mech, inode);
  if (!vaddr.ok()) {
    return vaddr;
  }
  FomProcess::Mapping record;
  record.inode = inode;
  record.bytes = bytes;
  record.mech = mech;
  record.prot = prot;
  Status installed = OkStatus();
  switch (mech) {
    case MapMechanism::kRangeTable:
    case MapMechanism::kPbm:
      installed = InstallRange(proc, *vaddr, inode, prot, &record);
      break;
    case MapMechanism::kPtSplice:
      installed = InstallSplice(proc, *vaddr, inode, prot, &record);
      break;
    case MapMechanism::kPerPage:
      installed = InstallPerPage(proc, *vaddr, inode, prot, &record);
      break;
  }
  if (!installed.ok()) {
    // Roll back partial installation.
    for (Vaddr base : record.range_bases) {
      (void)proc.as_->range_table().Remove(base);
    }
    for (const auto& [at, level] : record.splices) {
      (void)proc.as_->page_table().UnspliceSubtree(at, level);
    }
    return installed;
  }
  O1_RETURN_IF_ERROR(pmfs_->AddMapRef(inode));
  proc.mappings_.emplace(*vaddr, std::move(record));
  if (observer_ != nullptr) {
    observer_->OnMapped(proc, *vaddr);
  }
  return *vaddr;
}

Status FomManager::Unmap(FomProcess& proc, Vaddr vaddr) {
  auto it = proc.mappings_.find(vaddr);
  if (it == proc.mappings_.end()) {
    return NotFound("no FOM mapping at vaddr");
  }
  if (observer_ != nullptr) {
    // The tier engine demotes any promoted extents, restoring the recorded
    // entry/splice layout before we tear it down.
    observer_->OnUnmapping(proc, vaddr);
  }
  SimContext& ctx = machine_->ctx();
  ObsSpan span(ctx, TraceKind::kFomUnmap, it->second.bytes);
  ctx.Charge(ctx.cost().fom_map_base_cycles);
  FomProcess::Mapping& m = it->second;
  switch (m.mech) {
    case MapMechanism::kRangeTable:
    case MapMechanism::kPbm:
      for (Vaddr base : m.range_bases) {
        O1_RETURN_IF_ERROR(proc.as_->range_table().Remove(base));
      }
      break;
    case MapMechanism::kPtSplice:
      for (const auto& [at, level] : m.splices) {
        O1_RETURN_IF_ERROR(proc.as_->page_table().UnspliceSubtree(at, level));
      }
      break;
    case MapMechanism::kPerPage:
      for (uint64_t off = 0; off < m.bytes; off += kPageSize) {
        O1_RETURN_IF_ERROR(proc.as_->page_table().UnmapPage(vaddr + off, kPageSize));
      }
      break;
  }
  // One shootdown for the whole mapping ("unmapping a file can be a single
  // operation to update the range table and shoot down the entry").
  machine_->mmu().ShootdownRange(proc.as_->asid(), vaddr, m.bytes);
  const InodeId inode = m.inode;
  proc.mappings_.erase(it);
  return pmfs_->DropMapRef(inode);
}

Status FomManager::Protect(FomProcess& proc, Vaddr vaddr, Prot prot) {
  auto it = proc.mappings_.find(vaddr);
  if (it == proc.mappings_.end()) {
    return NotFound("no FOM mapping at vaddr");
  }
  if (observer_ != nullptr) {
    observer_->OnProtecting(proc, vaddr);
  }
  SimContext& ctx = machine_->ctx();
  ctx.Charge(ctx.cost().fom_map_base_cycles);
  FomProcess::Mapping& m = it->second;
  switch (m.mech) {
    case MapMechanism::kRangeTable:
    case MapMechanism::kPbm:
      for (Vaddr base : m.range_bases) {
        O1_RETURN_IF_ERROR(proc.as_->range_table().Protect(base, prot));
        ctx.Charge(ctx.cost().range_entry_install_cycles);
      }
      break;
    case MapMechanism::kPtSplice: {
      // Swap table sets: unsplice, resplice the other variant. O(splices).
      auto tables = TablesFor(m.inode);
      if (!tables.ok()) {
        return tables.status();
      }
      const std::vector<NodeRef>& l1 = (*tables)->ForProt(prot);
      const std::vector<NodeRef>& l2 = (*tables)->ForProtL2(prot);
      for (const auto& [at, level] : m.splices) {
        // A splice at `at` serves file offset (at - vaddr); the node index
        // within its level's vector follows directly from that offset.
        const uint64_t index = (at - vaddr) / BytesPerNode(level);
        const NodeRef& node = level == 2 ? l2.at(index) : l1.at(index);
        O1_RETURN_IF_ERROR(proc.as_->page_table().UnspliceSubtree(at, level));
        O1_RETURN_IF_ERROR(proc.as_->page_table().SpliceSubtree(at, level, node));
      }
      break;
    }
    case MapMechanism::kPerPage:
      O1_RETURN_IF_ERROR(proc.as_->page_table().ProtectRange(vaddr, m.bytes, prot));
      break;
  }
  machine_->mmu().ShootdownRange(proc.as_->asid(), vaddr, m.bytes);
  m.prot = prot;
  return OkStatus();
}

Result<std::vector<FileExtentView>> FomManager::PinnedExtents(FomProcess& proc, Vaddr vaddr) {
  auto it = proc.mappings_.find(vaddr);
  if (it == proc.mappings_.end()) {
    return NotFound("no FOM mapping at vaddr");
  }
  // Data is implicitly pinned: frames never move while mapped, so this is a
  // metadata read, not a per-page pin loop.
  return pmfs_->Extents(it->second.inode);
}

Result<uint64_t> FomManager::HandlePressure(uint64_t bytes_needed) {
  auto released = pmfs_->ReclaimDiscardable(bytes_needed);
  if (released.ok()) {
    // Drop cached tables for files that no longer exist.
    for (auto it = tables_.begin(); it != tables_.end();) {
      if (!pmfs_->Stat(it->first).ok()) {
        it = tables_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return released;
}

Status FomManager::OnCrash() {
  // Processes are gone; volatile files were dropped by Pmfs::OnCrash. The
  // DRAM-side cache died with the machine: every surviving table set must
  // come back from its NVM sidecar (or a rebuild).
  tables_.clear();
  // Validate every sidecar on the device against its segment. Orphans
  // (segment gone) are unlinked; corrupt or stale ones are rebuilt from the
  // extent tree and rewritten. A degraded (read-only) mount skips the
  // cleanup writes but still serves validated sidecars.
  auto listing = pmfs_->List("/.fom/tables");
  if (!listing.ok()) {
    return OkStatus();  // no sidecars ever written
  }
  const bool read_only = pmfs_->mount_mode() == MountMode::kDegraded;
  for (const DirEntry& entry : *listing) {
    if (entry.is_dir) {
      continue;
    }
    char* end = nullptr;
    const InodeId segment = std::strtoull(entry.name.c_str(), &end, 10);
    const bool parsed = end != nullptr && *end == '\0' && segment != kInvalidInode;
    if (!parsed || !pmfs_->Stat(segment).ok()) {
      if (!read_only) {
        (void)pmfs_->Unlink("/.fom/tables/" + entry.name);
      }
      continue;
    }
    auto stat = pmfs_->Stat(segment);
    auto extents = pmfs_->Extents(segment);
    if (!stat.ok() || !extents.ok()) {
      continue;
    }
    const uint64_t file_bytes = AlignUp(stat->size, kPageSize);
    if (auto loaded = LoadSidecar(segment, file_bytes, *extents); loaded.ok()) {
      tables_.emplace(segment, std::move(loaded).value());
      continue;
    }
    // Checksum or extent mismatch: rebuild transparently. The rebuilt set
    // is correct either way; persisting it again just restores the O(1)
    // next-boot path.
    auto rebuilt = BuildPrecreatedTables(&machine_->ctx(), &machine_->phys(), *extents,
                                         file_bytes, stat->persistent);
    if (!rebuilt.ok()) {
      continue;
    }
    auto [inserted, ok] = tables_.emplace(segment, std::move(rebuilt).value());
    O1_CHECK(ok);
    if (!read_only) {
      WriteSidecar(segment, inserted->second);
    }
  }
  return OkStatus();
}

uint64_t FomManager::precreated_node_count() const {
  uint64_t n = 0;
  for (const auto& [inode, tables] : tables_) {
    n += tables.node_count();
  }
  return n;
}

}  // namespace o1mem
