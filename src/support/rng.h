// Deterministic pseudo-random number generator for workloads and tests.
//
// The whole simulation must be reproducible run-to-run, so benches and tests
// use this seeded xoshiro256** generator instead of std::random_device.
#ifndef O1MEM_SRC_SUPPORT_RNG_H_
#define O1MEM_SRC_SUPPORT_RNG_H_

#include <cstdint>

#include "src/support/check.h"

namespace o1mem {

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// adapted); fast, high-quality, and fully deterministic from the seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to fill the state from a single word.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) {
    O1_CHECK(bound != 0);
    return Next() % bound;
  }

  // Uniform value in [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    O1_CHECK(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace o1mem

#endif  // O1MEM_SRC_SUPPORT_RNG_H_
