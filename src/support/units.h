// Size and address units shared across the simulator.
#ifndef O1MEM_SRC_SUPPORT_UNITS_H_
#define O1MEM_SRC_SUPPORT_UNITS_H_

#include <cstdint>

namespace o1mem {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;
inline constexpr uint64_t kTiB = 1024 * kGiB;

// Page geometry (x86-64).
inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kLargePageSize = 2 * kMiB;   // PDE leaf
inline constexpr uint64_t kLargePageShift = 21;
inline constexpr uint64_t kHugePageSize = 1 * kGiB;    // PDPTE leaf
inline constexpr uint64_t kHugePageShift = 30;

// Simulated addresses. Distinct aliases keep intent visible at call sites;
// the MMU and page tables are the only places that convert between them.
using Vaddr = uint64_t;
using Paddr = uint64_t;

// Rounds `x` down/up to a multiple of `align` (power of two).
constexpr uint64_t AlignDown(uint64_t x, uint64_t align) { return x & ~(align - 1); }
constexpr uint64_t AlignUp(uint64_t x, uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}
constexpr bool IsAligned(uint64_t x, uint64_t align) { return (x & (align - 1)) == 0; }
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Number of 4 KiB pages needed to hold `bytes`.
constexpr uint64_t PagesFor(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }

}  // namespace o1mem

#endif  // O1MEM_SRC_SUPPORT_UNITS_H_
