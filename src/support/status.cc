#include "src/support/status.h"

namespace o1mem {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kBusy:
      return "BUSY";
    case StatusCode::kFault:
      return "FAULT";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case StatusCode::kMediaError:
      return "MEDIA_ERROR";
    case StatusCode::kReadOnly:
      return "READ_ONLY";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (message_ != nullptr && !message_->empty()) {
    out += ": ";
    out += *message_;
  }
  return out;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return message_ != nullptr ? *message_ : kEmpty;
}

}  // namespace o1mem
