// Invariant-checking macros for the o1mem library.
//
// These are always-on (they guard simulator invariants, not debug-only
// assertions): a failed check aborts with a message identifying the site.
// Per the C++ Core Guidelines (I.5/P.7) we catch run-time errors as early and
// loudly as possible; recoverable errors use Status/Result instead (status.h).
#ifndef O1MEM_SRC_SUPPORT_CHECK_H_
#define O1MEM_SRC_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace o1mem {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace o1mem

#define O1_CHECK(expr)                                 \
  do {                                                 \
    if (!(expr)) {                                     \
      ::o1mem::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                  \
  } while (0)

#define O1_CHECK_MSG(expr, msg)                       \
  do {                                                \
    if (!(expr)) {                                    \
      ::o1mem::CheckFailed(__FILE__, __LINE__, msg);  \
    }                                                 \
  } while (0)

#endif  // O1MEM_SRC_SUPPORT_CHECK_H_
