// Status / Result<T>: recoverable-error channel for the o1mem library.
//
// The library is exception-free (simulated OS code paths are hot and the
// style guides we follow avoid exceptions in systems code), so fallible
// operations return Status or Result<T>. Status carries a code plus a short
// message; Result<T> is a Status-or-value sum type with the usual accessors.
#ifndef O1MEM_SRC_SUPPORT_STATUS_H_
#define O1MEM_SRC_SUPPORT_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/support/check.h"

namespace o1mem {

// Error taxonomy for the simulated OS. Mirrors the subset of POSIX errno
// semantics the paper's mechanisms need, plus simulator-specific codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // bad size/alignment/flags (EINVAL)
  kNotFound,          // no such file/inode/mapping (ENOENT)
  kAlreadyExists,     // file exists (EEXIST)
  kOutOfMemory,       // no physical frames / blocks (ENOMEM / ENOSPC)
  kPermissionDenied,  // protection violation (EACCES)
  kUnsupported,       // operation rejected by design (e.g. COW under FOM)
  kBusy,              // resource still referenced (EBUSY)
  kFault,             // unresolved hardware fault (SIGSEGV-equivalent)
  kCorruption,        // persistent-state integrity check failed
  kQuotaExceeded,     // file-system quota exhausted
  kMediaError,        // NVM line unreadable / uncorrectable (EIO-like)
  kReadOnly,          // degraded read-only mount rejects mutation (EROFS)
};

// Human-readable name of a status code ("OK", "OUT_OF_MEMORY", ...).
std::string_view StatusCodeName(StatusCode code);

// A cheap, movable success-or-error value. The success path carries no
// string at all -- just the enum and a null pointer -- because every
// simulated access returns one of these and the hot loops cannot afford
// per-op std::string construction. The message is heap-allocated only on
// error (copying an error Status clones it).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code),
        message_(message.empty() ? nullptr : new std::string(std::move(message))) {}

  Status(const Status& other)
      : code_(other.code_),
        message_(other.message_ ? new std::string(*other.message_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      code_ = other.code_;
      message_.reset(other.message_ ? new std::string(*other.message_) : nullptr);
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const;

  // Formats "CODE: message" for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::unique_ptr<std::string> message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfMemory(std::string msg) {
  return Status(StatusCode::kOutOfMemory, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}
inline Status Busy(std::string msg) { return Status(StatusCode::kBusy, std::move(msg)); }
inline Status FaultError(std::string msg) { return Status(StatusCode::kFault, std::move(msg)); }
inline Status Corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
inline Status QuotaExceeded(std::string msg) {
  return Status(StatusCode::kQuotaExceeded, std::move(msg));
}
inline Status MediaError(std::string msg) {
  return Status(StatusCode::kMediaError, std::move(msg));
}
inline Status ReadOnlyError(std::string msg) {
  return Status(StatusCode::kReadOnly, std::move(msg));
}

// Result<T>: either a value of T or a non-OK Status.
//
// Usage:
//   Result<FileId> r = fs.Create(...);
//   if (!r.ok()) return r.status();
//   FileId id = r.value();
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT: implicit by design
    O1_CHECK_MSG(!std::get<Status>(var_).ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  // Value accessors abort on error — call ok() first on fallible paths.
  const T& value() const& {
    O1_CHECK_MSG(ok(), "Result::value() called on error");
    return std::get<T>(var_);
  }
  T& value() & {
    O1_CHECK_MSG(ok(), "Result::value() called on error");
    return std::get<T>(var_);
  }
  T&& value() && {
    O1_CHECK_MSG(ok(), "Result::value() called on error");
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

}  // namespace o1mem

// Propagates a non-OK Status from an expression that yields Status.
#define O1_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::o1mem::Status o1_status_ = (expr);  \
    if (!o1_status_.ok()) {               \
      return o1_status_;                  \
    }                                     \
  } while (0)

// Unwraps a Result<T> into `lhs`, propagating a non-OK Status.
#define O1_STATUS_CONCAT_INNER(a, b) a##b
#define O1_STATUS_CONCAT(a, b) O1_STATUS_CONCAT_INNER(a, b)
#define O1_ASSIGN_OR_RETURN(lhs, expr) \
  O1_ASSIGN_OR_RETURN_IMPL(lhs, expr, O1_STATUS_CONCAT(o1_result_, __LINE__))
#define O1_ASSIGN_OR_RETURN_IMPL(lhs, expr, var) \
  auto var = (expr);                             \
  if (!var.ok()) {                               \
    return var.status();                         \
  }                                              \
  lhs = std::move(var).value()

#endif  // O1MEM_SRC_SUPPORT_STATUS_H_
