#include "src/support/stats.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"

namespace o1mem {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Samples::Percentile(double p) const {
  O1_CHECK(p >= 0.0 && p <= 100.0);
  // Empty guard: no samples means no distribution; report 0 rather than
  // reading past the end.
  if (values_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  // Linear interpolation between closest ranks (numpy.percentile default);
  // clamping hi keeps p=100 (rank == n-1) inside the vector.
  const double rank = (p / 100.0) * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

double Samples::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

}  // namespace o1mem
