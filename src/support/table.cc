#include "src/support/table.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

namespace o1mem {

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::Num(double v) {
  char buf[64];
  if (std::abs(v) >= 1000.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void Table::Print(std::FILE* out) const {
  std::fprintf(out, "\n=== %s ===\n", title_.c_str());
  if (rows_.empty()) {
    return;
  }
  size_t cols = 0;
  for (const auto& row : rows_) {
    cols = std::max(cols, row.size());
  }
  std::vector<size_t> width(cols, 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      std::fprintf(out, "%-*s  ", static_cast<int>(width[c]), rows_[r][c].c_str());
    }
    std::fprintf(out, "\n");
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < cols; ++c) {
        total += width[c] + 2;
      }
      for (size_t i = 0; i < total; ++i) {
        std::fputc('-', out);
      }
      std::fprintf(out, "\n");
    }
  }
}

void Table::PrintCsv(std::FILE* out) const {
  std::fprintf(out, "# %s\n", title_.c_str());
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", row[c].c_str(), c + 1 == row.size() ? "" : ",");
    }
    std::fprintf(out, "\n");
  }
}

}  // namespace o1mem
