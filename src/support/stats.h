// Small statistics helpers used by the benchmark harness.
#ifndef O1MEM_SRC_SUPPORT_STATS_H_
#define O1MEM_SRC_SUPPORT_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace o1mem {

// Streaming mean/min/max/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Sample variance / standard deviation (0 for fewer than two samples).
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples and answers percentile queries; used where a bench reports
// tail latency rather than a mean.
//
// Percentile uses linear interpolation between closest ranks (the same
// definition as numpy.percentile's default): rank = p/100 * (n-1), value =
// v[floor(rank)] + frac * (v[floor(rank)+1] - v[floor(rank)]). p=0 is the
// minimum, p=100 the maximum, and an empty sample set answers 0.
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;  // a sample added after a query invalidates the sort
  }
  size_t count() const { return values_.size(); }
  double Percentile(double p) const;  // p in [0, 100]
  double Mean() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace o1mem

#endif  // O1MEM_SRC_SUPPORT_STATS_H_
