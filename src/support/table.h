// Aligned-table and CSV reporter used by the benchmark harness to print the
// paper-figure series (one table per figure, same axes as the paper).
#ifndef O1MEM_SRC_SUPPORT_TABLE_H_
#define O1MEM_SRC_SUPPORT_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace o1mem {

// Collects rows of string cells and renders them either as an aligned text
// table (for the terminal) or CSV (for replotting). The first added row is
// the header.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void AddRow(std::vector<std::string> cells);

  // Convenience for mixed numeric rows: formats doubles with
  // 3 significant decimals and integers exactly.
  static std::string Num(double v);
  static std::string Int(uint64_t v);

  // Renders the aligned table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  // Renders as CSV (header first) to `out`.
  void PrintCsv(std::FILE* out = stdout) const;

  const std::string& title() const { return title_; }
  size_t row_count() const { return rows_.empty() ? 0 : rows_.size() - 1; }

  // All rows including the header (the JSON bench reporter mirrors tables
  // from here).
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace o1mem

#endif  // O1MEM_SRC_SUPPORT_TABLE_H_
