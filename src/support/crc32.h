// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), header-only.
//
// Used to checksum persistent metadata: the PMFS superblock and journal
// records, and FOM's pre-created table sets stored in NVM. Recovery code
// never trusts NVM bytes without validating one of these first (torn writes
// and media decay are table stakes for persistent-memory file systems).
#ifndef O1MEM_SRC_SUPPORT_CRC32_H_
#define O1MEM_SRC_SUPPORT_CRC32_H_

#include <array>
#include <cstdint>
#include <span>

namespace o1mem {

namespace internal {

inline constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

// One-shot CRC over `data`; `seed` allows incremental composition
// (pass a previous Crc32 result to continue it).
inline uint32_t Crc32(std::span<const uint8_t> data, uint32_t seed = 0) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    c = internal::kCrc32Table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace o1mem

#endif  // O1MEM_SRC_SUPPORT_CRC32_H_
