// Zipfian item generator for skewed workloads (YCSB-style), deterministic
// via the shared Rng. Uses a precomputed CDF with binary search: exact, and
// fast enough for the simulator's request rates.
#ifndef O1MEM_SRC_SUPPORT_ZIPF_H_
#define O1MEM_SRC_SUPPORT_ZIPF_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/support/check.h"
#include "src/support/rng.h"

namespace o1mem {

class ZipfGenerator {
 public:
  // Items 0..n-1 with P(i) proportional to 1/(i+1)^theta.
  ZipfGenerator(uint64_t n, double theta) : cdf_(n) {
    O1_CHECK(n > 0);
    O1_CHECK(theta >= 0.0);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) {
      c /= sum;
    }
  }

  uint64_t Next(Rng& rng) const {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint64_t>(it - cdf_.begin());
  }

  uint64_t item_count() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace o1mem

#endif  // O1MEM_SRC_SUPPORT_ZIPF_H_
