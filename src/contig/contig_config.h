// ContigConfig: knobs for the guaranteed-contiguous physical area
// (src/contig/contig_allocator.h). Everything defaults off/zero so a seed
// machine is cycle-identical with or without this header compiled in.
//
// Header-only and dependency-free on purpose: MachineConfig embeds one by
// value (like TierConfig), so this must not pull in the simulator.
#ifndef O1MEM_SRC_CONTIG_CONTIG_CONFIG_H_
#define O1MEM_SRC_CONTIG_CONTIG_CONFIG_H_

#include <cstdint>

namespace o1mem {

struct ContigConfig {
  // Master switch. Off: no area is carved, PhysManager::contig() is null,
  // and every lending hook in tmpfs/tier is a dead branch.
  bool enabled = false;

  // Bytes reserved off the top of DRAM at boot (page-aligned up). The buddy
  // allocator never sees this range; the ContigAllocator owns it outright.
  uint64_t area_bytes = 0;

  // Upper bound on total outstanding Claim() bytes. A claim that would push
  // the sum past this returns kOutOfMemory up front, before any lender is
  // evicted -- the declared guarantee is all-or-nothing. 0 means the whole
  // area is guaranteed.
  uint64_t guarantee_bytes = 0;

  // Baseline mode: run the same interface as a Linux-CMA/compaction-style
  // allocator instead (per-page migration, movable/unmovable pageblock
  // mixing, linear scans, allocation failures). For A/B benches only.
  bool cma_baseline = false;

  // CMA pageblock granule (the unit of the movable/unmovable state map).
  uint64_t cma_granule_bytes = 2ull * 1024 * 1024;

  // Per-granule probability (in permille) that boot-time kernel use pins a
  // granule unmovable. ~15/1000 matches one stuck pageblock every ~128 MiB,
  // enough that gigabyte runs are rarely clean.
  uint32_t cma_unmovable_permille = 15;

  // Seed for the unmovable-granule placement (deterministic per boot).
  uint64_t rng_seed = 0x67636d61u;  // "gcma"
};

}  // namespace o1mem

#endif  // O1MEM_SRC_CONTIG_CONTIG_CONFIG_H_
