#include "src/contig/contig_allocator.h"

#include <algorithm>

#include "src/obs/span.h"
#include "src/support/rng.h"

namespace o1mem {

ContigAllocator::ContigAllocator(SimContext* ctx, Paddr area_base, uint64_t area_bytes,
                                 const ContigConfig& config)
    : ctx_(ctx),
      area_base_(area_base),
      area_bytes_(area_bytes),
      guarantee_bytes_(config.guarantee_bytes == 0
                           ? area_bytes
                           : std::min(config.guarantee_bytes, area_bytes)),
      cma_(config.cma_baseline),
      granule_bytes_(std::max<uint64_t>(config.cma_granule_bytes, kPageSize)) {
  O1_CHECK(ctx != nullptr);
  O1_CHECK(IsAligned(area_base, kPageSize) && IsAligned(area_bytes, kPageSize));
  O1_CHECK(area_bytes > 0);
  if (!cma_) {
    claim_free_.emplace(area_base_, area_bytes_);
    lend_free_.emplace(area_base_, area_bytes_);
    return;
  }
  // CMA baseline: seed the movable/unmovable granule map. Unmovable granules
  // model boot-time kernel allocations that landed in the area before it was
  // fenced -- the pageblock mixing that makes real CMA claims fail.
  const size_t n = static_cast<size_t>(area_bytes_ / granule_bytes_);
  granules_.assign(std::max<size_t>(n, 1), Granule::kFree);
  granule_used_bytes_.assign(granules_.size(), 0);
  Rng rng(config.rng_seed);
  for (auto& g : granules_) {
    if (rng.NextBelow(1000) < config.cma_unmovable_permille) {
      g = Granule::kUnmovable;
    }
  }
}

void ContigAllocator::SetRevoker(LenderClass cls, RevokeFn fn) {
  revokers_[static_cast<size_t>(cls)] = std::move(fn);
}

void ContigAllocator::InsertFree(std::map<Paddr, uint64_t>& m, Paddr base, uint64_t bytes) {
  auto next = m.upper_bound(base);
  if (next != m.end() && base + bytes == next->first) {
    bytes += next->second;
    next = m.erase(next);
  }
  if (next != m.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == base) {
      prev->second += bytes;
      return;
    }
  }
  m.emplace(base, bytes);
}

void ContigAllocator::RemoveRange(std::map<Paddr, uint64_t>& m, Paddr base, uint64_t bytes) {
  const Paddr end = base + bytes;
  auto it = m.lower_bound(base);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > base) {
      it = prev;
    }
  }
  while (it != m.end() && it->first < end) {
    const Paddr ebase = it->first;
    const Paddr eend = ebase + it->second;
    it = m.erase(it);
    if (ebase < base) {
      m.emplace(ebase, base - ebase);
    }
    if (eend > end) {
      m.emplace(end, eend - end);
      break;
    }
  }
}

Result<Paddr> ContigAllocator::Borrow(uint64_t bytes, LenderClass cls, uint64_t cookie) {
  if (bytes == 0) {
    return InvalidArgument("cannot borrow zero bytes");
  }
  const uint64_t need = AlignUp(bytes, kPageSize);
  ctx_->Charge(ctx_->cost().contig_lend_cycles);
  Paddr base = 0;
  if (!cma_) {
    auto it = lend_free_.begin();
    for (; it != lend_free_.end(); ++it) {
      if (it->second >= need) {
        break;
      }
    }
    if (it == lend_free_.end()) {
      return OutOfMemory("no lendable run large enough");
    }
    base = it->first;
    RemoveRange(lend_free_, base, need);
  } else {
    // Granule-granular in the baseline: a borrow occupies whole pageblocks.
    const size_t run = static_cast<size_t>((need + granule_bytes_ - 1) / granule_bytes_);
    size_t streak = 0;
    size_t found = granules_.size();
    for (size_t i = 0; i < granules_.size(); ++i) {
      streak = (granules_[i] == Granule::kFree) ? streak + 1 : 0;
      if (streak == run) {
        found = i + 1 - run;
        break;
      }
    }
    if (found == granules_.size()) {
      return OutOfMemory("no lendable run large enough");
    }
    uint64_t remaining = need;
    for (size_t g = found; g < found + run; ++g) {
      granules_[g] = Granule::kMovable;
      granule_used_bytes_[g] = static_cast<uint32_t>(std::min(remaining, granule_bytes_));
      remaining -= granule_used_bytes_[g];
    }
    base = area_base_ + static_cast<Paddr>(found) * granule_bytes_;
  }
  lent_.emplace(base, Lent{need, cls, cookie});
  lent_bytes_[static_cast<size_t>(cls)] += need;
  ctx_->counters().contig_lends++;
  return base;
}

Status ContigAllocator::Return(Paddr base) {
  auto it = lent_.find(base);
  if (it == lent_.end()) {
    return InvalidArgument("not a borrowed extent base");
  }
  ctx_->Charge(ctx_->cost().contig_return_cycles);
  const Lent l = it->second;
  lent_.erase(it);
  lent_bytes_[static_cast<size_t>(l.cls)] -= l.bytes;
  if (!cma_) {
    InsertFree(lend_free_, base, l.bytes);
  } else {
    const size_t first = static_cast<size_t>((base - area_base_) / granule_bytes_);
    const size_t run = static_cast<size_t>((l.bytes + granule_bytes_ - 1) / granule_bytes_);
    for (size_t g = first; g < first + run; ++g) {
      granules_[g] = Granule::kFree;
      granule_used_bytes_[g] = 0;
    }
  }
  ctx_->counters().contig_returns++;
  return OkStatus();
}

Status ContigAllocator::RevokeOverlapping(Paddr base, uint64_t bytes, bool to_lend_free,
                                          std::vector<ContigVictim>* victims) {
  const Paddr wend = base + bytes;
  auto it = lent_.lower_bound(base);
  if (it != lent_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.bytes > base) {
      it = prev;
    }
  }
  while (it != lent_.end() && it->first < wend) {
    const Paddr ebase = it->first;
    const Lent l = it->second;
    it = lent_.erase(it);
    // Whole-extent eviction: a lender cannot keep half a borrow, so the
    // revoke is one callback per extent, not per page.
    ctx_->Charge(ctx_->cost().contig_revoke_extent_cycles);
    RevokeFn& fn = revokers_[static_cast<size_t>(l.cls)];
    O1_CHECK(fn != nullptr);  // lending without a wired revoker is a bug
    Status revoked = fn(ebase, l.bytes, l.cookie);
    O1_CHECK(revoked.ok());  // revokers absorb media errors internally
    lent_bytes_[static_cast<size_t>(l.cls)] -= l.bytes;
    ctx_->counters().lender_evictions++;
    if (victims != nullptr) {
      victims->push_back(ContigVictim{ebase, l.bytes, l.cls, l.cookie});
    }
    const Paddr eend = ebase + l.bytes;
    if (to_lend_free) {
      // Out-of-window remainders stay lendable (still claim-free).
      if (ebase < base) {
        InsertFree(lend_free_, ebase, base - ebase);
      }
      if (eend > wend) {
        InsertFree(lend_free_, wend, eend - wend);
      }
    } else {
      // CMA: the extent's granules outside the claim run go back to kFree
      // (their pages were "migrated elsewhere" / dropped with the extent).
      const size_t first = static_cast<size_t>((ebase - area_base_) / granule_bytes_);
      const size_t run = static_cast<size_t>((l.bytes + granule_bytes_ - 1) / granule_bytes_);
      for (size_t g = first; g < first + run; ++g) {
        const Paddr gbase = area_base_ + static_cast<Paddr>(g) * granule_bytes_;
        if (gbase + granule_bytes_ <= base || gbase >= wend) {
          granules_[g] = Granule::kFree;
          granule_used_bytes_[g] = 0;
        }
      }
    }
  }
  return OkStatus();
}

Result<Paddr> ContigAllocator::Claim(uint64_t bytes, std::vector<ContigVictim>* victims) {
  if (bytes == 0) {
    return InvalidArgument("cannot claim zero bytes");
  }
  return cma_ ? ClaimCma(AlignUp(bytes, kPageSize), victims)
              : ClaimGcma(AlignUp(bytes, kPageSize), victims);
}

Result<Paddr> ContigAllocator::ClaimGcma(uint64_t bytes, std::vector<ContigVictim>* victims) {
  ObsSpan span(*ctx_, TraceKind::kContigAlloc, bytes);
  ctx_->Charge(ctx_->cost().contig_claim_base_cycles);
  // Guarantee check first, before any side effect: a claim either gets its
  // whole extent or fails cleanly with every lender intact.
  if (claimed_bytes_ + bytes > guarantee_bytes_) {
    ctx_->counters().contig_fail++;
    return OutOfMemory("contig guarantee capacity exhausted");
  }
  auto it = claim_free_.begin();
  for (; it != claim_free_.end(); ++it) {
    if (it->second >= bytes) {
      break;
    }
  }
  if (it == claim_free_.end()) {
    // Outstanding claims themselves fragment the area (lenders never do --
    // they are revocable). Still a clean failure, nothing evicted.
    ctx_->counters().contig_fail++;
    return OutOfMemory("contig area fragmented by outstanding claims");
  }
  const Paddr base = it->first;
  RemoveRange(claim_free_, base, bytes);
  RemoveRange(lend_free_, base, bytes);
  O1_RETURN_IF_ERROR(RevokeOverlapping(base, bytes, /*to_lend_free=*/true, victims));
  claimed_.emplace(base, bytes);
  claimed_bytes_ += bytes;
  ctx_->counters().contig_allocs++;
  return base;
}

Result<Paddr> ContigAllocator::ClaimCma(uint64_t bytes, std::vector<ContigVictim>* victims) {
  ObsSpan span(*ctx_, TraceKind::kCmaAlloc, bytes);
  const CostModel& cost = ctx_->cost();
  const size_t run = static_cast<size_t>((bytes + granule_bytes_ - 1) / granule_bytes_);
  // Linear first-fit over the pageblock map: every granule examined costs a
  // state check, and an unmovable granule resets the candidate run.
  uint64_t scanned = 0;
  size_t streak = 0;
  size_t found = granules_.size();
  for (size_t i = 0; i < granules_.size(); ++i) {
    ++scanned;
    const Granule g = granules_[i];
    streak = (g == Granule::kFree || g == Granule::kMovable) ? streak + 1 : 0;
    if (streak == run) {
      found = i + 1 - run;
      break;
    }
  }
  ctx_->Charge(scanned * cost.cma_scan_granule_cycles);
  if (found == granules_.size()) {
    // No clean run: real CMA falls into direct compaction, which scans the
    // whole area page by page before giving up. Charge that full pass --
    // failures are the *most* expensive outcome, exactly the behavior the
    // guaranteed path exists to ban.
    ctx_->Charge((area_bytes_ / kPageSize) * cost.reclaim_scan_page_cycles);
    ctx_->counters().contig_fail++;
    return OutOfMemory("no movable run; compaction failed");
  }
  const Paddr base = area_base_ + static_cast<Paddr>(found) * granule_bytes_;
  const uint64_t win = static_cast<uint64_t>(run) * granule_bytes_;
  // Migrate occupied movable pages out of the run, one page copy at a time.
  uint64_t pages = 0;
  for (size_t g = found; g < found + run; ++g) {
    if (granules_[g] == Granule::kMovable) {
      pages += granule_used_bytes_[g] / kPageSize;
    }
  }
  ctx_->Charge(pages * (cost.cma_migrate_page_cycles + cost.DramBulkCycles(kPageSize)));
  ctx_->counters().cma_migrated_pages += pages;
  // Lender extents overlapping the run are revoked either way (the modeling
  // shortcut, DESIGN.md Sec. 14: the baseline pays per-page migration costs
  // but the lender-facing contract is shared).
  O1_RETURN_IF_ERROR(RevokeOverlapping(base, win, /*to_lend_free=*/false, victims));
  for (size_t g = found; g < found + run; ++g) {
    granules_[g] = Granule::kClaimed;
    granule_used_bytes_[g] = 0;
  }
  claimed_.emplace(base, win);
  claimed_bytes_ += win;
  ctx_->counters().contig_allocs++;
  return base;
}

Status ContigAllocator::Release(Paddr base) {
  auto it = claimed_.find(base);
  if (it == claimed_.end()) {
    return InvalidArgument("not a claimed extent base");
  }
  ctx_->Charge(ctx_->cost().contig_release_cycles);
  const uint64_t bytes = it->second;
  claimed_.erase(it);
  claimed_bytes_ -= bytes;
  if (!cma_) {
    InsertFree(claim_free_, base, bytes);
    InsertFree(lend_free_, base, bytes);
  } else {
    const size_t first = static_cast<size_t>((base - area_base_) / granule_bytes_);
    const size_t run = static_cast<size_t>(bytes / granule_bytes_);
    for (size_t g = first; g < first + run; ++g) {
      granules_[g] = Granule::kFree;
      granule_used_bytes_[g] = 0;
    }
  }
  return OkStatus();
}

}  // namespace o1mem
