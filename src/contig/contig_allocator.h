// ContigAllocator: a guaranteed-contiguous physical area with discardable
// second-class backing (GCMA-style; DESIGN.md Sec. 14).
//
// PhysManager reserves the area off the top of DRAM at boot; the buddy never
// touches it, so claims cannot be blocked by unmovable kernel pages. While
// the area is unclaimed it is not wasted: lenders *borrow* extents as
// second-class backing -- discardable tmpfs/FOM file pages and the tier
// engine's clean DRAM cache copies, both of which can be taken back at any
// moment without losing data (the file contents are discardable by contract;
// the tier copy has an NVM home to repoint to).
//
// Claim(bytes) is constant worst-case time in everything except the number
// of *lender extents* overlapping the chosen window -- and those are coarse
// (whole files / whole promoted extents), so a 1 GiB claim revokes a handful
// of extents instead of migrating 262144 pages. There is no compaction scan
// and no page copy on the claim path: revocation is "drop" (discardable
// file) or "repoint to home, write back first if dirty" (tier copy).
//
// The same interface also runs a Linux-CMA/compaction-style baseline
// (ContigConfig.cma_baseline): a movable/unmovable granule map where claims
// linearly scan for a clean run, migrate occupied movable pages one by one,
// and fail outright when unmovable granules pin every candidate run. The
// A/B is the point of bench/abl_fragmentation.
//
// Determinism: victim selection is first-fit over ordered maps and the CMA
// unmovable placement is seeded -- same seed, same boot, same claims, same
// victims, cycle for cycle.
#ifndef O1MEM_SRC_CONTIG_CONTIG_ALLOCATOR_H_
#define O1MEM_SRC_CONTIG_CONTIG_ALLOCATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/contig/contig_config.h"
#include "src/sim/context.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace o1mem {

// Who borrowed an extent. Revocation differs: discardable file pages are
// dropped (re-read as holes); clean tier copies are repointed to their NVM
// home (after writeback when dirty -- the durability invariant).
enum class LenderClass : uint8_t {
  kDiscardableFile = 0,
  kTierCleanCopy = 1,
  kClassCount,
};

inline constexpr const char* LenderClassName(LenderClass c) {
  switch (c) {
    case LenderClass::kDiscardableFile: return "discardable_file";
    case LenderClass::kTierCleanCopy: return "tier_clean_copy";
    case LenderClass::kClassCount: break;
  }
  return "?";
}

// One evicted lender extent, reported to Claim() callers (tests assert the
// victim list is deterministic).
struct ContigVictim {
  Paddr base = 0;
  uint64_t bytes = 0;
  LenderClass cls = LenderClass::kClassCount;
  uint64_t cookie = 0;
};

class ContigAllocator {
 public:
  // Called for each lender extent a Claim() window overlaps, before the
  // claim returns. The lender must stop using [base, base+bytes) entirely;
  // `cookie` is whatever it passed to Borrow (an inode id here). Revokers
  // must leave the system consistent even on media errors (the tier revoker
  // quarantines internally) -- a non-OK return is a contract violation.
  using RevokeFn = std::function<Status(Paddr base, uint64_t bytes, uint64_t cookie)>;

  ContigAllocator(SimContext* ctx, Paddr area_base, uint64_t area_bytes,
                  const ContigConfig& config);

  ContigAllocator(const ContigAllocator&) = delete;
  ContigAllocator& operator=(const ContigAllocator&) = delete;

  void SetRevoker(LenderClass cls, RevokeFn fn);

  // --- Lender side (second-class backing) -------------------------------

  // Borrows a free extent of `bytes` (page-granular) for second-class use.
  // Never evicts anything; kOutOfMemory when no free run is large enough.
  Result<Paddr> Borrow(uint64_t bytes, LenderClass cls, uint64_t cookie);

  // Returns a borrowed extent (by its Borrow() base) voluntarily -- the
  // lender is done with it (file destroyed, tier copy demoted).
  Status Return(Paddr base);

  // --- Claim side (first-class guaranteed allocations) ------------------

  // Claims `bytes` physically contiguous (page-granular). Constant-time
  // guarantee check first: if granting would exceed guarantee_bytes(), the
  // claim fails cleanly with zero side effects (never a partial grant).
  // Otherwise picks the first free-of-claims window, revokes exactly the
  // overlapping lender extents, and returns the base. `victims`, when
  // non-null, receives the evicted extents in revocation order.
  Result<Paddr> Claim(uint64_t bytes, std::vector<ContigVictim>* victims = nullptr);

  // Releases a claim (by its Claim() base); the window becomes lendable and
  // claimable again.
  Status Release(Paddr base);

  // --- Gauges ------------------------------------------------------------
  Paddr area_base() const { return area_base_; }
  uint64_t area_bytes() const { return area_bytes_; }
  uint64_t guarantee_bytes() const { return guarantee_bytes_; }
  uint64_t claimed_bytes() const { return claimed_bytes_; }
  uint64_t lent_bytes(LenderClass cls) const {
    return lent_bytes_[static_cast<size_t>(cls)];
  }
  uint64_t lent_bytes_total() const {
    return lent_bytes_[0] + lent_bytes_[1];
  }
  uint64_t free_bytes() const { return area_bytes_ - claimed_bytes_ - lent_bytes_total(); }
  size_t lent_regions() const { return lent_.size(); }
  bool cma_baseline() const { return cma_; }
  bool Owns(Paddr paddr) const {
    return paddr >= area_base_ && paddr - area_base_ < area_bytes_;
  }

 private:
  struct Lent {
    uint64_t bytes = 0;
    LenderClass cls = LenderClass::kClassCount;
    uint64_t cookie = 0;
  };

  // CMA-baseline granule states. Movable granules hold lender pages that a
  // claim must migrate out one page at a time; unmovable granules model
  // boot-time kernel allocations that pin the pageblock forever.
  enum class Granule : uint8_t { kFree = 0, kMovable, kUnmovable, kClaimed };

  // Coalescing insert/remove over a base->bytes free map.
  static void InsertFree(std::map<Paddr, uint64_t>& m, Paddr base, uint64_t bytes);
  static void RemoveRange(std::map<Paddr, uint64_t>& m, Paddr base, uint64_t bytes);

  // Revokes every lent extent overlapping [base, base+bytes); out-of-window
  // remainders of partially overlapped extents return to the lendable pool
  // (GCMA mode) or to kFree granules (CMA mode). Whole extents are evicted
  // -- lenders cannot keep half a borrow.
  Status RevokeOverlapping(Paddr base, uint64_t bytes, bool to_lend_free,
                           std::vector<ContigVictim>* victims);

  Result<Paddr> ClaimGcma(uint64_t bytes, std::vector<ContigVictim>* victims);
  Result<Paddr> ClaimCma(uint64_t bytes, std::vector<ContigVictim>* victims);

  SimContext* ctx_;
  const Paddr area_base_;
  const uint64_t area_bytes_;
  const uint64_t guarantee_bytes_;
  const bool cma_;
  const uint64_t granule_bytes_;

  RevokeFn revokers_[static_cast<size_t>(LenderClass::kClassCount)];

  // GCMA mode. Invariant: lend_free_ ⊆ claim_free_; lent extents are absent
  // from lend_free_ but still present in claim_free_ (a claim may take them
  // by revoking). claim_free_ = area minus claims.
  std::map<Paddr, uint64_t> claim_free_;
  std::map<Paddr, uint64_t> lend_free_;

  // CMA mode: one state per granule; used_bytes tracks lender pages that a
  // claim would have to migrate.
  std::vector<Granule> granules_;
  std::vector<uint32_t> granule_used_bytes_;

  // Both modes.
  std::map<Paddr, Lent> lent_;        // borrow base -> extent
  std::map<Paddr, uint64_t> claimed_; // claim base -> bytes
  uint64_t claimed_bytes_ = 0;
  uint64_t lent_bytes_[static_cast<size_t>(LenderClass::kClassCount)] = {0, 0};
};

}  // namespace o1mem

#endif  // O1MEM_SRC_CONTIG_CONTIG_ALLOCATOR_H_
