// discardable_cache: reclamation at file granularity under memory pressure.
//
// A rendering service keeps decoded "images" in discardable FOM files (one
// file per image -- the cache pattern of Sec. 3.1/4.1: "applications cache
// objects in files and only open the file when using it"). When the
// persistent-memory pool runs low, the OS frees space by DELETING the
// least-recently-used cache files -- no page scans, no swap, and pinned
// (mapped) or non-discardable data is never touched. The same pressure on
// the baseline backend is resolved by clock-scanning and swapping pages;
// this example prices both.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/os/system.h"

using namespace o1mem;

namespace {

constexpr uint64_t kImageBytes = 8 * kMiB;

// Decodes image `id` into a discardable cache file and returns its name.
std::string DecodeToCache(System& sys, Process* proc, int id) {
  const std::string path = "/cache/image-" + std::to_string(id);
  InodeId seg = sys.fom()
                    .CreateSegment(path, kImageBytes,
                                   SegmentOptions{.flags = FileFlags{.discardable = true}})
                    .value();
  // "Decode": map briefly, write the decoded tiles, unmap (the cache file
  // stays resident). Only the leading tile is written here to keep the
  // example quick; the file still reserves the full image.
  Vaddr base = sys.fom().Map(proc->fom(), seg, Prot::kReadWrite).value();
  std::vector<uint8_t> pixels(64 * kKiB, static_cast<uint8_t>(id));
  O1_CHECK(sys.UserWrite(*proc, base, pixels).ok());
  O1_CHECK(sys.fom().Unmap(proc->fom(), base).ok());
  return path;
}

}  // namespace

int main() {
  SystemConfig config;
  config.machine.dram_bytes = 2 * kGiB;
  config.machine.nvm_bytes = 1 * kGiB;  // deliberately small PM pool
  System sys(config);
  Process* proc = sys.Launch(Backend::kFom).value();

  // Non-negotiable application state: a persistent, non-discardable segment.
  InodeId vital = sys.fom()
                      .CreateSegment("/db/catalog", 64 * kMiB,
                                     SegmentOptions{.flags = FileFlags{.persistent = true}})
                      .value();
  Vaddr vital_base = sys.fom().Map(proc->fom(), vital, Prot::kReadWrite).value();
  const char tag[] = "catalog-v1";
  O1_CHECK(sys.UserWrite(*proc, vital_base,
                         std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(tag),
                                                  sizeof(tag)))
               .ok());

  // Fill the cache until the pool is nearly exhausted.
  std::printf("PM pool: %llu MiB free before caching\n",
              static_cast<unsigned long long>(sys.pmfs().free_bytes() / kMiB));
  int decoded = 0;
  while (sys.pmfs().free_bytes() > 4 * kImageBytes) {
    DecodeToCache(sys, proc, decoded++);
    sys.ctx().Charge(50000);  // time passes between requests (ages the LRU)
  }
  std::printf("decoded %d images of %llu MiB; %llu MiB free\n", decoded,
              static_cast<unsigned long long>(kImageBytes / kMiB),
              static_cast<unsigned long long>(sys.pmfs().free_bytes() / kMiB));

  // Pin one recent image open (a client is using it): it must survive.
  const std::string pinned_path = "/cache/image-" + std::to_string(decoded - 1);
  InodeId pinned = sys.fom().OpenSegment(pinned_path).value();
  Vaddr pinned_base = sys.fom().Map(proc->fom(), pinned, Prot::kRead).value();

  // Pressure: a new 256 MiB working segment needs room.
  const uint64_t need = 256 * kMiB;
  const uint64_t before_files = sys.ctx().counters().files_reclaimed;
  const uint64_t before_scans = sys.ctx().counters().pages_scanned;
  const uint64_t deficit = need > sys.pmfs().free_bytes() ? need - sys.pmfs().free_bytes() : 0;
  const uint64_t t0 = sys.ctx().now();
  uint64_t released = sys.ReclaimFom(deficit).value();
  const double reclaim_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0);
  std::printf("\npressure: released %llu MiB by deleting %llu cache files in %.1f us "
              "(%llu pages scanned)\n",
              static_cast<unsigned long long>(released / kMiB),
              static_cast<unsigned long long>(sys.ctx().counters().files_reclaimed -
                                              before_files),
              reclaim_us,
              static_cast<unsigned long long>(sys.ctx().counters().pages_scanned -
                                              before_scans));

  InodeId working = sys.fom().CreateSegment("/work/frame", need).value();
  std::printf("new %llu MiB working segment allocated fine\n",
              static_cast<unsigned long long>(need / kMiB));
  (void)working;

  // The pinned image and the vital catalog were untouched.
  std::vector<uint8_t> probe(16);
  O1_CHECK(sys.UserRead(*proc, pinned_base, probe).ok());
  O1_CHECK_MSG(probe[0] == static_cast<uint8_t>(decoded - 1), "pinned image corrupted");
  char tag_out[sizeof(tag)] = {};
  O1_CHECK(sys.UserRead(*proc, vital_base,
                        std::span<uint8_t>(reinterpret_cast<uint8_t*>(tag_out),
                                           sizeof(tag_out)))
               .ok());
  std::printf("pinned image intact (pixel=%u), catalog intact (\"%s\")\n", probe[0], tag_out);

  // LRU order: the oldest images are the ones that disappeared.
  int survivors = 0;
  int oldest_survivor = decoded;
  for (int i = 0; i < decoded; ++i) {
    if (sys.fom().OpenSegment("/cache/image-" + std::to_string(i)).ok()) {
      ++survivors;
      oldest_survivor = std::min(oldest_survivor, i);
    }
  }
  std::printf("%d cache files survive; oldest survivor is image-%d (older ones were "
              "evicted first)\n",
              survivors, oldest_survivor);
  return 0;
}
