// sparse_analytics: the paper's motivating workload -- sparse access to a
// large data set ("for sparse access to large data sets, the fundamental
// linear operation cost remains", Sec. 3).
//
// An analytics query samples 50,000 random records from an 8 GiB data set
// that lives in persistent memory. Three configurations:
//   * baseline demand paging: every sampled page is a minor fault;
//   * baseline MAP_POPULATE: no faults, but mapping pays for ALL 2M pages
//     up front to read 50k of them;
//   * file-only memory + range translation: O(1) map, no faults, and the
//     range TLB covers the whole file so sparse accesses don't thrash.
#include <cstdio>

#include "src/os/system.h"
#include "src/support/rng.h"

using namespace o1mem;

namespace {

constexpr uint64_t kDatasetBytes = 8 * kGiB;
constexpr int kSamples = 50000;
constexpr uint64_t kRecordBytes = 64;

struct RunResult {
  double setup_us;   // create/open + map
  double query_us;   // the sampling loop
  uint64_t faults;
};

RunResult RunBaseline(bool populate) {
  SystemConfig config;
  config.machine.dram_bytes = 4 * kGiB;
  config.machine.nvm_bytes = 12 * kGiB;
  System sys(config);
  Process* proc = sys.Launch(Backend::kBaseline).value();
  // Data set in the persistent-memory fs, baseline per-page mapping.
  int fd = sys.Creat(*proc, sys.pmfs(), "/data/set", FileFlags{.persistent = true}).value();
  O1_CHECK(sys.Ftruncate(*proc, fd, kDatasetBytes).ok());

  const uint64_t t0 = sys.ctx().now();
  Vaddr base =
      sys.Mmap(*proc, MmapArgs{.length = kDatasetBytes, .populate = populate, .fd = fd})
          .value();
  const double setup_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0);

  Rng rng(2026);
  const uint64_t faults_before = sys.ctx().counters().minor_faults;
  const uint64_t t1 = sys.ctx().now();
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t off = AlignDown(rng.NextBelow(kDatasetBytes - kRecordBytes), kRecordBytes);
    O1_CHECK(sys.UserTouch(*proc, base + off, kRecordBytes, AccessType::kRead).ok());
  }
  return RunResult{.setup_us = setup_us,
                   .query_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t1),
                   .faults = sys.ctx().counters().minor_faults - faults_before};
}

RunResult RunFom() {
  SystemConfig config;
  config.machine.dram_bytes = 4 * kGiB;
  config.machine.nvm_bytes = 12 * kGiB;
  config.fom.precreate_page_tables = false;  // range mapping needs no tables
  System sys(config);
  Process* proc = sys.Launch(Backend::kFom).value();

  // Creating the data set (like Ftruncate in the baseline runs) is not part
  // of the measured setup; setup is what every *query process* pays.
  InodeId seg = sys.fom()
                    .CreateSegment("/data/set", kDatasetBytes,
                                   SegmentOptions{.flags = FileFlags{.persistent = true},
                                                  .require_single_extent = true})
                    .value();
  const uint64_t t0 = sys.ctx().now();
  Vaddr base = sys.fom()
                   .Map(proc->fom(), seg, Prot::kRead,
                        MapOptions{.mechanism = MapMechanism::kRangeTable})
                   .value();
  const double setup_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0);

  Rng rng(2026);
  const uint64_t faults_before = sys.ctx().counters().minor_faults;
  const uint64_t t1 = sys.ctx().now();
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t off = AlignDown(rng.NextBelow(kDatasetBytes - kRecordBytes), kRecordBytes);
    O1_CHECK(sys.UserTouch(*proc, base + off, kRecordBytes, AccessType::kRead).ok());
  }
  return RunResult{.setup_us = setup_us,
                   .query_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t1),
                   .faults = sys.ctx().counters().minor_faults - faults_before};
}

void Print(const char* name, const RunResult& result) {
  std::printf("%-26s setup %12.1f us   query %12.1f us   faults %7llu   "
              "ns/sample %8.1f\n",
              name, result.setup_us, result.query_us,
              static_cast<unsigned long long>(result.faults),
              result.query_us * 1000.0 / kSamples);
}

}  // namespace

int main() {
  std::printf("sampling %d x %llu B records from an %llu GiB persistent data set\n\n",
              kSamples, static_cast<unsigned long long>(kRecordBytes),
              static_cast<unsigned long long>(kDatasetBytes / kGiB));
  const RunResult demand = RunBaseline(/*populate=*/false);
  Print("baseline demand paging", demand);
  const RunResult populate = RunBaseline(/*populate=*/true);
  Print("baseline MAP_POPULATE", populate);
  const RunResult fom = RunFom();
  Print("fom + range translation", fom);

  std::printf("\nend-to-end (setup+query): demand %.1f ms, populate %.1f ms, fom %.1f ms\n",
              (demand.setup_us + demand.query_us) / 1000.0,
              (populate.setup_us + populate.query_us) / 1000.0,
              (fom.setup_us + fom.query_us) / 1000.0);
  return 0;
}
