// persistent_graph: a linked object graph that survives power failures with
// no serialization, using the PersistentHeap runtime.
//
// A build service keeps its dependency graph (nodes + edges) as ordinary
// objects in a persistent heap. References are stored as heap offsets, so
// the graph is valid no matter where the segment maps after reboot. Compare
// with the conventional design -- serialize to a file, parse it back on
// start -- which is linear in the data; reopening the heap is O(1).
#include <cstdio>
#include <cstring>

#include "src/runtime/persistent_heap.h"

using namespace o1mem;

namespace {

struct GraphNode {
  char name[24] = {};
  uint32_t edge_count = 0;
  uint64_t edges[8] = {};  // heap offsets of dependency nodes
};

Result<uint64_t> AddNode(PersistentHeap& heap, const char* name) {
  auto off = heap.Allocate(sizeof(GraphNode), alignof(GraphNode));
  if (!off.ok()) {
    return off;
  }
  GraphNode node;
  std::snprintf(node.name, sizeof(node.name), "%s", name);
  O1_RETURN_IF_ERROR(heap.WriteObject(
      *off, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&node), sizeof(node))));
  return off;
}

Status AddEdge(PersistentHeap& heap, uint64_t from, uint64_t to) {
  GraphNode node;
  O1_RETURN_IF_ERROR(heap.ReadObject(
      from, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&node), sizeof(node))));
  if (node.edge_count >= 8) {
    return OutOfMemory("node is full");
  }
  node.edges[node.edge_count++] = to;
  return heap.WriteObject(
      from, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&node), sizeof(node)));
}

Result<GraphNode> Load(PersistentHeap& heap, uint64_t off) {
  GraphNode node;
  O1_RETURN_IF_ERROR(heap.ReadObject(
      off, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&node), sizeof(node))));
  return node;
}

// Depth-first dump of the dependency tree.
void Dump(PersistentHeap& heap, uint64_t off, int depth) {
  GraphNode node = Load(heap, off).value();
  std::printf("%*s%s\n", depth * 2, "", node.name);
  for (uint32_t i = 0; i < node.edge_count; ++i) {
    Dump(heap, node.edges[i], depth + 1);
  }
}

}  // namespace

int main() {
  SystemConfig config;
  config.machine.dram_bytes = 1 * kGiB;
  config.machine.nvm_bytes = 4 * kGiB;
  System sys(config);

  // Generation 1: build the graph.
  {
    Process* proc = sys.Launch(Backend::kFom).value();
    PersistentHeap heap =
        PersistentHeap::OpenOrCreate(&sys, proc, "/build/depgraph", 64 * kMiB).value();
    uint64_t app = AddNode(heap, "app").value();
    uint64_t libui = AddNode(heap, "libui").value();
    uint64_t libnet = AddNode(heap, "libnet").value();
    uint64_t libc = AddNode(heap, "libc").value();
    O1_CHECK(AddEdge(heap, app, libui).ok());
    O1_CHECK(AddEdge(heap, app, libnet).ok());
    O1_CHECK(AddEdge(heap, libui, libc).ok());
    O1_CHECK(AddEdge(heap, libnet, libc).ok());
    O1_CHECK(heap.SetRoot("app", app).ok());
    // Grow it: 20k more nodes hanging off libnet's subtree namespace.
    uint64_t prev = libnet;
    for (int i = 0; i < 20000; ++i) {
      char name[24];
      std::snprintf(name, sizeof(name), "gen%05d", i);
      uint64_t node = AddNode(heap, name).value();
      if (i % 2500 == 0) {
        O1_CHECK(AddEdge(heap, prev, node).ok());
        prev = node;
      }
    }
    std::printf("built graph: %llu KiB of live objects\n",
                static_cast<unsigned long long>(heap.used_bytes() / kKiB));
  }

  O1_CHECK(sys.Crash().ok());
  std::printf("\n*** power failure ***\n\n");

  // Generation 2: reopen and walk -- no parse, no rebuild.
  {
    Process* proc = sys.Launch(Backend::kFom).value();
    const uint64_t t0 = sys.ctx().now();
    PersistentHeap heap =
        PersistentHeap::OpenOrCreate(&sys, proc, "/build/depgraph", 64 * kMiB).value();
    uint64_t app = heap.GetRoot("app").value();
    const double reopen_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0);
    std::printf("reopened heap + found root in %.1f us (recovered=%s)\n", reopen_us,
                heap.recovered() ? "yes" : "no");
    std::printf("dependency tree:\n");
    Dump(heap, app, 1);
    // Keep building where we left off.
    uint64_t extra = AddNode(heap, "post-crash").value();
    O1_CHECK(AddEdge(heap, app, extra).ok());
    std::printf("graph extended after recovery; %llu KiB live\n",
                static_cast<unsigned long long>(heap.used_bytes() / kKiB));
  }
  return 0;
}
