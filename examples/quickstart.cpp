// Quickstart: a guided tour of the o1mem public API.
//
//   1. boot a simulated machine (DRAM + persistent NVM);
//   2. launch a file-only-memory process and allocate memory by creating a
//      file;
//   3. map it in O(1) (one range-table entry), write and read through the
//      mapping;
//   4. crash the machine and show the persistent segment -- data AND its
//      pre-created page tables -- come back.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/os/system.h"

using namespace o1mem;

int main() {
  // 1. Boot: 4 GiB DRAM + 16 GiB 3D XPoint-class NVM at 2 GHz.
  SystemConfig config;
  config.machine.dram_bytes = 4 * kGiB;
  config.machine.nvm_bytes = 16 * kGiB;
  System sys(config);
  std::printf("booted: %llu GiB DRAM, %llu GiB NVM, PMFS free %llu GiB\n",
              static_cast<unsigned long long>(config.machine.dram_bytes / kGiB),
              static_cast<unsigned long long>(config.machine.nvm_bytes / kGiB),
              static_cast<unsigned long long>(sys.pmfs().free_bytes() / kGiB));

  // 2. A file-only-memory process: its code/heap/stack are already files.
  Process* proc = sys.Launch(Backend::kFom).value();
  std::printf("launched pid %u (FOM): code@%#llx heap@%#llx stack@%#llx\n", proc->pid(),
              static_cast<unsigned long long>(proc->code_base()),
              static_cast<unsigned long long>(proc->heap_base()),
              static_cast<unsigned long long>(proc->stack_base()));

  // 3. Allocate 256 MiB of persistent memory by creating a file, then map
  //    it. Both operations are O(1)-class: watch the simulated clock.
  uint64_t t0 = sys.ctx().now();
  InodeId seg = sys.fom()
                    .CreateSegment("/data/quickstart", 256 * kMiB,
                                   SegmentOptions{.flags = FileFlags{.persistent = true}})
                    .value();
  const double create_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0);
  t0 = sys.ctx().now();
  Vaddr base = sys.fom().Map(proc->fom(), seg, Prot::kReadWrite).value();
  const double map_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0);
  std::printf("256 MiB segment: create %.1f us (extents + pre-built tables), map %.2f us "
              "(one range entry)\n",
              create_us, map_us);

  // Ordinary loads and stores through the mapping; no page faults ever.
  const char msg[] = "towards O(1) memory";
  O1_CHECK(sys.UserWrite(*proc, base + 128 * kMiB,
                         std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(msg),
                                                  sizeof(msg)))
               .ok());
  std::printf("wrote %zu bytes at +128 MiB; minor faults so far: %llu\n", sizeof(msg),
              static_cast<unsigned long long>(sys.ctx().counters().minor_faults));

  // 4. Power failure. DRAM, processes and volatile files are gone; the
  //    persistent segment survives, including its page tables.
  O1_CHECK(sys.Crash().ok());
  std::printf("\n*** power failure ***\n\n");

  Process* proc2 = sys.Launch(Backend::kFom).value();
  t0 = sys.ctx().now();
  InodeId found = sys.fom().OpenSegment("/data/quickstart").value();
  Vaddr base2 = sys.fom()
                    .Map(proc2->fom(), found, Prot::kRead,
                         MapOptions{.mechanism = MapMechanism::kPtSplice})
                    .value();
  const double remap_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0);
  char out[sizeof(msg)] = {};
  O1_CHECK(sys.UserRead(*proc2, base2 + 128 * kMiB,
                        std::span<uint8_t>(reinterpret_cast<uint8_t*>(out), sizeof(out)))
               .ok());
  std::printf("after reboot: open+map took %.2f us (pre-created tables reused), data: \"%s\"\n",
              remap_us, out);
  return 0;
}
