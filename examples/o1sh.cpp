// o1sh: a scriptable mini-shell over the whole o1mem system -- processes,
// segments, mappings, the namespace, crashes, pressure, and the simulated
// clock. Feed commands on stdin (one per line, '#' comments) or run with no
// input for a built-in guided demo.
//
//   launch baseline|fom                 -> pid
//   seg <path> <bytes> [persistent] [discardable] [single]
//   map <pid> <path> [range|splice|perpage|pbm]   -> vaddr
//   unmap <pid> <vaddr-hex>
//   write <pid> <vaddr-hex> <text>
//   read <pid> <vaddr-hex> <len>
//   mkdir <path> | ls <path> | rm <path> | mv <from> <to> | ln <old> <new>
//   pressure <bytes>
//   crash
//   exit <pid>
//   time | stats | help
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/os/system.h"
#include "src/support/table.h"

using namespace o1mem;

namespace {

class Shell {
 public:
  Shell() {
    SystemConfig config;
    config.machine.dram_bytes = 2 * kGiB;
    config.machine.nvm_bytes = 8 * kGiB;
    sys_ = std::make_unique<System>(config);
  }

  // Executes one command line; returns false on "quit".
  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') {
      return true;
    }
    std::printf("o1sh> %s\n", line.c_str());
    Status status = Dispatch(cmd, in);
    if (!status.ok()) {
      std::printf("  error: %s\n", status.ToString().c_str());
    }
    return cmd != "quit";
  }

 private:
  Status Dispatch(const std::string& cmd, std::istringstream& in) {
    if (cmd == "help") {
      std::printf("  commands: launch seg map unmap write read mkdir ls rm mv ln "
                  "pressure crash exit time stats quit\n");
      return OkStatus();
    }
    if (cmd == "launch") {
      std::string backend;
      in >> backend;
      auto proc = sys_->Launch(backend == "fom" ? Backend::kFom : Backend::kBaseline);
      if (!proc.ok()) {
        return proc.status();
      }
      procs_[(*proc)->pid()] = *proc;
      std::printf("  pid %u (%s)\n", (*proc)->pid(), backend.c_str());
      return OkStatus();
    }
    if (cmd == "seg") {
      std::string path, flag;
      uint64_t bytes = 0;
      in >> path >> bytes;
      SegmentOptions options;
      while (in >> flag) {
        options.flags.persistent |= flag == "persistent";
        options.flags.discardable |= flag == "discardable";
        options.require_single_extent |= flag == "single";
      }
      auto inode = sys_->fom().CreateSegment(path, bytes, options);
      if (!inode.ok()) {
        return inode.status();
      }
      std::printf("  segment %s: inode %llu, %llu KiB\n", path.c_str(),
                  static_cast<unsigned long long>(*inode),
                  static_cast<unsigned long long>(bytes / kKiB));
      return OkStatus();
    }
    if (cmd == "map") {
      uint32_t pid = 0;
      std::string path, mech_name;
      in >> pid >> path >> mech_name;
      O1_ASSIGN_OR_RETURN(Process * proc, Find(pid));
      auto inode = sys_->fom().OpenSegment(path);
      if (!inode.ok()) {
        return inode.status();
      }
      MapOptions options;
      if (mech_name == "splice") {
        options.mechanism = MapMechanism::kPtSplice;
      } else if (mech_name == "perpage") {
        options.mechanism = MapMechanism::kPerPage;
      } else if (mech_name == "pbm") {
        options.mechanism = MapMechanism::kPbm;
      } else {
        options.mechanism = MapMechanism::kRangeTable;
      }
      const uint64_t t0 = sys_->ctx().now();
      auto vaddr = sys_->fom().Map(proc->fom(), *inode, Prot::kReadWrite, options);
      if (!vaddr.ok()) {
        return vaddr.status();
      }
      std::printf("  mapped at %#llx in %.2f us\n", static_cast<unsigned long long>(*vaddr),
                  sys_->ctx().clock().CyclesToUs(sys_->ctx().now() - t0));
      return OkStatus();
    }
    if (cmd == "unmap") {
      uint32_t pid = 0;
      Vaddr vaddr = 0;
      in >> pid >> std::hex >> vaddr >> std::dec;
      O1_ASSIGN_OR_RETURN(Process * proc, Find(pid));
      return sys_->fom().Unmap(proc->fom(), vaddr);
    }
    if (cmd == "write") {
      uint32_t pid = 0;
      Vaddr vaddr = 0;
      std::string text;
      in >> pid >> std::hex >> vaddr >> std::dec;
      std::getline(in, text);
      if (!text.empty() && text.front() == ' ') {
        text.erase(0, 1);
      }
      O1_ASSIGN_OR_RETURN(Process * proc, Find(pid));
      return sys_->UserWrite(*proc, vaddr,
                             std::span<const uint8_t>(
                                 reinterpret_cast<const uint8_t*>(text.data()), text.size()));
    }
    if (cmd == "read") {
      uint32_t pid = 0;
      Vaddr vaddr = 0;
      size_t len = 0;
      in >> pid >> std::hex >> vaddr >> std::dec >> len;
      O1_ASSIGN_OR_RETURN(Process * proc, Find(pid));
      std::string out(len, '\0');
      O1_RETURN_IF_ERROR(sys_->UserRead(
          *proc, vaddr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(out.data()), len)));
      std::printf("  \"%s\"\n", out.c_str());
      return OkStatus();
    }
    if (cmd == "mkdir") {
      std::string path;
      in >> path;
      return sys_->Mkdir(sys_->pmfs(), path);
    }
    if (cmd == "ls") {
      std::string path;
      in >> path;
      auto entries = sys_->List(sys_->pmfs(), path.empty() ? "/" : path);
      if (!entries.ok()) {
        return entries.status();
      }
      for (const DirEntry& e : *entries) {
        if (e.is_dir) {
          std::printf("  %s/\n", e.name.c_str());
        } else {
          auto st = sys_->pmfs().Stat(e.inode);
          std::printf("  %-20s %8llu KiB%s\n", e.name.c_str(),
                      st.ok() ? static_cast<unsigned long long>(st->size / kKiB) : 0ULL,
                      st.ok() && st->persistent ? "  [persistent]" : "");
        }
      }
      return OkStatus();
    }
    if (cmd == "rm") {
      std::string path;
      in >> path;
      return sys_->Unlink(path);
    }
    if (cmd == "mv") {
      std::string from, to;
      in >> from >> to;
      return sys_->Rename(from, to);
    }
    if (cmd == "ln") {
      std::string old_path, new_path;
      in >> old_path >> new_path;
      return sys_->Link(sys_->pmfs(), old_path, new_path);
    }
    if (cmd == "pressure") {
      uint64_t bytes = 0;
      in >> bytes;
      auto released = sys_->ReclaimFom(bytes);
      if (!released.ok()) {
        return released.status();
      }
      std::printf("  released %llu KiB by deleting discardable files\n",
                  static_cast<unsigned long long>(*released / kKiB));
      return OkStatus();
    }
    if (cmd == "crash") {
      procs_.clear();
      O1_RETURN_IF_ERROR(sys_->Crash());
      std::printf("  *** power failure; persistent state recovered ***\n");
      return OkStatus();
    }
    if (cmd == "exit") {
      uint32_t pid = 0;
      in >> pid;
      O1_ASSIGN_OR_RETURN(Process * proc, Find(pid));
      O1_RETURN_IF_ERROR(sys_->Exit(proc));
      procs_.erase(pid);
      return OkStatus();
    }
    if (cmd == "time") {
      std::printf("  simulated time: %.1f us\n", sys_->ctx().clock().CyclesToUs(sys_->ctx().now()));
      return OkStatus();
    }
    if (cmd == "stats") {
      const EventCounters& c = sys_->ctx().counters();
      Table table("event counters");
      table.AddRow({"counter", "value"});
      table.AddRow({"minor faults", Table::Int(c.minor_faults)});
      table.AddRow({"major faults", Table::Int(c.major_faults)});
      table.AddRow({"page walks", Table::Int(c.page_walks)});
      table.AddRow({"TLB misses", Table::Int(c.tlb_misses)});
      table.AddRow({"range TLB hits", Table::Int(c.range_tlb_hits)});
      table.AddRow({"PTEs written", Table::Int(c.ptes_written)});
      table.AddRow({"subtree splices", Table::Int(c.subtree_splices)});
      table.AddRow({"range entries installed", Table::Int(c.range_entries_installed)});
      table.AddRow({"frames allocated", Table::Int(c.frames_allocated)});
      table.AddRow({"bytes zeroed", Table::Int(c.bytes_zeroed)});
      table.AddRow({"pages scanned (reclaim)", Table::Int(c.pages_scanned)});
      table.AddRow({"files reclaimed", Table::Int(c.files_reclaimed)});
      table.AddRow({"syscalls", Table::Int(c.syscalls)});
      table.Print();
      return OkStatus();
    }
    if (cmd == "quit") {
      return OkStatus();
    }
    return InvalidArgument("unknown command (try: help)");
  }

  Result<Process*> Find(uint32_t pid) {
    auto it = procs_.find(pid);
    if (it == procs_.end()) {
      return NotFound("no such pid (processes die at crash)");
    }
    return it->second;
  }

  std::unique_ptr<System> sys_;
  std::map<uint32_t, Process*> procs_;
};

constexpr const char* kDemoScript = R"(# o1sh guided demo: file-only memory end to end
launch fom
seg /db/accounts 4194304 persistent
map 1 /db/accounts splice
write 1 0x202000c00000 hello persistent world
read 1 0x202000c00000 22
mkdir /cache
seg /cache/thumb1 2097152 discardable
seg /cache/thumb2 2097152 discardable
ls /
ls /cache
pressure 3145728
ls /cache
crash
launch fom
map 2 /db/accounts range
read 2 0x204000c00000 22
mv /db/accounts /db/accounts-v2
ls /db
time
stats
quit
)";

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  std::istringstream demo(kDemoScript);
  const bool interactive = argc > 1 && std::string(argv[1]) == "-i";
  std::istream& in = interactive ? std::cin : demo;
  std::string line;
  while (std::getline(in, line)) {
    if (!shell.Execute(line)) {
      break;
    }
  }
  return 0;
}
