// persistent_kv: a crash-safe key-value store built on file-only memory.
//
// The store is ONE persistent segment file mapped into the process; its
// layout is a header + open-addressing hash table of fixed-size slots, all
// accessed through ordinary loads/stores (no serialization, no buffer
// cache). Because the segment is a persistent PMFS file:
//   * the whole store maps in O(1) at startup -- no warm-up, no recovery
//     scan of data pages;
//   * a power failure loses nothing that a Put completed (the simulated NVM
//     retains every store);
//   * deleting the store is unlink(), not a page-by-page teardown.
//
// This is the kind of application Sec. 3.1 sketches: "recovery of large
// in-memory data sets after a process crash".
#include <cstdio>
#include <cstring>

#include "src/os/system.h"

using namespace o1mem;

namespace {

constexpr uint64_t kSlots = 1 << 16;
constexpr uint64_t kKeyBytes = 32;
constexpr uint64_t kValueBytes = 88;

struct Slot {
  uint8_t used = 0;
  char key[kKeyBytes] = {};
  char value[kValueBytes] = {};
};

struct Header {
  uint64_t magic = 0;
  uint64_t slots = 0;
  uint64_t live = 0;
};

constexpr uint64_t kMagic = 0x6f316d656d6b7621ULL;  // "o1memkv!"
constexpr uint64_t kStoreBytes = sizeof(Header) + kSlots * sizeof(Slot);

// A tiny typed view over the mapped store. All persistence happens through
// UserRead/UserWrite on the mapping -- the store has no other I/O path.
class KvStore {
 public:
  KvStore(System* sys, Process* proc, Vaddr base) : sys_(sys), proc_(proc), base_(base) {}

  Status Format() {
    Header header;
    header.magic = kMagic;
    header.slots = kSlots;
    header.live = 0;
    return WriteRaw(0, &header, sizeof(header));
  }

  // True if the mapped segment already contains a formatted store.
  Result<Header> ReadHeader() {
    Header header;
    O1_RETURN_IF_ERROR(ReadRaw(0, &header, sizeof(header)));
    if (header.magic != kMagic || header.slots != kSlots) {
      return Corruption("not a kv store (or wrong geometry)");
    }
    return header;
  }

  Status Put(const char* key, const char* value) {
    uint64_t index = Hash(key) % kSlots;
    for (uint64_t probe = 0; probe < kSlots; ++probe, index = (index + 1) % kSlots) {
      Slot slot;
      O1_RETURN_IF_ERROR(ReadRaw(SlotOffset(index), &slot, sizeof(slot)));
      const bool match = slot.used != 0 && std::strncmp(slot.key, key, kKeyBytes) == 0;
      if (slot.used != 0 && !match) {
        continue;
      }
      const bool fresh = slot.used == 0;
      slot.used = 1;
      std::strncpy(slot.key, key, kKeyBytes - 1);
      std::strncpy(slot.value, value, kValueBytes - 1);
      O1_RETURN_IF_ERROR(WriteRaw(SlotOffset(index), &slot, sizeof(slot)));
      if (fresh) {
        Header header;
        O1_RETURN_IF_ERROR(ReadRaw(0, &header, sizeof(header)));
        header.live++;
        O1_RETURN_IF_ERROR(WriteRaw(0, &header, sizeof(header)));
      }
      return OkStatus();
    }
    return OutOfMemory("kv store full");
  }

  Result<std::string> Get(const char* key) {
    uint64_t index = Hash(key) % kSlots;
    for (uint64_t probe = 0; probe < kSlots; ++probe, index = (index + 1) % kSlots) {
      Slot slot;
      O1_RETURN_IF_ERROR(ReadRaw(SlotOffset(index), &slot, sizeof(slot)));
      if (slot.used == 0) {
        return NotFound("no such key");
      }
      if (std::strncmp(slot.key, key, kKeyBytes) == 0) {
        return std::string(slot.value);
      }
    }
    return NotFound("no such key");
  }

 private:
  static uint64_t SlotOffset(uint64_t index) { return sizeof(Header) + index * sizeof(Slot); }

  static uint64_t Hash(const char* key) {
    uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (const char* p = key; *p != '\0'; ++p) {
      h = (h ^ static_cast<uint8_t>(*p)) * 1099511628211ULL;
    }
    return h;
  }

  Status WriteRaw(uint64_t offset, const void* data, uint64_t len) {
    return sys_->UserWrite(*proc_, base_ + offset,
                           std::span<const uint8_t>(static_cast<const uint8_t*>(data), len));
  }
  Status ReadRaw(uint64_t offset, void* data, uint64_t len) {
    return sys_->UserRead(*proc_, base_ + offset,
                          std::span<uint8_t>(static_cast<uint8_t*>(data), len));
  }

  System* sys_;
  Process* proc_;
  Vaddr base_;
};

// Opens (or creates+formats) the store for a process; returns the view.
Result<KvStore> OpenStore(System& sys, Process* proc) {
  InodeId seg = kInvalidInode;
  bool fresh = false;
  if (auto existing = sys.fom().OpenSegment("/db/kv"); existing.ok()) {
    seg = *existing;
  } else {
    auto created = sys.fom().CreateSegment(
        "/db/kv", kStoreBytes, SegmentOptions{.flags = FileFlags{.persistent = true}});
    if (!created.ok()) {
      return created.status();
    }
    seg = *created;
    fresh = true;
  }
  auto base = sys.fom().Map(proc->fom(), seg, Prot::kReadWrite);
  if (!base.ok()) {
    return base.status();
  }
  KvStore store(&sys, proc, *base);
  if (fresh) {
    O1_RETURN_IF_ERROR(store.Format());
  } else if (auto header = store.ReadHeader(); !header.ok()) {
    return header.status();
  }
  return store;
}

}  // namespace

int main() {
  SystemConfig config;
  config.machine.dram_bytes = 2 * kGiB;
  config.machine.nvm_bytes = 8 * kGiB;
  System sys(config);

  // Generation 1: create the store and fill it.
  {
    Process* proc = sys.Launch(Backend::kFom).value();
    const uint64_t t0 = sys.ctx().now();
    KvStore store = OpenStore(sys, proc).value();
    std::printf("store created+mapped in %.1f us (size %llu MiB)\n",
                sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0),
                static_cast<unsigned long long>(kStoreBytes / kMiB));
    char key[32];
    char value[64];
    for (int i = 0; i < 10000; ++i) {
      std::snprintf(key, sizeof(key), "user:%d", i);
      std::snprintf(value, sizeof(value), "profile-%d@example.com", i);
      O1_CHECK(store.Put(key, value).ok());
    }
    std::printf("put 10000 entries; header.live=%llu\n",
                static_cast<unsigned long long>(store.ReadHeader()->live));
  }

  // Power failure between generations.
  O1_CHECK(sys.Crash().ok());
  std::printf("\n*** power failure ***\n\n");

  // Generation 2: reopen -- O(1) map, no recovery scan -- and read back.
  {
    Process* proc = sys.Launch(Backend::kFom).value();
    const uint64_t t0 = sys.ctx().now();
    KvStore store = OpenStore(sys, proc).value();
    const double reopen_us = sys.ctx().clock().CyclesToUs(sys.ctx().now() - t0);
    auto header = store.ReadHeader();
    O1_CHECK(header.ok());
    std::printf("reopened in %.1f us; %llu live entries survived\n", reopen_us,
                static_cast<unsigned long long>(header->live));
    int verified = 0;
    char key[32];
    char expected[64];
    for (int i = 0; i < 10000; i += 997) {
      std::snprintf(key, sizeof(key), "user:%d", i);
      std::snprintf(expected, sizeof(expected), "profile-%d@example.com", i);
      auto got = store.Get(key);
      O1_CHECK(got.ok());
      O1_CHECK_MSG(*got == expected, "value mismatch after crash");
      ++verified;
    }
    std::printf("spot-checked %d keys: all intact\n", verified);
    // And updates keep working.
    O1_CHECK(store.Put("user:0", "updated@example.com").ok());
    std::printf("post-recovery update: user:0 -> %s\n", store.Get("user:0")->c_str());
  }
  return 0;
}
