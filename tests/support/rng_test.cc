#include "src/support/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace o1mem {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolRoughlyMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace o1mem
