#include "src/support/status.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = OutOfMemory("no frames left");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s.message(), "no frames left");
  EXPECT_EQ(s.ToString(), "OUT_OF_MEMORY: no frames left");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDenied("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(Unsupported("").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Busy("").code(), StatusCode::kBusy);
  EXPECT_EQ(FaultError("").code(), StatusCode::kFault);
  EXPECT_EQ(Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(QuotaExceeded("").code(), StatusCode::kQuotaExceeded);
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_NE(StatusCodeName(StatusCode::kOutOfMemory), StatusCodeName(StatusCode::kNotFound));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return InvalidArgument("negative");
  }
  return OkStatus();
}

Status Propagates(int x) {
  O1_RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Status UsesAssign(int x, int* out) {
  O1_ASSIGN_OR_RETURN(*out, Half(x));
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UsesAssign(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UsesAssign(7, &out).ok());
}

}  // namespace
}  // namespace o1mem
