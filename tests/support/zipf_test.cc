#include "src/support/zipf.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 2000, 300);
  }
}

TEST(ZipfTest, SkewConcentratesOnHotItems) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(2);
  std::vector<int> counts(1000, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    counts[zipf.Next(rng)]++;
  }
  // Item 0 dominates and the head carries most of the mass.
  EXPECT_GT(counts[0], counts[100] * 10);
  int head = 0;
  for (int i = 0; i < 100; ++i) {
    head += counts[i];
  }
  EXPECT_GT(head, kDraws / 2);
}

TEST(ZipfTest, AllDrawsInRange) {
  ZipfGenerator zipf(7, 1.2);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 7u);
  }
}

TEST(ZipfTest, DeterministicGivenSeed) {
  ZipfGenerator zipf(100, 0.8);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Next(a), zipf.Next(b));
  }
}

}  // namespace
}  // namespace o1mem
