#include "src/support/stats.h"

#include <gtest/gtest.h>

#include "src/support/table.h"

namespace o1mem {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, MeanMinMax) {
  RunningStat s;
  for (double x : {3.0, 1.0, 2.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStatTest, VarianceMatchesClosedForm) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
}

TEST(SamplesTest, PercentilesInterpolate) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

TEST(SamplesTest, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.Percentile(0), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.Percentile(100), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(SamplesTest, SingleSampleIsEveryPercentile) {
  Samples s;
  s.Add(42);
  EXPECT_NEAR(s.Percentile(0), 42.0, 1e-9);
  EXPECT_NEAR(s.Percentile(50), 42.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 42.0, 1e-9);
}

TEST(SamplesTest, TwoSamplesInterpolateBetweenRanks) {
  Samples s;
  s.Add(10);
  s.Add(20);
  EXPECT_NEAR(s.Percentile(0), 10.0, 1e-9);
  EXPECT_NEAR(s.Percentile(25), 12.5, 1e-9);
  EXPECT_NEAR(s.Percentile(50), 15.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 20.0, 1e-9);
}

TEST(SamplesTest, PercentileAfterLateAddRestoresOrder) {
  Samples s;
  s.Add(10);
  s.Add(1);
  EXPECT_NEAR(s.Percentile(100), 10.0, 1e-9);
  s.Add(20);
  EXPECT_NEAR(s.Percentile(100), 20.0, 1e-9);
}

TEST(TableTest, FormatsNumbers) {
  EXPECT_EQ(Table::Int(12345), "12345");
  EXPECT_EQ(Table::Num(2.0), "2.0");
  EXPECT_EQ(Table::Num(0.125), "0.125");
}

TEST(TableTest, RowCountExcludesHeader) {
  Table t("demo");
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace o1mem
