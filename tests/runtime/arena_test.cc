#include "src/runtime/arena.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

SystemConfig RuntimeConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  return config;
}

class ArenaTest : public ::testing::Test {
 protected:
  ArenaTest() : sys_(RuntimeConfig()) {
    auto proc = sys_.Launch(Backend::kFom);
    O1_CHECK(proc.ok());
    proc_ = *proc;
  }

  System sys_;
  Process* proc_ = nullptr;
};

TEST_F(ArenaTest, AllocationsAreUsableAndAligned) {
  auto arena = ObjectArena::Create(&sys_, proc_, "/arena/a", 4 * kMiB);
  ASSERT_TRUE(arena.ok());
  auto a = arena->Allocate(100);
  auto b = arena->Allocate(1, 64);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(IsAligned(*b, 64));
  EXPECT_GE(*b, *a + 100);
  std::vector<uint8_t> data(100, 0xAA);
  ASSERT_TRUE(sys_.UserWrite(*proc_, *a, data).ok());
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(sys_.UserRead(*proc_, *a, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(arena->allocation_count(), 2u);
}

TEST_F(ArenaTest, ExhaustionThenResetRecovers) {
  auto arena = ObjectArena::Create(&sys_, proc_, "/arena/small", kMiB);
  ASSERT_TRUE(arena.ok());
  while (arena->Allocate(64 * kKiB).ok()) {
  }
  auto full = arena->Allocate(64 * kKiB);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kOutOfMemory);
  const uint64_t t0 = sys_.ctx().now();
  ASSERT_TRUE(arena->Reset().ok());
  // O(1): resetting a full arena costs the same tiny constant as an alloc.
  EXPECT_LT(sys_.ctx().now() - t0, 100u);
  EXPECT_EQ(arena->used_bytes(), 0u);
  EXPECT_TRUE(arena->Allocate(64 * kKiB).ok());
}

TEST_F(ArenaTest, ResetCostIndependentOfObjectCount) {
  auto arena = ObjectArena::Create(&sys_, proc_, "/arena/many", 32 * kMiB);
  ASSERT_TRUE(arena.ok());
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(arena->Allocate(128).ok());
  }
  const uint64_t t0 = sys_.ctx().now();
  ASSERT_TRUE(arena->Reset().ok());
  const uint64_t reset_cost = sys_.ctx().now() - t0;
  EXPECT_LT(reset_cost, 100u);  // not 100k frees
}

TEST_F(ArenaTest, DestroyReleasesStorage) {
  const uint64_t free_before = sys_.pmfs().free_bytes();
  auto arena = ObjectArena::Create(&sys_, proc_, "/arena/tmp", 16 * kMiB);
  ASSERT_TRUE(arena.ok());
  EXPECT_LT(sys_.pmfs().free_bytes(), free_before);
  ASSERT_TRUE(arena->Destroy().ok());
  EXPECT_EQ(sys_.pmfs().free_bytes(), free_before);
}

// Regression: chained arenas must recycle their chunks through the shared
// pool instead of leaking mappings. A Reset keeps one chunk warm and
// returns the rest; re-acquiring capacity is then served from the pool
// (pool_reuses grows) with no new address space (mmap_bytes flat).
TEST_F(ArenaTest, ChainedResetReturnsChunksToPool) {
  SizeClassAllocator heap(&sys_, proc_);
  auto arena = ObjectArena::CreateChained(&sys_, proc_, &heap, 4 * kMiB);
  ASSERT_TRUE(arena.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(arena->Allocate(300 * kKiB).ok());
  }
  const uint64_t mmap_after_create = heap.stats().mmap_bytes;
  ASSERT_TRUE(arena->Reset().ok());
  const uint64_t reuses_before = heap.stats().pool_reuses;
  // A second chained arena of the same capacity must be fed from the pool.
  auto again = ObjectArena::CreateChained(&sys_, proc_, &heap, 3 * kMiB);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(heap.stats().pool_reuses, reuses_before);
  EXPECT_EQ(heap.stats().mmap_bytes, mmap_after_create);
  ASSERT_TRUE(again->Destroy().ok());
  ASSERT_TRUE(arena->Destroy().ok());
}

// Regression: arena churn (create/fill/destroy in a loop) must not grow the
// mapped footprint -- after the first round every acquisition is a pool
// reuse.
TEST_F(ArenaTest, ChainedChurnDoesNotLeakMappings) {
  SizeClassAllocator heap(&sys_, proc_);
  uint64_t mmap_after_first = 0;
  for (int round = 0; round < 5; ++round) {
    auto arena = ObjectArena::CreateChained(&sys_, proc_, &heap, 2 * kMiB);
    ASSERT_TRUE(arena.ok());
    ASSERT_TRUE(arena->Allocate(kMiB).ok());
    ASSERT_TRUE(arena->Destroy().ok());
    if (round == 0) {
      mmap_after_first = heap.stats().mmap_bytes;
    } else {
      EXPECT_EQ(heap.stats().mmap_bytes, mmap_after_first) << "round " << round;
    }
  }
  EXPECT_GE(heap.stats().pool_reuses, 4u);
}

TEST_F(ArenaTest, InvalidRequestsRejected) {
  auto arena = ObjectArena::Create(&sys_, proc_, "/arena/v", kMiB);
  ASSERT_TRUE(arena.ok());
  EXPECT_FALSE(arena->Allocate(0).ok());
  EXPECT_FALSE(arena->Allocate(16, 3).ok());
  EXPECT_FALSE(ObjectArena::Create(&sys_, proc_, "/arena/zero", 0).ok());
  auto baseline = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(ObjectArena::Create(&sys_, *baseline, "/arena/b", kMiB).status().code(),
            StatusCode::kUnsupported);
}

}  // namespace
}  // namespace o1mem
