#include "src/runtime/persistent_heap.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

SystemConfig HeapConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  return config;
}

class PersistentHeapTest : public ::testing::Test {
 protected:
  PersistentHeapTest() : sys_(HeapConfig()) { NewProcess(); }

  void NewProcess() {
    auto proc = sys_.Launch(Backend::kFom);
    O1_CHECK(proc.ok());
    proc_ = *proc;
  }

  System sys_;
  Process* proc_ = nullptr;
};

TEST_F(PersistentHeapTest, FreshHeapAllocatesAndStoresObjects) {
  auto heap = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/h", 8 * kMiB);
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap->recovered());
  auto off = heap->Allocate(256);
  ASSERT_TRUE(off.ok());
  std::vector<uint8_t> data(256, 0x3b);
  ASSERT_TRUE(heap->WriteObject(*off, data).ok());
  std::vector<uint8_t> out(256);
  ASSERT_TRUE(heap->ReadObject(*off, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(PersistentHeapTest, OffsetsStableAndDisjoint) {
  auto heap = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/d", 8 * kMiB);
  ASSERT_TRUE(heap.ok());
  auto a = heap->Allocate(100);
  auto b = heap->Allocate(100);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE(*b, *a + 100);
  EXPECT_TRUE(IsAligned(heap->AddressOf(0), 1));  // smoke: address math works
}

TEST_F(PersistentHeapTest, RootsRoundTripAndOverwrite) {
  auto heap = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/r", 8 * kMiB);
  ASSERT_TRUE(heap.ok());
  auto off = heap->Allocate(64);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(heap->SetRoot("index", *off).ok());
  EXPECT_EQ(heap->GetRoot("index").value(), *off);
  EXPECT_FALSE(heap->GetRoot("missing").ok());
  auto off2 = heap->Allocate(64);
  ASSERT_TRUE(off2.ok());
  ASSERT_TRUE(heap->SetRoot("index", *off2).ok());
  EXPECT_EQ(heap->GetRoot("index").value(), *off2);
}

TEST_F(PersistentHeapTest, EverythingSurvivesCrash) {
  uint64_t obj_offset = 0;
  {
    auto heap = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/p", 8 * kMiB);
    ASSERT_TRUE(heap.ok());
    auto off = heap->Allocate(128);
    ASSERT_TRUE(off.ok());
    obj_offset = *off;
    std::vector<uint8_t> data(128);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i ^ 0x5a);
    }
    ASSERT_TRUE(heap->WriteObject(obj_offset, data).ok());
    ASSERT_TRUE(heap->SetRoot("the-object", obj_offset).ok());
  }
  ASSERT_TRUE(sys_.Crash().ok());
  NewProcess();
  auto heap = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/p", 8 * kMiB);
  ASSERT_TRUE(heap.ok());
  EXPECT_TRUE(heap->recovered());
  auto root = heap->GetRoot("the-object");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, obj_offset);
  std::vector<uint8_t> out(128);
  ASSERT_TRUE(heap->ReadObject(*root, out).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<uint8_t>(i ^ 0x5a)) << i;
  }
  // The cursor was persisted: new allocations never overlap old objects.
  auto fresh = heap->Allocate(64);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GE(*fresh, obj_offset + 128);
}

TEST_F(PersistentHeapTest, CorruptHeaderDetectedNotReformatted) {
  {
    auto heap = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/c", kMiB);
    ASSERT_TRUE(heap.ok());
    ASSERT_TRUE(heap->Allocate(64).ok());
  }
  // Smash the magic through the file API.
  auto inode = sys_.fom().OpenSegment("/heap/c");
  ASSERT_TRUE(inode.ok());
  std::vector<uint8_t> garbage(8, 0xFF);
  ASSERT_TRUE(sys_.pmfs().WriteAt(*inode, 0, garbage).ok());
  auto reopened = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/c", kMiB);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistentHeapTest, ExhaustionAndBoundsChecking) {
  auto heap = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/x", kMiB);
  ASSERT_TRUE(heap.ok());
  auto off = heap->Allocate(64);
  ASSERT_TRUE(off.ok());
  std::vector<uint8_t> big(128);
  EXPECT_FALSE(heap->WriteObject(*off, big).ok());  // beyond allocation
  EXPECT_FALSE(heap->ReadObject(*off + 32, big).ok());
  EXPECT_FALSE(heap->Allocate(2 * kMiB).ok());      // larger than heap
  EXPECT_FALSE(heap->SetRoot("r", 2 * kMiB).ok());  // offset outside heap
}

TEST_F(PersistentHeapTest, RootTableCapacityEnforced) {
  auto heap = PersistentHeap::OpenOrCreate(&sys_, proc_, "/heap/full", kMiB);
  ASSERT_TRUE(heap.ok());
  for (int i = 0; i < PersistentHeap::kMaxRoots; ++i) {
    ASSERT_TRUE(heap->SetRoot("root" + std::to_string(i), 0).ok()) << i;
  }
  auto overflow = heap->SetRoot("one-too-many", 0);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.code(), StatusCode::kOutOfMemory);
  // Updating an existing root still works.
  EXPECT_TRUE(heap->SetRoot("root0", 16).ok());
}

}  // namespace
}  // namespace o1mem
