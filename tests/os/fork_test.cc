// fork(2) semantics: baseline copy-on-write vs FOM share-on-fork.
//
// The paper gives up copy-on-write under file-only memory (Sec. 3.1), so the
// two backends genuinely diverge here: baseline children get private copies
// (made lazily on first write), FOM children share the same segment files.
// These tests nail down both behaviours and the COW machinery's corner
// cases.
#include <gtest/gtest.h>

#include "src/os/system.h"

namespace o1mem {
namespace {

SystemConfig ForkConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 256 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  return config;
}

class ForkTest : public ::testing::Test {
 protected:
  ForkTest() : sys_(ForkConfig()) {}

  Status WriteByte(Process& proc, Vaddr vaddr, uint8_t value) {
    return sys_.UserWrite(proc, vaddr, std::span<const uint8_t>(&value, 1));
  }
  Result<uint8_t> ReadByte(Process& proc, Vaddr vaddr) {
    uint8_t value = 0;
    O1_RETURN_IF_ERROR(sys_.UserRead(proc, vaddr, std::span<uint8_t>(&value, 1)));
    return value;
  }

  System sys_;
};

TEST_F(ForkTest, BaselineChildSeesParentDataThenDiverges) {
  auto parent = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(parent.ok());
  auto vaddr = sys_.Mmap(**parent, MmapArgs{.length = 16 * kPageSize, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(WriteByte(**parent, *vaddr, 7).ok());

  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  // Child sees the parent's data...
  EXPECT_EQ(ReadByte(**child, *vaddr).value(), 7);
  // ...but writes diverge: COW gives each side a private copy.
  ASSERT_TRUE(WriteByte(**child, *vaddr, 42).ok());
  EXPECT_EQ(ReadByte(**child, *vaddr).value(), 42);
  EXPECT_EQ(ReadByte(**parent, *vaddr).value(), 7);
  // Parent writes after the break stay private too.
  ASSERT_TRUE(WriteByte(**parent, *vaddr, 9).ok());
  EXPECT_EQ(ReadByte(**parent, *vaddr).value(), 9);
  EXPECT_EQ(ReadByte(**child, *vaddr).value(), 42);
}

TEST_F(ForkTest, CowCopiesOnlyWrittenPages) {
  auto parent = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(parent.ok());
  auto vaddr = sys_.Mmap(**parent, MmapArgs{.length = 64 * kPageSize, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  const uint64_t frames_before = sys_.ctx().counters().frames_allocated;
  // Child writes 3 pages: exactly 3 frames get copied.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(WriteByte(**child, *vaddr + static_cast<Vaddr>(i) * kPageSize, 1).ok());
  }
  EXPECT_EQ(sys_.ctx().counters().frames_allocated, frames_before + 3);
  // Reads never copy.
  EXPECT_TRUE(sys_.UserTouch(**child, *vaddr + 10 * kPageSize, 1, AccessType::kRead).ok());
  EXPECT_EQ(sys_.ctx().counters().frames_allocated, frames_before + 3);
}

TEST_F(ForkTest, ParentWriteAfterForkBreaksCowToo) {
  auto parent = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(parent.ok());
  auto vaddr = sys_.Mmap(**parent, MmapArgs{.length = 4 * kPageSize, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(WriteByte(**parent, *vaddr, 1).ok());
  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  // Parent writes first this time.
  ASSERT_TRUE(WriteByte(**parent, *vaddr, 2).ok());
  EXPECT_EQ(ReadByte(**child, *vaddr).value(), 1);
  EXPECT_EQ(ReadByte(**parent, *vaddr).value(), 2);
}

TEST_F(ForkTest, ExitOfEitherSideLeavesTheOtherIntact) {
  auto parent = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(parent.ok());
  auto vaddr = sys_.Mmap(**parent, MmapArgs{.length = 8 * kPageSize, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(WriteByte(**parent, *vaddr, 5).ok());
  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  Process* child_ptr = *child;
  ASSERT_TRUE(sys_.Exit(*parent).ok());
  // The shared frames survive via refcount; child still reads its data.
  EXPECT_EQ(ReadByte(*child_ptr, *vaddr).value(), 5);
  ASSERT_TRUE(WriteByte(*child_ptr, *vaddr, 6).ok());
  EXPECT_EQ(ReadByte(*child_ptr, *vaddr).value(), 6);
  const uint64_t free_before = sys_.phys_manager().free_bytes();
  ASSERT_TRUE(sys_.Exit(child_ptr).ok());
  EXPECT_GT(sys_.phys_manager().free_bytes(), free_before);
}

TEST_F(ForkTest, SwappedPagesAreForkedToo) {
  auto parent = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(parent.ok());
  auto vaddr = sys_.Mmap(**parent, MmapArgs{.length = 4 * kPageSize, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(WriteByte(**parent, *vaddr + kPageSize, 0x5e).ok());
  ASSERT_TRUE((*parent)->pager().SwapOutPage(*vaddr + kPageSize).ok());
  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  // Both fault their copy back in independently.
  EXPECT_EQ(ReadByte(**child, *vaddr + kPageSize).value(), 0x5e);
  ASSERT_TRUE(WriteByte(**child, *vaddr + kPageSize, 1).ok());
  EXPECT_EQ(ReadByte(**parent, *vaddr + kPageSize).value(), 0x5e);
}

TEST_F(ForkTest, FileMappingsStayShared) {
  auto parent = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(parent.ok());
  auto fd = sys_.Creat(**parent, sys_.pmfs(), "/shared/f", FileFlags{});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.Ftruncate(**parent, *fd, 4 * kPageSize).ok());
  auto vaddr = sys_.Mmap(**parent, MmapArgs{.length = 4 * kPageSize, .populate = true,
                                            .fd = *fd});
  ASSERT_TRUE(vaddr.ok());
  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  // File mappings are MAP_SHARED in this model: both sides see one copy.
  ASSERT_TRUE(WriteByte(**child, *vaddr, 0x77).ok());
  EXPECT_EQ(ReadByte(**parent, *vaddr).value(), 0x77);
}

TEST_F(ForkTest, FomForkSharesSegments) {
  auto parent = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(parent.ok());
  auto vaddr = sys_.Mmap(**parent, MmapArgs{.length = 4 * kMiB});
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(WriteByte(**parent, *vaddr, 3).ok());
  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  // Same addresses, same memory: writes are visible both ways (the COW
  // casualty the paper concedes).
  EXPECT_EQ(ReadByte(**child, *vaddr).value(), 3);
  ASSERT_TRUE(WriteByte(**child, *vaddr, 4).ok());
  EXPECT_EQ(ReadByte(**parent, *vaddr).value(), 4);
  // And the segment file's map refcount reflects both processes.
  const InodeId inode = (*parent)->fom().mappings().at(*vaddr).inode;
  EXPECT_EQ(sys_.pmfs().Stat(inode)->map_count, 2u);
  ASSERT_TRUE(sys_.Exit(*parent).ok());
  EXPECT_EQ(ReadByte(**child, *vaddr).value(), 4);  // child keeps it alive
}

TEST_F(ForkTest, FomForkIsCheapBaselineForkIsLinear) {
  auto baseline_parent = sys_.Launch(Backend::kBaseline);
  auto fom_parent = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(baseline_parent.ok());
  ASSERT_TRUE(fom_parent.ok());
  ASSERT_TRUE(
      sys_.Mmap(**baseline_parent, MmapArgs{.length = 64 * kMiB, .populate = true}).ok());
  ASSERT_TRUE(sys_.Mmap(**fom_parent, MmapArgs{.length = 64 * kMiB}).ok());

  const uint64_t t0 = sys_.ctx().now();
  ASSERT_TRUE(sys_.Fork(**baseline_parent).ok());
  const uint64_t baseline_cost = sys_.ctx().now() - t0;
  const uint64_t t1 = sys_.ctx().now();
  ASSERT_TRUE(sys_.Fork(**fom_parent).ok());
  const uint64_t fom_cost = sys_.ctx().now() - t1;
  EXPECT_GT(baseline_cost, 50 * fom_cost);
}

TEST_F(ForkTest, DescriptorsInherited) {
  auto parent = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(parent.ok());
  auto fd = sys_.Creat(**parent, sys_.pmfs(), "/fds/f", FileFlags{});
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data{1, 2, 3};
  ASSERT_TRUE(sys_.Write(**parent, *fd, data).ok());
  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  std::vector<uint8_t> out(3);
  ASSERT_TRUE(sys_.Pread(**child, *fd, 0, out).ok());
  EXPECT_EQ(out, data);
  // Closing in the child does not close the parent's descriptor.
  ASSERT_TRUE(sys_.Close(**child, *fd).ok());
  EXPECT_TRUE(sys_.Pread(**parent, *fd, 0, out).ok());
}

TEST_F(ForkTest, GrandchildrenWork) {
  auto parent = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(parent.ok());
  auto vaddr = sys_.Mmap(**parent, MmapArgs{.length = 4 * kPageSize, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(WriteByte(**parent, *vaddr, 1).ok());
  auto child = sys_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  auto grandchild = sys_.Fork(**child);
  ASSERT_TRUE(grandchild.ok());
  EXPECT_EQ(ReadByte(**grandchild, *vaddr).value(), 1);
  ASSERT_TRUE(WriteByte(**grandchild, *vaddr, 3).ok());
  EXPECT_EQ(ReadByte(**parent, *vaddr).value(), 1);
  EXPECT_EQ(ReadByte(**child, *vaddr).value(), 1);
  EXPECT_EQ(ReadByte(**grandchild, *vaddr).value(), 3);
}

}  // namespace
}  // namespace o1mem
