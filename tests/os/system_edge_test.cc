// Edge and error paths of the System syscall layer.
#include <gtest/gtest.h>

#include "src/os/system.h"

namespace o1mem {
namespace {

SystemConfig EdgeConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 128 * kMiB;
  return config;
}

class SystemEdgeTest : public ::testing::Test {
 protected:
  SystemEdgeTest() : sys_(EdgeConfig()) {}
  System sys_;
};

TEST_F(SystemEdgeTest, BadFdOperationsRejected) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  std::vector<uint8_t> buf(8);
  EXPECT_FALSE(sys_.Read(**proc, 42, buf).ok());
  EXPECT_FALSE(sys_.Write(**proc, 42, buf).ok());
  EXPECT_FALSE(sys_.Close(**proc, 42).ok());
  EXPECT_FALSE(sys_.Ftruncate(**proc, 42, 100).ok());
  EXPECT_FALSE(sys_.Mmap(**proc, MmapArgs{.length = kPageSize, .fd = 42}).ok());
}

TEST_F(SystemEdgeTest, DoubleCloseRejected) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto fd = sys_.Creat(**proc, sys_.tmpfs(), "/x", FileFlags{});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.Close(**proc, *fd).ok());
  EXPECT_FALSE(sys_.Close(**proc, *fd).ok());
}

TEST_F(SystemEdgeTest, ZeroLengthMmapRejected) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  EXPECT_FALSE(sys_.Mmap(**proc, MmapArgs{.length = 0}).ok());
}

TEST_F(SystemEdgeTest, MunmapOfNothing) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  // Baseline munmap of an empty range is a successful no-op (POSIX-like);
  // FOM requires an existing mapping.
  EXPECT_TRUE(sys_.Munmap(**proc, 64 * kGiB, kPageSize).ok());
  auto fom_proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(fom_proc.ok());
  EXPECT_FALSE(sys_.Munmap(**fom_proc, 64 * kGiB, kPageSize).ok());
}

TEST_F(SystemEdgeTest, CreatDuplicatePathFails) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(sys_.Creat(**proc, sys_.pmfs(), "/dup", FileFlags{}).ok());
  EXPECT_FALSE(sys_.Creat(**proc, sys_.pmfs(), "/dup", FileFlags{}).ok());
}

TEST_F(SystemEdgeTest, UnlinkResolvesEitherFs) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(sys_.Creat(**proc, sys_.pmfs(), "/in-pm", FileFlags{}).ok());
  ASSERT_TRUE(sys_.Creat(**proc, sys_.tmpfs(), "/in-tmp", FileFlags{}).ok());
  EXPECT_TRUE(sys_.Unlink("/in-pm").ok());
  EXPECT_TRUE(sys_.Unlink("/in-tmp").ok());
  EXPECT_FALSE(sys_.Unlink("/nowhere").ok());
}

TEST_F(SystemEdgeTest, ExitClosesDescriptors) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto fd = sys_.Creat(**proc, sys_.pmfs(), "/held", FileFlags{});
  ASSERT_TRUE(fd.ok());
  const InodeId inode = sys_.pmfs().LookupPath("/held").value();
  ASSERT_TRUE(sys_.Unlink("/held").ok());
  // Alive because of the open ref.
  EXPECT_TRUE(sys_.pmfs().Stat(inode).ok());
  ASSERT_TRUE(sys_.Exit(*proc).ok());
  EXPECT_FALSE(sys_.pmfs().Stat(inode).ok());
}

TEST_F(SystemEdgeTest, MprotectOnUnmappedRange) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  // Baseline mprotect over a hole succeeds vacuously (nothing to change);
  // FOM requires a mapping base.
  EXPECT_TRUE(sys_.Mprotect(**proc, 64 * kGiB, kPageSize, Prot::kRead).ok());
  auto fom_proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(fom_proc.ok());
  EXPECT_FALSE(sys_.Mprotect(**fom_proc, 64 * kGiB, kPageSize, Prot::kRead).ok());
}

TEST_F(SystemEdgeTest, ReadAtEofAndShortReads) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto fd = sys_.Creat(**proc, sys_.tmpfs(), "/short", FileFlags{});
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(10, 1);
  ASSERT_TRUE(sys_.Write(**proc, *fd, data).ok());
  std::vector<uint8_t> big(100, 0);
  auto n = sys_.Pread(**proc, *fd, 5, big);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  auto eof = sys_.Pread(**proc, *fd, 10, big);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
}

TEST_F(SystemEdgeTest, SequentialReadWriteAdvanceTogether) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto fd = sys_.Creat(**proc, sys_.tmpfs(), "/seq", FileFlags{});
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> a{1, 2}, b{3, 4};
  ASSERT_TRUE(sys_.Write(**proc, *fd, a).ok());
  ASSERT_TRUE(sys_.Write(**proc, *fd, b).ok());
  // Reopen-like: pread whole file.
  std::vector<uint8_t> out(4);
  ASSERT_TRUE(sys_.Pread(**proc, *fd, 0, out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST_F(SystemEdgeTest, CrashInvalidatesFomMapRefsCleanly) {
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  auto seg = sys_.fom().CreateSegment(
      "/persist/mapped", 2 * kMiB, SegmentOptions{.flags = FileFlags{.persistent = true}});
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(sys_.fom().Map((*proc)->fom(), *seg, Prot::kReadWrite).ok());
  EXPECT_EQ(sys_.pmfs().Stat(*seg)->map_count, 1u);
  ASSERT_TRUE(sys_.Crash().ok());
  // The mapping died with the process; refcount must be clean, and the file
  // must be mappable again.
  auto found = sys_.fom().OpenSegment("/persist/mapped");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(sys_.pmfs().Stat(*found)->map_count, 0u);
  auto proc2 = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc2.ok());
  EXPECT_TRUE(sys_.fom().Map((*proc2)->fom(), *found, Prot::kRead).ok());
}

TEST_F(SystemEdgeTest, TmpfsQuotaDefaultsToHalfOfDram) {
  EXPECT_EQ(sys_.tmpfs().quota_bytes(), 64 * kMiB);
}

TEST_F(SystemEdgeTest, ManySmallProcessesLaunchAndExit) {
  for (int round = 0; round < 10; ++round) {
    std::vector<Process*> procs;
    for (int i = 0; i < 10; ++i) {
      auto proc = sys_.Launch(i % 2 == 0 ? Backend::kBaseline : Backend::kFom);
      ASSERT_TRUE(proc.ok());
      procs.push_back(*proc);
    }
    for (Process* p : procs) {
      ASSERT_TRUE(sys_.Exit(p).ok());
    }
  }
  EXPECT_EQ(sys_.process_count(), 0u);
}

}  // namespace
}  // namespace o1mem
