#include "src/os/system.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

SystemConfig SmallConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  return config;
}

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : sys_(SmallConfig()) {}
  System sys_;
};

TEST_F(SystemTest, LaunchBaselineProcessWithSegments) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  Process& p = **proc;
  // Code is populated and executable; heap/stack fault in on demand.
  EXPECT_TRUE(sys_.UserTouch(p, p.code_base(), 1, AccessType::kExec).ok());
  EXPECT_TRUE(sys_.UserTouch(p, p.heap_base(), 1, AccessType::kWrite).ok());
  EXPECT_TRUE(sys_.UserTouch(p, p.stack_base(), 1, AccessType::kWrite).ok());
  // Writing to code is denied.
  EXPECT_FALSE(sys_.UserTouch(p, p.code_base(), 1, AccessType::kWrite).ok());
}

TEST_F(SystemTest, LaunchFomProcessWithSegmentFiles) {
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  Process& p = **proc;
  EXPECT_TRUE(sys_.UserTouch(p, p.code_base(), 1, AccessType::kExec).ok());
  EXPECT_TRUE(sys_.UserTouch(p, p.heap_base(), 1, AccessType::kWrite).ok());
  EXPECT_TRUE(sys_.UserTouch(p, p.stack_base(), 1, AccessType::kWrite).ok());
  // FOM: zero page faults for all of that.
  EXPECT_EQ(sys_.ctx().counters().minor_faults, 0u);
}

TEST_F(SystemTest, AnonymousMmapRoundTripBothBackends) {
  for (Backend backend : {Backend::kBaseline, Backend::kFom}) {
    auto proc = sys_.Launch(backend);
    ASSERT_TRUE(proc.ok());
    auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 64 * kPageSize});
    ASSERT_TRUE(vaddr.ok());
    std::vector<uint8_t> data(10000, 0x3c);
    ASSERT_TRUE(sys_.UserWrite(**proc, *vaddr + 5000, data).ok());
    std::vector<uint8_t> out(10000);
    ASSERT_TRUE(sys_.UserRead(**proc, *vaddr + 5000, out).ok());
    EXPECT_EQ(out, data);
    ASSERT_TRUE(sys_.Munmap(**proc, *vaddr, 64 * kPageSize).ok());
    EXPECT_FALSE(sys_.UserTouch(**proc, *vaddr, 1, AccessType::kRead).ok());
  }
}

TEST_F(SystemTest, AnonymousMemoryIsZeroedBothBackends) {
  for (Backend backend : {Backend::kBaseline, Backend::kFom}) {
    auto proc = sys_.Launch(backend);
    ASSERT_TRUE(proc.ok());
    auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 8 * kPageSize});
    ASSERT_TRUE(vaddr.ok());
    std::vector<uint8_t> out(256, 0xff);
    ASSERT_TRUE(sys_.UserRead(**proc, *vaddr + kPageSize, out).ok());
    for (uint8_t b : out) {
      ASSERT_EQ(b, 0);
    }
  }
}

TEST_F(SystemTest, FileMmapTmpfsDemandVsPopulate) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto fd = sys_.Creat(**proc, sys_.tmpfs(), "/t/file", FileFlags{});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.Ftruncate(**proc, *fd, 64 * kPageSize).ok());

  auto demand = sys_.Mmap(**proc, MmapArgs{.length = 64 * kPageSize, .fd = *fd});
  ASSERT_TRUE(demand.ok());
  auto populate =
      sys_.Mmap(**proc, MmapArgs{.length = 64 * kPageSize, .populate = true, .fd = *fd});
  ASSERT_TRUE(populate.ok());

  const uint64_t faults_before = sys_.ctx().counters().minor_faults;
  ASSERT_TRUE(sys_.UserTouch(**proc, *populate, 64 * kPageSize, AccessType::kRead).ok());
  EXPECT_EQ(sys_.ctx().counters().minor_faults, faults_before);
  ASSERT_TRUE(sys_.UserTouch(**proc, *demand + 3 * kPageSize, 1, AccessType::kRead).ok());
  EXPECT_EQ(sys_.ctx().counters().minor_faults, faults_before + 1);
  // Both views see the same backing page.
  std::vector<uint8_t> data{1, 2, 3};
  ASSERT_TRUE(sys_.UserWrite(**proc, *demand + 3 * kPageSize, data).ok());
  std::vector<uint8_t> out(3);
  ASSERT_TRUE(sys_.UserRead(**proc, *populate + 3 * kPageSize, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(SystemTest, FileIoSyscalls) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto fd = sys_.Creat(**proc, sys_.pmfs(), "/data/log", FileFlags{.persistent = true});
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(1000, 0x61);
  auto wrote = sys_.Write(**proc, *fd, data);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 1000u);
  // Sequential offset advanced; pread sees from the start.
  std::vector<uint8_t> out(1000);
  auto seq = sys_.Read(**proc, *fd, out);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 0u);  // at EOF
  auto pread = sys_.Pread(**proc, *fd, 0, out);
  ASSERT_TRUE(pread.ok());
  EXPECT_EQ(*pread, 1000u);
  EXPECT_EQ(out, data);
  ASSERT_TRUE(sys_.Close(**proc, *fd).ok());
  EXPECT_FALSE(sys_.Read(**proc, *fd, out).ok());
}

TEST_F(SystemTest, OpenResolvesPmfsThenTmpfs) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(sys_.pmfs().Create("/only/pm", FileFlags{.persistent = true}).ok());
  ASSERT_TRUE(sys_.tmpfs().Create("/only/tmp", FileFlags{}).ok());
  EXPECT_TRUE(sys_.Open(**proc, "/only/pm").ok());
  EXPECT_TRUE(sys_.Open(**proc, "/only/tmp").ok());
  EXPECT_FALSE(sys_.Open(**proc, "/missing").ok());
}

TEST_F(SystemTest, MprotectBothBackends) {
  for (Backend backend : {Backend::kBaseline, Backend::kFom}) {
    auto proc = sys_.Launch(backend);
    ASSERT_TRUE(proc.ok());
    auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 16 * kPageSize, .populate = true});
    ASSERT_TRUE(vaddr.ok());
    ASSERT_TRUE(sys_.UserTouch(**proc, *vaddr, 1, AccessType::kWrite).ok());
    ASSERT_TRUE(sys_.Mprotect(**proc, *vaddr, 16 * kPageSize, Prot::kRead).ok());
    EXPECT_FALSE(sys_.UserTouch(**proc, *vaddr, 1, AccessType::kWrite).ok())
        << "backend " << static_cast<int>(backend);
    EXPECT_TRUE(sys_.UserTouch(**proc, *vaddr, 1, AccessType::kRead).ok());
  }
}

TEST_F(SystemTest, PartialMunmapAnonymousOnly) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto anon = sys_.Mmap(**proc, MmapArgs{.length = 8 * kPageSize, .populate = true});
  ASSERT_TRUE(anon.ok());
  ASSERT_TRUE(sys_.Munmap(**proc, *anon + 2 * kPageSize, 2 * kPageSize).ok());
  EXPECT_TRUE(sys_.UserTouch(**proc, *anon, 1, AccessType::kRead).ok());
  EXPECT_FALSE(sys_.UserTouch(**proc, *anon + 2 * kPageSize, 1, AccessType::kRead).ok());
  EXPECT_TRUE(sys_.UserTouch(**proc, *anon + 4 * kPageSize, 1, AccessType::kRead).ok());

  auto fd = sys_.Creat(**proc, sys_.tmpfs(), "/pm/f", FileFlags{});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.Ftruncate(**proc, *fd, 8 * kPageSize).ok());
  auto file_map = sys_.Mmap(**proc, MmapArgs{.length = 8 * kPageSize, .fd = *fd});
  ASSERT_TRUE(file_map.ok());
  EXPECT_EQ(sys_.Munmap(**proc, *file_map, 2 * kPageSize).code(), StatusCode::kUnsupported);
  EXPECT_TRUE(sys_.Munmap(**proc, *file_map, 8 * kPageSize).ok());
}

TEST_F(SystemTest, ExitReleasesMemory) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = kMiB, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  const uint64_t free_with_proc = sys_.phys_manager().free_bytes();
  ASSERT_TRUE(sys_.Exit(*proc).ok());
  EXPECT_GT(sys_.phys_manager().free_bytes(), free_with_proc);
  EXPECT_EQ(sys_.process_count(), 0u);
}

TEST_F(SystemTest, FomExitFreesSegmentFiles) {
  const uint64_t free_before = sys_.pmfs().free_bytes();
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  EXPECT_LT(sys_.pmfs().free_bytes(), free_before);
  ASSERT_TRUE(sys_.Exit(*proc).ok());
  EXPECT_EQ(sys_.pmfs().free_bytes(), free_before);
}

TEST_F(SystemTest, BaselineReclaimUnderPressure) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 64 * kPageSize, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  auto stats = sys_.ReclaimBaseline(**proc, 16, System::ReclaimPolicy::kClock);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 16u);
  EXPECT_GT(sys_.ctx().counters().pages_swapped_out, 0u);
  // Data comes back via major faults.
  EXPECT_TRUE(sys_.UserTouch(**proc, *vaddr, 64 * kPageSize, AccessType::kRead).ok());
}

TEST_F(SystemTest, CrashKillsProcessesRecoversPersistentData) {
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  // Persistent segment with data.
  auto seg = sys_.fom().CreateSegment(
      "/db/table", 2 * kMiB, SegmentOptions{.flags = FileFlags{.persistent = true}});
  ASSERT_TRUE(seg.ok());
  auto vaddr = sys_.fom().Map((*proc)->fom(), *seg, Prot::kReadWrite);
  ASSERT_TRUE(vaddr.ok());
  std::vector<uint8_t> data(128, 0xEE);
  ASSERT_TRUE(sys_.UserWrite(**proc, *vaddr + 100, data).ok());

  ASSERT_TRUE(sys_.Crash().ok());
  EXPECT_EQ(sys_.process_count(), 0u);

  auto proc2 = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc2.ok());
  auto seg2 = sys_.fom().OpenSegment("/db/table");
  ASSERT_TRUE(seg2.ok());
  auto v2 = sys_.fom().Map((*proc2)->fom(), *seg2, Prot::kRead);
  ASSERT_TRUE(v2.ok());
  std::vector<uint8_t> out(128);
  ASSERT_TRUE(sys_.UserRead(**proc2, *v2 + 100, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(SystemTest, CrashEmptiesTmpfsAndDram) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(sys_.Creat(**proc, sys_.tmpfs(), "/gone", FileFlags{}).ok());
  ASSERT_TRUE(sys_.Crash().ok());
  auto proc2 = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc2.ok());
  EXPECT_FALSE(sys_.Open(**proc2, "/gone").ok());
}

TEST_F(SystemTest, SyscallsAreCharged) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  const uint64_t syscalls_before = sys_.ctx().counters().syscalls;
  const uint64_t t0 = sys_.ctx().now();
  ASSERT_TRUE(sys_.Mmap(**proc, MmapArgs{.length = kPageSize}).ok());
  EXPECT_EQ(sys_.ctx().counters().syscalls, syscalls_before + 1);
  EXPECT_GT(sys_.ctx().now() - t0, sys_.ctx().cost().syscall_cycles);
}

TEST_F(SystemTest, FomMmapUsesConfiguredMechanism) {
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  auto with_splice = sys_.Mmap(
      **proc, MmapArgs{.length = 4 * kMiB, .mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(with_splice.ok());
  EXPECT_GT(sys_.ctx().counters().subtree_splices, 0u);
}

}  // namespace
}  // namespace o1mem
