// Tests for the extension features: large pages (+ huge-page splitting),
// memory pinning, userfault delegation, and virtualized page walks.
#include <gtest/gtest.h>

#include "src/os/system.h"

namespace o1mem {
namespace {

SystemConfig FeatureConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 256 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  return config;
}

class LargePageTest : public ::testing::Test {
 protected:
  LargePageTest() : sys_(FeatureConfig()) {
    auto proc = sys_.Launch(Backend::kBaseline);
    O1_CHECK(proc.ok());
    proc_ = *proc;
  }

  System sys_;
  Process* proc_ = nullptr;
};

TEST_F(LargePageTest, FaultInstallsOne2MiBPage) {
  auto vaddr = sys_.Mmap(*proc_, MmapArgs{.length = 8 * kMiB, .large_pages = true});
  ASSERT_TRUE(vaddr.ok());
  EXPECT_TRUE(IsAligned(*vaddr, kLargePageSize));
  const uint64_t faults_before = sys_.ctx().counters().minor_faults;
  // Touch 2 MiB worth of 4K pages: one fault covers them all.
  for (uint64_t off = 0; off < kLargePageSize; off += kPageSize) {
    ASSERT_TRUE(sys_.UserTouch(*proc_, *vaddr + off, 1, AccessType::kRead).ok());
  }
  EXPECT_EQ(sys_.ctx().counters().minor_faults, faults_before + 1);
  auto t = proc_->address_space().page_table().Lookup(*vaddr);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->page_bytes, kLargePageSize);
}

TEST_F(LargePageTest, PopulateUsesFarFewerOperations) {
  auto small = sys_.Mmap(*proc_, MmapArgs{.length = 32 * kMiB, .populate = true});
  ASSERT_TRUE(small.ok());
  const uint64_t ptes_small = sys_.ctx().counters().ptes_written;
  auto large = sys_.Mmap(
      *proc_, MmapArgs{.length = 32 * kMiB, .populate = true, .large_pages = true});
  ASSERT_TRUE(large.ok());
  const uint64_t ptes_large = sys_.ctx().counters().ptes_written - ptes_small;
  EXPECT_EQ(ptes_large, 16u);  // 32 MiB / 2 MiB leaves
}

TEST_F(LargePageTest, DataRoundTripsThroughLargePages) {
  auto vaddr = sys_.Mmap(
      *proc_, MmapArgs{.length = 4 * kMiB, .populate = true, .large_pages = true});
  ASSERT_TRUE(vaddr.ok());
  std::vector<uint8_t> data(kPageSize * 3, 0x4d);
  ASSERT_TRUE(sys_.UserWrite(*proc_, *vaddr + kLargePageSize - kPageSize, data).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(sys_.UserRead(*proc_, *vaddr + kLargePageSize - kPageSize, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(LargePageTest, MisuseRejected) {
  // File-backed or non-2MiB-multiple requests cannot use large pages.
  EXPECT_FALSE(
      sys_.Mmap(*proc_, MmapArgs{.length = kMiB, .large_pages = true}).ok());
  auto fd = sys_.Creat(*proc_, sys_.tmpfs(), "/f", FileFlags{});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.Ftruncate(*proc_, *fd, 2 * kMiB).ok());
  EXPECT_FALSE(sys_.Mmap(*proc_, MmapArgs{.length = 2 * kMiB, .large_pages = true,
                                          .fd = *fd})
                   .ok());
}

TEST_F(LargePageTest, PartialUnmapRejectedWholeUnmapWorks) {
  auto vaddr = sys_.Mmap(
      *proc_, MmapArgs{.length = 4 * kMiB, .populate = true, .large_pages = true});
  ASSERT_TRUE(vaddr.ok());
  EXPECT_EQ(sys_.Munmap(*proc_, *vaddr, 2 * kMiB).code(), StatusCode::kUnsupported);
  const uint64_t free_before = sys_.phys_manager().free_bytes();
  ASSERT_TRUE(sys_.Munmap(*proc_, *vaddr, 4 * kMiB).ok());
  EXPECT_EQ(sys_.phys_manager().free_bytes(), free_before + 4 * kMiB);
  EXPECT_FALSE(sys_.UserTouch(*proc_, *vaddr, 1, AccessType::kRead).ok());
}

TEST_F(LargePageTest, SwapOutSplitsHugePageFirst) {
  // The paper: "2MB pages are expensive to swap and Linux instead fragments
  // them into 4KB pages".
  const uint64_t resident_base = proc_->pager().resident_anon_pages();  // launch segments
  auto vaddr = sys_.Mmap(
      *proc_, MmapArgs{.length = 2 * kMiB, .populate = true, .large_pages = true});
  ASSERT_TRUE(vaddr.ok());
  std::vector<uint8_t> data(64, 0x99);
  ASSERT_TRUE(sys_.UserWrite(*proc_, *vaddr + 5 * kPageSize, data).ok());
  EXPECT_EQ(proc_->pager().resident_anon_pages(), resident_base + 1);  // one 2 MiB entry

  const uint64_t ptes_before = sys_.ctx().counters().ptes_written;
  ASSERT_TRUE(proc_->pager().SwapOutPage(*vaddr).ok());
  // Split wrote 512 PTEs, then one page went to swap.
  EXPECT_GE(sys_.ctx().counters().ptes_written, ptes_before + 512);
  EXPECT_EQ(proc_->pager().resident_anon_pages(), resident_base + 511);
  EXPECT_EQ(proc_->pager().swapped_pages(), 1u);
  // Untouched data in the split remainder is intact, and the swapped page
  // faults back in with its contents.
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(sys_.UserRead(*proc_, *vaddr + 5 * kPageSize, out).ok());
  EXPECT_EQ(out, data);
}

class PinTest : public ::testing::Test {
 protected:
  PinTest() : sys_(FeatureConfig()) {}

  static bool Mapped(Process& proc, Vaddr vaddr) {
    return proc.address_space().page_table().Lookup(vaddr).has_value();
  }

  System sys_;
};

TEST_F(PinTest, PinnedPagesSurviveReclaim) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 16 * kPageSize, .populate = true});
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(sys_.Mlock(**proc, *vaddr, 8 * kPageSize).ok());
  for (int i = 0; i < 16; ++i) {
    (*proc)->pager().TestAndClearReferenced(*vaddr + static_cast<Vaddr>(i) * kPageSize);
  }
  auto stats = sys_.ReclaimBaseline(**proc, 8, System::ReclaimPolicy::kClock);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 8u);  // only the unpinned half went out
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(Mapped(**proc, *vaddr + static_cast<Vaddr>(i) * kPageSize)) << i;
  }
  ASSERT_TRUE(sys_.Munlock(**proc, *vaddr, 8 * kPageSize).ok());
  auto more = sys_.ReclaimBaseline(**proc, 8, System::ReclaimPolicy::kClock);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(more->reclaimed, 8u);  // now they can go
}

TEST_F(PinTest, PinFaultsPagesInFirst) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  const uint64_t resident_base = (*proc)->pager().resident_anon_pages();
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 8 * kPageSize});
  ASSERT_TRUE(vaddr.ok());
  EXPECT_EQ((*proc)->pager().resident_anon_pages(), resident_base);
  ASSERT_TRUE(sys_.Mlock(**proc, *vaddr, 8 * kPageSize).ok());
  EXPECT_EQ((*proc)->pager().resident_anon_pages(), resident_base + 8);
}

TEST_F(PinTest, FomMlockIsValidationOnly) {
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 8 * kMiB});
  ASSERT_TRUE(vaddr.ok());
  const uint64_t t0 = sys_.ctx().now();
  ASSERT_TRUE(sys_.Mlock(**proc, *vaddr, 8 * kMiB).ok());
  // O(1): just the syscall + lookup, no per-page loop.
  EXPECT_LT(sys_.ctx().now() - t0, 5000u);
  EXPECT_FALSE(sys_.Mlock(**proc, *vaddr + kPageSize, kPageSize).ok());
}

class CountingUserFault : public System::UserFaultHandler {
 public:
  explicit CountingUserFault(System* sys) : sys_(sys) {}

  Status OnUserFault(Process& proc, Vaddr page_base, AccessType type) override {
    (void)type;
    ++faults;
    if (provide) {
      std::vector<uint8_t> data(kPageSize, 0xCD);
      return proc.pager().ProvidePage(page_base, data);
    }
    return OkStatus();  // let the kernel install a zero page
  }

  int faults = 0;
  bool provide = false;

 private:
  System* sys_;
};

class UserFaultTest : public ::testing::Test {
 protected:
  UserFaultTest() : sys_(FeatureConfig()) {}
  System sys_;
};

TEST_F(UserFaultTest, HandlerSeesFaultsInRegisteredRange) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 16 * kPageSize});
  ASSERT_TRUE(vaddr.ok());
  CountingUserFault handler(&sys_);
  ASSERT_TRUE(sys_.RegisterUserFault(**proc, *vaddr, 8 * kPageSize, &handler).ok());
  // Faults inside the range hit the handler; outside they do not.
  ASSERT_TRUE(sys_.UserTouch(**proc, *vaddr, 1, AccessType::kRead).ok());
  ASSERT_TRUE(sys_.UserTouch(**proc, *vaddr + 10 * kPageSize, 1, AccessType::kRead).ok());
  EXPECT_EQ(handler.faults, 1);
  // Kernel fallback installed a zero page.
  std::vector<uint8_t> out(4, 0xff);
  ASSERT_TRUE(sys_.UserRead(**proc, *vaddr, out).ok());
  EXPECT_EQ(out[0], 0);
}

TEST_F(UserFaultTest, HandlerProvidesItsOwnContents) {
  // App-level swapping: the handler supplies page contents (UFFDIO_COPY).
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 4 * kPageSize});
  ASSERT_TRUE(vaddr.ok());
  CountingUserFault handler(&sys_);
  handler.provide = true;
  ASSERT_TRUE(sys_.RegisterUserFault(**proc, *vaddr, 4 * kPageSize, &handler).ok());
  std::vector<uint8_t> out(8);
  ASSERT_TRUE(sys_.UserRead(**proc, *vaddr + kPageSize, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0xCD);
  }
  EXPECT_EQ(handler.faults, 1);
}

TEST_F(UserFaultTest, OverlapAndFomRejected) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = 8 * kPageSize});
  ASSERT_TRUE(vaddr.ok());
  CountingUserFault handler(&sys_);
  ASSERT_TRUE(sys_.RegisterUserFault(**proc, *vaddr, 4 * kPageSize, &handler).ok());
  EXPECT_FALSE(sys_.RegisterUserFault(**proc, *vaddr + kPageSize, kPageSize, &handler).ok());
  auto fom_proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(fom_proc.ok());
  EXPECT_EQ(sys_.RegisterUserFault(**fom_proc, 0, kPageSize, &handler).code(),
            StatusCode::kUnsupported);
}

TEST(VirtualizedWalkTest, NestedWalksCostMore) {
  auto run = [](bool virtualized, int depth) {
    MachineConfig config;
    config.dram_bytes = 16 * kMiB;
    config.nvm_bytes = 0;
    config.cost.virtualized_walks = virtualized;
    config.page_table_depth = depth;
    Machine machine(config);
    auto as = machine.CreateAddressSpace();
    O1_CHECK(as->page_table().MapPage(0, 0, kPageSize, Prot::kRead).ok());
    const uint64_t t0 = machine.ctx().now();
    O1_CHECK(machine.mmu().Translate(*as, 0, AccessType::kRead).ok());
    return machine.ctx().now() - t0;
  };
  const uint64_t native4 = run(false, 4);
  const uint64_t native5 = run(false, 5);
  const uint64_t virt4 = run(true, 4);
  const uint64_t virt5 = run(true, 5);
  EXPECT_GT(native5, native4);
  // 24/4 = 6x and 35/5 = 7x reference blowup for cold walks (modulo the
  // 1-cycle TLB-insert constant shared by all four).
  EXPECT_EQ(virt4 - 1, 6 * (native4 - 1));
  EXPECT_EQ(virt5 - 1, 7 * (native5 - 1));
}

TEST(VirtualizedWalkTest, WalkRefsMatchPaperNumbers) {
  CostModel cost;
  EXPECT_EQ(cost.WalkRefs(4), 4u);
  cost.virtualized_walks = true;
  EXPECT_EQ(cost.WalkRefs(4), 24u);
  EXPECT_EQ(cost.WalkRefs(5), 35u);  // Sec. 2: "up to 35 memory references"
}

}  // namespace
}  // namespace o1mem
