#include "src/os/malloc.h"

#include <gtest/gtest.h>

#include <set>

#include "src/support/rng.h"

namespace o1mem {
namespace {

SystemConfig MallocConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  return config;
}

class MallocTest : public ::testing::TestWithParam<Backend> {
 protected:
  MallocTest() : sys_(MallocConfig()) {
    auto proc = sys_.Launch(GetParam());
    O1_CHECK(proc.ok());
    proc_ = *proc;
    alloc_ = std::make_unique<SizeClassAllocator>(&sys_, proc_);
  }

  System sys_;
  Process* proc_ = nullptr;
  std::unique_ptr<SizeClassAllocator> alloc_;
};

TEST_P(MallocTest, ClassSelection) {
  EXPECT_EQ(SizeClassAllocator::ClassFor(1), 0);
  EXPECT_EQ(SizeClassAllocator::ClassFor(16), 0);
  EXPECT_EQ(SizeClassAllocator::ClassFor(17), 1);
  EXPECT_EQ(SizeClassAllocator::ClassFor(256 * kKiB), 14);
  EXPECT_EQ(SizeClassAllocator::ClassFor(256 * kKiB + 1), SizeClassAllocator::kClassCount);
}

TEST_P(MallocTest, AllocationsAreUsableMemory) {
  auto p = alloc_->Malloc(100);
  ASSERT_TRUE(p.ok());
  std::vector<uint8_t> data(100, 0x11);
  ASSERT_TRUE(sys_.UserWrite(*proc_, *p, data).ok());
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(sys_.UserRead(*proc_, *p, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(MallocTest, DistinctPointersNoOverlap) {
  std::set<Vaddr> seen;
  for (int i = 0; i < 1000; ++i) {
    auto p = alloc_->Malloc(64);
    ASSERT_TRUE(p.ok());
    // 64-byte class: pointers must be >= 64 apart.
    for (Vaddr q : seen) {
      ASSERT_TRUE(*p + 64 <= q || q + 64 <= *p);
    }
    seen.insert(*p);
  }
}

TEST_P(MallocTest, FreeThenReuse) {
  auto p = alloc_->Malloc(1000);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(alloc_->Free(*p).ok());
  auto q = alloc_->Malloc(1000);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*p, *q);  // LIFO free list reuse
  EXPECT_FALSE(alloc_->Free(*p + 8).ok());
}

TEST_P(MallocTest, BigAllocationsGoThroughMmap) {
  const uint64_t refills_before = alloc_->stats().chunk_refills;
  auto p = alloc_->Malloc(4 * kMiB);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(alloc_->stats().chunk_refills, refills_before);
  EXPECT_EQ(alloc_->UsableSize(*p).value(), 4 * kMiB);
  ASSERT_TRUE(sys_.UserTouch(*proc_, *p + 4 * kMiB - 1, 1, AccessType::kWrite).ok());
  ASSERT_TRUE(alloc_->Free(*p).ok());
  EXPECT_FALSE(sys_.UserTouch(*proc_, *p, 1, AccessType::kRead).ok());
}

TEST_P(MallocTest, StatsTrackLiveBytes) {
  auto a = alloc_->Malloc(16);
  auto b = alloc_->Malloc(4096);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(alloc_->stats().live_bytes, 16u + 4096u);
  ASSERT_TRUE(alloc_->Free(*a).ok());
  EXPECT_EQ(alloc_->stats().live_bytes, 4096u);
  EXPECT_EQ(alloc_->stats().allocations, 2u);
  EXPECT_EQ(alloc_->stats().frees, 1u);
}

TEST_P(MallocTest, RandomChurnStaysConsistent) {
  Rng rng(77);
  std::vector<std::pair<Vaddr, uint8_t>> live;  // ptr + fill byte
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      const uint64_t size = rng.NextInRange(1, 8192);
      auto p = alloc_->Malloc(size);
      ASSERT_TRUE(p.ok());
      const auto fill = static_cast<uint8_t>(step & 0xff);
      std::vector<uint8_t> data(std::min<uint64_t>(size, 64), fill);
      ASSERT_TRUE(sys_.UserWrite(*proc_, *p, data).ok());
      live.emplace_back(*p, fill);
    } else {
      const size_t pick = rng.NextBelow(live.size());
      // Contents survived neighbours' churn.
      std::vector<uint8_t> out(1);
      ASSERT_TRUE(sys_.UserRead(*proc_, live[pick].first, out).ok());
      EXPECT_EQ(out[0], live[pick].second);
      ASSERT_TRUE(alloc_->Free(live[pick].first).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
}

TEST_P(MallocTest, ZeroByteRejected) {
  EXPECT_FALSE(alloc_->Malloc(0).ok());
}

INSTANTIATE_TEST_SUITE_P(BothBackends, MallocTest,
                         ::testing::Values(Backend::kBaseline, Backend::kFom),
                         [](const ::testing::TestParamInfo<Backend>& param_info) {
                           return param_info.param == Backend::kBaseline ? "Baseline" : "Fom";
                         });

}  // namespace
}  // namespace o1mem
