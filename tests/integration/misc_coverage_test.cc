// Remaining coverage: populate-mode user allocator, strict-mode pre-created
// table persistence, pmfs flag interplay, and reporter formatting.
#include <gtest/gtest.h>

#include "src/os/malloc.h"
#include "src/os/system.h"
#include "src/support/table.h"

namespace o1mem {
namespace {

SystemConfig MiscConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  return config;
}

TEST(MallocPopulateTest, PopulatedChunksNeverFault) {
  System sys(MiscConfig());
  auto proc = sys.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  SizeClassAllocator alloc(&sys, *proc, /*populate=*/true);
  auto p = alloc.Malloc(1000);
  ASSERT_TRUE(p.ok());
  const uint64_t faults_before = sys.ctx().counters().minor_faults;
  std::vector<uint8_t> data(1000, 1);
  ASSERT_TRUE(sys.UserWrite(**proc, *p, data).ok());
  EXPECT_EQ(sys.ctx().counters().minor_faults, faults_before);

  SizeClassAllocator lazy(&sys, *proc, /*populate=*/false);
  auto q = lazy.Malloc(1000);
  ASSERT_TRUE(q.ok());
  const uint64_t faults_mid = sys.ctx().counters().minor_faults;
  ASSERT_TRUE(sys.UserWrite(**proc, *q, data).ok());
  EXPECT_GT(sys.ctx().counters().minor_faults, faults_mid);
}

TEST(StrictTablesTest, PersistentTablesStillO1AfterCrashOnStrictHardware) {
  SystemConfig config = MiscConfig();
  config.machine.persistence = PersistenceModel::kExplicitFlush;
  System sys(config);
  auto seg = sys.fom().CreateSegment(
      "/strict/tables", 64 * kMiB, SegmentOptions{.flags = FileFlags{.persistent = true}});
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(sys.Crash().ok());
  auto proc = sys.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  const uint64_t nodes_before = sys.ctx().counters().pt_nodes_allocated;
  auto found = sys.fom().OpenSegment("/strict/tables");
  ASSERT_TRUE(found.ok());
  auto vaddr = sys.fom().Map((*proc)->fom(), *found, Prot::kReadWrite,
                             MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(vaddr.ok());
  EXPECT_LE(sys.ctx().counters().pt_nodes_allocated, nodes_before + 3);
}

TEST(PmfsFlagsTest, SetPersistentOnDiscardableKeepsDiscardability) {
  System sys(MiscConfig());
  auto seg = sys.fom().CreateSegment(
      "/flags/seg", 4 * kMiB,
      SegmentOptions{.flags = FileFlags{.persistent = false, .discardable = true}});
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(sys.pmfs().SetPersistent(*seg, true).ok());
  auto st = sys.pmfs().Stat(*seg);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->persistent);
  EXPECT_TRUE(st->discardable);
  // Persistent AND discardable: survives crashes, but pressure may delete it.
  ASSERT_TRUE(sys.Crash().ok());
  EXPECT_TRUE(sys.fom().OpenSegment("/flags/seg").ok());
  auto released = sys.ReclaimFom(kMiB);
  ASSERT_TRUE(released.ok());
  EXPECT_GE(released.value(), 4 * kMiB);
  EXPECT_FALSE(sys.fom().OpenSegment("/flags/seg").ok());
}

TEST(PmfsStatTest, FieldsReflectState) {
  System sys(MiscConfig());
  auto proc = sys.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  auto seg = sys.fom().CreateSegment("/stat/seg", 3 * kMiB + 100);
  ASSERT_TRUE(seg.ok());
  auto vaddr = sys.fom().Map((*proc)->fom(), *seg, Prot::kRead);
  ASSERT_TRUE(vaddr.ok());
  auto st = sys.pmfs().Stat(*seg);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 3 * kMiB + 100);
  EXPECT_EQ(st->allocated_bytes, AlignUp(3 * kMiB + 100, kPageSize));
  EXPECT_EQ(st->link_count, 1u);
  EXPECT_EQ(st->map_count, 1u);
  EXPECT_EQ(st->open_count, 0u);
  EXPECT_GE(st->extent_count, 1u);
}

TEST(TableTest, PrintProducesAlignedColumns) {
  Table table("demo");
  table.AddRow({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "12345"});
  // Render to a memory stream via tmpfile.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  table.Print(f);
  std::rewind(f);
  char buf[512] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string out(buf, n);
  EXPECT_NE(out.find("=== demo ==="), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header underline exists.
  EXPECT_NE(out.find("----"), std::string::npos);
  // Columns align: "value" and "1" start at the same offset within their
  // lines (name column padded to the longest cell).
  const size_t header_pos = out.find("name");
  ASSERT_NE(header_pos, std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table("csv-demo");
  table.AddRow({"a", "b"});
  table.AddRow({"1", "2"});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  table.PrintCsv(f);
  std::rewind(f);
  char buf[256] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string out(buf, n);
  EXPECT_NE(out.find("# csv-demo\n"), std::string::npos);
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("1,2\n"), std::string::npos);
}

TEST(ForkPbmTest, PbmMappingsForkAtTheSameAddress) {
  System sys(MiscConfig());
  auto parent = sys.Launch(Backend::kFom);
  ASSERT_TRUE(parent.ok());
  auto seg = sys.fom().CreateSegment("/pbm/seg", 2 * kMiB,
                                     SegmentOptions{.require_single_extent = true});
  ASSERT_TRUE(seg.ok());
  auto vaddr = sys.fom().Map((*parent)->fom(), *seg, Prot::kReadWrite,
                             MapOptions{.mechanism = MapMechanism::kPbm});
  ASSERT_TRUE(vaddr.ok());
  auto child = sys.Fork(**parent);
  ASSERT_TRUE(child.ok());
  // PBM: the child's mapping derived the identical address.
  ASSERT_TRUE((*child)->fom().mappings().contains(*vaddr));
  std::vector<uint8_t> data{5, 6, 7};
  ASSERT_TRUE(sys.UserWrite(**child, *vaddr, data).ok());
  std::vector<uint8_t> out(3);
  ASSERT_TRUE(sys.UserRead(**parent, *vaddr, out).ok());
  EXPECT_EQ(out, data);
}

TEST(BackgroundZeroAccountingTest, DebtMatchesBytesFreed) {
  SystemConfig config = MiscConfig();
  config.pmfs_zero_policy = ZeroPolicy::kZeroEpoch;
  System sys(config);
  auto seg = sys.fom().CreateSegment("/z/seg", 8 * kMiB);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(sys.pmfs().background_zero_cycles(), 0u);
  ASSERT_TRUE(sys.fom().DeleteSegment("/z/seg").ok());
  const uint64_t debt = sys.pmfs().background_zero_cycles();
  EXPECT_GE(debt, sys.ctx().cost().NvmWriteBulkCycles(8 * kMiB));
}

}  // namespace
}  // namespace o1mem
