// Integration tests: multiple processes, mixed backends, shared files,
// pressure and crashes interacting on one machine.
#include <gtest/gtest.h>

#include "src/os/malloc.h"
#include "src/os/system.h"
#include "src/support/rng.h"

namespace o1mem {
namespace {

SystemConfig IntegrationConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 256 * kMiB;
  config.machine.nvm_bytes = 512 * kMiB;
  return config;
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : sys_(IntegrationConfig()) {}
  System sys_;
};

TEST_F(IntegrationTest, MixedBackendProcessesShareAPmfsFile) {
  // A FOM producer fills a PMFS file through a mapping; a baseline consumer
  // reads it through demand-paged mmap; a second baseline consumer reads it
  // through read(2). All three views agree.
  auto producer = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(producer.ok());
  auto seg = sys_.fom().CreateSegment("/shared/blob", 8 * kMiB);
  ASSERT_TRUE(seg.ok());
  auto pbase = sys_.fom().Map((*producer)->fom(), *seg, Prot::kReadWrite);
  ASSERT_TRUE(pbase.ok());
  std::vector<uint8_t> payload(kMiB);
  Rng rng(9);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.Next());
  }
  ASSERT_TRUE(sys_.UserWrite(**producer, *pbase + 3 * kMiB, payload).ok());

  auto consumer = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(consumer.ok());
  auto fd = sys_.Open(**consumer, "/shared/blob");
  ASSERT_TRUE(fd.ok());
  auto cbase = sys_.Mmap(**consumer, MmapArgs{.length = 8 * kMiB, .prot = Prot::kRead,
                                              .fd = *fd});
  ASSERT_TRUE(cbase.ok());
  std::vector<uint8_t> via_map(payload.size());
  ASSERT_TRUE(sys_.UserRead(**consumer, *cbase + 3 * kMiB, via_map).ok());
  EXPECT_EQ(via_map, payload);

  auto reader = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(reader.ok());
  auto fd2 = sys_.Open(**reader, "/shared/blob");
  ASSERT_TRUE(fd2.ok());
  std::vector<uint8_t> via_read(payload.size());
  ASSERT_TRUE(sys_.Pread(**reader, *fd2, 3 * kMiB, via_read).ok());
  EXPECT_EQ(via_read, payload);

  // Writes through the consumer's shared mapping are visible to the
  // producer immediately (DAX: one copy of the data).
  ASSERT_TRUE(sys_.Munmap(**consumer, *cbase, 8 * kMiB).ok());
}

TEST_F(IntegrationTest, ManyProcessesManyMappings) {
  std::vector<Process*> procs;
  for (int i = 0; i < 8; ++i) {
    auto proc = sys_.Launch(i % 2 == 0 ? Backend::kBaseline : Backend::kFom);
    ASSERT_TRUE(proc.ok());
    procs.push_back(*proc);
  }
  // Each process maps private memory and stamps it with its pid.
  std::vector<Vaddr> bases(procs.size());
  for (size_t i = 0; i < procs.size(); ++i) {
    auto vaddr = sys_.Mmap(*procs[i], MmapArgs{.length = 2 * kMiB});
    ASSERT_TRUE(vaddr.ok());
    bases[i] = *vaddr;
    std::vector<uint8_t> stamp(512, static_cast<uint8_t>(procs[i]->pid()));
    ASSERT_TRUE(sys_.UserWrite(*procs[i], bases[i] + kPageSize, stamp).ok());
  }
  // No cross-contamination.
  for (size_t i = 0; i < procs.size(); ++i) {
    std::vector<uint8_t> out(512);
    ASSERT_TRUE(sys_.UserRead(*procs[i], bases[i] + kPageSize, out).ok());
    for (uint8_t b : out) {
      ASSERT_EQ(b, procs[i]->pid());
    }
  }
  // Exit half of them; the rest keep working.
  for (size_t i = 0; i < procs.size(); i += 2) {
    ASSERT_TRUE(sys_.Exit(procs[i]).ok());
  }
  for (size_t i = 1; i < procs.size(); i += 2) {
    EXPECT_TRUE(sys_.UserTouch(*procs[i], bases[i], 1, AccessType::kRead).ok());
  }
}

TEST_F(IntegrationTest, BaselinePressureWithFilePagesAndAnonPages) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  // Anonymous working set + a file mapping.
  auto anon = sys_.Mmap(**proc, MmapArgs{.length = 32 * kMiB, .populate = true});
  ASSERT_TRUE(anon.ok());
  auto fd = sys_.Creat(**proc, sys_.tmpfs(), "/t/file", FileFlags{});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.Ftruncate(**proc, *fd, 8 * kMiB).ok());
  auto file_map =
      sys_.Mmap(**proc, MmapArgs{.length = 8 * kMiB, .populate = true, .fd = *fd});
  ASSERT_TRUE(file_map.ok());

  for (uint64_t off = 0; off < 32 * kMiB; off += kPageSize) {
    (*proc)->pager().TestAndClearReferenced(*anon + off);
  }
  auto stats = sys_.ReclaimBaseline(**proc, 1024, System::ReclaimPolicy::kTwoQueue);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 1024u);
  // Everything still readable (faults bring anon pages back from swap).
  EXPECT_TRUE(sys_.UserTouch(**proc, *anon, 32 * kMiB, AccessType::kRead).ok());
  EXPECT_TRUE(sys_.UserTouch(**proc, *file_map, 8 * kMiB, AccessType::kRead).ok());
}

TEST_F(IntegrationTest, CrashDuringMixedActivityRecoversConsistently) {
  // Persistent state, volatile state, live mappings, open fds -- then crash.
  auto fom_proc = sys_.Launch(Backend::kFom);
  auto base_proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(fom_proc.ok());
  ASSERT_TRUE(base_proc.ok());

  auto keep = sys_.fom().CreateSegment(
      "/db/keep", 4 * kMiB, SegmentOptions{.flags = FileFlags{.persistent = true}});
  ASSERT_TRUE(keep.ok());
  auto keep_map = sys_.fom().Map((*fom_proc)->fom(), *keep, Prot::kReadWrite);
  ASSERT_TRUE(keep_map.ok());
  std::vector<uint8_t> data(4096);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 3);
  }
  ASSERT_TRUE(sys_.UserWrite(**fom_proc, *keep_map + kMiB, data).ok());

  ASSERT_TRUE(sys_.fom().CreateSegment("/tmp/volatile", kMiB).ok());
  ASSERT_TRUE(sys_.Creat(**base_proc, sys_.tmpfs(), "/t/scratch", FileFlags{}).ok());

  ASSERT_TRUE(sys_.Crash().ok());

  // Recovery: persistent file intact with data; everything else gone.
  ASSERT_TRUE(sys_.pmfs().VerifyIntegrity().ok());
  auto survivor = sys_.fom().OpenSegment("/db/keep");
  ASSERT_TRUE(survivor.ok());
  EXPECT_FALSE(sys_.fom().OpenSegment("/tmp/volatile").ok());
  auto proc2 = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc2.ok());
  EXPECT_FALSE(sys_.Open(**proc2, "/t/scratch").ok());
  auto remap = sys_.fom().Map((*proc2)->fom(), *survivor, Prot::kRead);
  ASSERT_TRUE(remap.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(sys_.UserRead(**proc2, *remap + kMiB, out).ok());
  EXPECT_EQ(out, data);

  // Repeated crashes are harmless (idempotent recovery).
  ASSERT_TRUE(sys_.Crash().ok());
  ASSERT_TRUE(sys_.pmfs().VerifyIntegrity().ok());
  EXPECT_TRUE(sys_.fom().OpenSegment("/db/keep").ok());
}

TEST_F(IntegrationTest, MallocWorkloadOnFomSurvivesSystemPressure) {
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  SizeClassAllocator alloc(&sys_, *proc);
  // Fill discardable caches until the PM pool is nearly exhausted.
  int cache_count = 0;
  while (sys_.pmfs().free_bytes() >= 24 * kMiB) {
    auto seg = sys_.fom().CreateSegment(
        "/cache/c" + std::to_string(cache_count++), 16 * kMiB,
        SegmentOptions{.flags = FileFlags{.discardable = true}});
    ASSERT_TRUE(seg.ok());
  }
  ASSERT_GT(cache_count, 4);
  // A big allocation no longer fits...
  auto blocked = alloc.Malloc(64 * kMiB);
  ASSERT_FALSE(blocked.ok());
  // ...until pressure handling deletes caches, after which it succeeds.
  ASSERT_TRUE(sys_.ReclaimFom(64 * kMiB).ok());
  auto p = alloc.Malloc(64 * kMiB);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(sys_.UserTouch(**proc, *p + 63 * kMiB, 1, AccessType::kWrite).ok());
  ASSERT_TRUE(alloc.Free(*p).ok());
  EXPECT_GT(sys_.ctx().counters().files_reclaimed, 0u);
}

}  // namespace
}  // namespace o1mem
