// PersistenceModel::kExplicitFlush: NVM stores are durable only after a
// clwb/fence barrier; a crash reverts unflushed lines. These tests cover the
// hardware model, the DAX mapping path (UserFlush/Msync), the file API's
// durability-on-return guarantee, and the persistent heap's crash
// consistency on a strict machine.
#include <gtest/gtest.h>

#include "src/os/system.h"
#include "src/runtime/persistent_heap.h"

namespace o1mem {
namespace {

SystemConfig StrictConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  config.machine.persistence = PersistenceModel::kExplicitFlush;
  return config;
}

TEST(PhysPersistenceTest, UnflushedLineRevertsFlushedSurvives) {
  SimContext ctx;
  PhysicalMemory mem(&ctx, 4 * kMiB, 4 * kMiB, PersistenceModel::kExplicitFlush);
  const Paddr a = mem.nvm_base();         // will be flushed
  const Paddr b = mem.nvm_base() + 4096;  // will not
  std::vector<uint8_t> data(64, 0x77);
  ASSERT_TRUE(mem.Write(a, data).ok());
  ASSERT_TRUE(mem.Write(b, data).ok());
  EXPECT_EQ(mem.pending_nvm_lines(), 2u);
  ASSERT_TRUE(mem.FlushLines(a, 64).ok());
  EXPECT_EQ(mem.pending_nvm_lines(), 1u);
  mem.DropVolatile();
  EXPECT_EQ(mem.PeekByte(a), 0x77);
  EXPECT_EQ(mem.PeekByte(b), 0);  // reverted to durable zero
  EXPECT_EQ(mem.pending_nvm_lines(), 0u);
}

TEST(PhysPersistenceTest, RevertRestoresPriorDurableContentsNotZero) {
  SimContext ctx;
  PhysicalMemory mem(&ctx, 0, 4 * kMiB, PersistenceModel::kExplicitFlush);
  std::vector<uint8_t> old_data(64, 0xAA);
  ASSERT_TRUE(mem.Write(0, old_data).ok());
  ASSERT_TRUE(mem.FlushLines(0, 64).ok());  // 0xAA is durable
  std::vector<uint8_t> new_data(64, 0xBB);
  ASSERT_TRUE(mem.Write(0, new_data).ok());  // not flushed
  mem.DropVolatile();
  EXPECT_EQ(mem.PeekByte(0), 0xAA);
}

TEST(PhysPersistenceTest, DramWritesNeverShadowed) {
  SimContext ctx;
  PhysicalMemory mem(&ctx, 4 * kMiB, 4 * kMiB, PersistenceModel::kExplicitFlush);
  std::vector<uint8_t> data(4096, 1);
  ASSERT_TRUE(mem.Write(0, data).ok());
  EXPECT_EQ(mem.pending_nvm_lines(), 0u);
}

TEST(PhysPersistenceTest, AutoModeHasNoPendingLines) {
  SimContext ctx;
  PhysicalMemory mem(&ctx, 0, 4 * kMiB, PersistenceModel::kAutoDurable);
  std::vector<uint8_t> data(4096, 1);
  ASSERT_TRUE(mem.Write(0, data).ok());
  EXPECT_EQ(mem.pending_nvm_lines(), 0u);
  mem.DropVolatile();
  EXPECT_EQ(mem.PeekByte(0), 1);
}

TEST(PhysPersistenceTest, FlushChargesPerLine) {
  SimContext ctx;
  PhysicalMemory mem(&ctx, 0, 4 * kMiB, PersistenceModel::kExplicitFlush);
  std::vector<uint8_t> data(kPageSize, 1);
  ASSERT_TRUE(mem.Write(0, data).ok());
  const uint64_t t0 = ctx.now();
  ASSERT_TRUE(mem.FlushLines(0, kPageSize).ok());
  const uint64_t cost = ctx.now() - t0;
  EXPECT_EQ(cost, 64 * ctx.cost().clwb_cycles + ctx.cost().sfence_cycles);
}

class StrictSystemTest : public ::testing::Test {
 protected:
  StrictSystemTest() : sys_(StrictConfig()) {}
  System sys_;
};

TEST_F(StrictSystemTest, DaxStoreWithoutFlushIsLostWithFlushSurvives) {
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  auto seg = sys_.fom().CreateSegment(
      "/strict/seg", 2 * kMiB, SegmentOptions{.flags = FileFlags{.persistent = true}});
  ASSERT_TRUE(seg.ok());
  auto vaddr = sys_.fom().Map((*proc)->fom(), *seg, Prot::kReadWrite);
  ASSERT_TRUE(vaddr.ok());
  std::vector<uint8_t> durable(64, 0x11);
  std::vector<uint8_t> lost(64, 0x22);
  ASSERT_TRUE(sys_.UserWrite(**proc, *vaddr, durable).ok());
  ASSERT_TRUE(sys_.Msync(**proc, *vaddr, 64).ok());
  ASSERT_TRUE(sys_.UserWrite(**proc, *vaddr + kPageSize, lost).ok());  // no flush

  ASSERT_TRUE(sys_.Crash().ok());
  auto proc2 = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc2.ok());
  auto seg2 = sys_.fom().OpenSegment("/strict/seg");
  ASSERT_TRUE(seg2.ok());
  auto v2 = sys_.fom().Map((*proc2)->fom(), *seg2, Prot::kRead);
  ASSERT_TRUE(v2.ok());
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(sys_.UserRead(**proc2, *v2, out).ok());
  EXPECT_EQ(out, durable);
  ASSERT_TRUE(sys_.UserRead(**proc2, *v2 + kPageSize, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);  // unflushed store evaporated
  }
}

TEST_F(StrictSystemTest, FileWriteApiIsDurableOnReturn) {
  auto proc = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto fd = sys_.Creat(**proc, sys_.pmfs(), "/strict/file", FileFlags{.persistent = true});
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(1000, 0x5d);
  ASSERT_TRUE(sys_.Write(**proc, *fd, data).ok());
  ASSERT_TRUE(sys_.Crash().ok());
  auto proc2 = sys_.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc2.ok());
  auto fd2 = sys_.Open(**proc2, "/strict/file");
  ASSERT_TRUE(fd2.ok());
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(sys_.Pread(**proc2, *fd2, 0, out).ok());
  EXPECT_EQ(out, data);  // write(2) flushed internally
}

TEST_F(StrictSystemTest, PersistentHeapIsCrashConsistentOnStrictHardware) {
  uint64_t off = 0;
  {
    auto proc = sys_.Launch(Backend::kFom);
    ASSERT_TRUE(proc.ok());
    auto heap = PersistentHeap::OpenOrCreate(&sys_, *proc, "/strict/heap", 4 * kMiB);
    ASSERT_TRUE(heap.ok());
    auto alloc = heap->Allocate(128);
    ASSERT_TRUE(alloc.ok());
    off = *alloc;
    std::vector<uint8_t> data(128, 0x3e);
    ASSERT_TRUE(heap->WriteObject(off, data).ok());
    ASSERT_TRUE(heap->SetRoot("obj", off).ok());
    // A raw UserWrite that the heap user forgot to flush: should vanish
    // without corrupting the heap.
    std::vector<uint8_t> sloppy(64, 0x99);
    ASSERT_TRUE(sys_.UserWrite(**proc, heap->AddressOf(off) + 4096 - 64, sloppy).ok());
  }
  ASSERT_TRUE(sys_.Crash().ok());
  auto proc2 = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc2.ok());
  auto heap = PersistentHeap::OpenOrCreate(&sys_, *proc2, "/strict/heap", 4 * kMiB);
  ASSERT_TRUE(heap.ok());
  EXPECT_TRUE(heap->recovered());
  auto root = heap->GetRoot("obj");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, off);
  std::vector<uint8_t> out(128);
  ASSERT_TRUE(heap->ReadObject(*root, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0x3e);
  }
  // The cursor survived too: fresh allocations do not overlap.
  auto fresh = heap->Allocate(64);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GE(*fresh, off + 128);
}

TEST_F(StrictSystemTest, UserFlushCostsScaleWithLines) {
  auto proc = sys_.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  auto vaddr = sys_.Mmap(**proc, MmapArgs{.length = kMiB});
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(sys_.UserTouch(**proc, *vaddr, kMiB, AccessType::kWrite).ok());
  const uint64_t t0 = sys_.ctx().now();
  ASSERT_TRUE(sys_.UserFlush(**proc, *vaddr, 64).ok());
  const uint64_t one_line = sys_.ctx().now() - t0;
  const uint64_t t1 = sys_.ctx().now();
  ASSERT_TRUE(sys_.UserFlush(**proc, *vaddr, kMiB).ok());
  const uint64_t whole_mb = sys_.ctx().now() - t1;
  EXPECT_GT(whole_mb, 100 * one_line);
}

}  // namespace
}  // namespace o1mem
