// RetryPolicy: capped exponential backoff with full jitter must be
// deterministic per seed, bounded by [1, min(cap, base * 2^(n-1))], and
// clamped at max_delay_ticks for deep retries.
#include <gtest/gtest.h>

#include <vector>

#include "src/chaos/retry.h"

namespace o1mem {
namespace {

TEST(RetryPolicyTest, SameSeedSameSchedule) {
  RetryPolicy policy;
  Rng a(42);
  Rng b(42);
  for (int attempt = 1; attempt <= 16; ++attempt) {
    EXPECT_EQ(policy.BackoffTicks(attempt, a), policy.BackoffTicks(attempt, b));
  }
}

TEST(RetryPolicyTest, DifferentSeedsDiverge) {
  RetryPolicy policy;
  Rng a(1);
  Rng b(2);
  std::vector<uint64_t> sa;
  std::vector<uint64_t> sb;
  for (int attempt = 1; attempt <= 16; ++attempt) {
    sa.push_back(policy.BackoffTicks(attempt, a));
    sb.push_back(policy.BackoffTicks(attempt, b));
  }
  EXPECT_NE(sa, sb);
}

TEST(RetryPolicyTest, BoundedByExponentialCap) {
  RetryPolicy policy{.max_attempts = 8, .base_delay_ticks = 4, .max_delay_ticks = 512};
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    for (int attempt = 1; attempt <= 12; ++attempt) {
      const uint64_t delay = policy.BackoffTicks(attempt, rng);
      EXPECT_GE(delay, 1u);
      uint64_t cap = policy.base_delay_ticks;
      for (int i = 1; i < attempt && cap < policy.max_delay_ticks; ++i) {
        cap *= 2;
      }
      cap = std::min(cap, policy.max_delay_ticks);
      EXPECT_LE(delay, cap) << "attempt " << attempt;
    }
  }
}

TEST(RetryPolicyTest, DeepRetriesClampAtMaxDelay) {
  RetryPolicy policy{.max_attempts = 64, .base_delay_ticks = 4, .max_delay_ticks = 64};
  Rng rng(9);
  uint64_t max_seen = 0;
  for (int attempt = 20; attempt <= 40; ++attempt) {
    for (int trial = 0; trial < 100; ++trial) {
      max_seen = std::max(max_seen, policy.BackoffTicks(attempt, rng));
    }
  }
  EXPECT_LE(max_seen, policy.max_delay_ticks);
  // Full jitter still spreads over the cap (not pinned to one value).
  EXPECT_GT(max_seen, policy.max_delay_ticks / 2);
}

TEST(RetryPolicyTest, FirstRetryUsesBaseWindow) {
  RetryPolicy policy{.max_attempts = 4, .base_delay_ticks = 8, .max_delay_ticks = 512};
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t delay = policy.BackoffTicks(1, rng);
    EXPECT_GE(delay, 1u);
    EXPECT_LE(delay, 8u);
  }
}

}  // namespace
}  // namespace o1mem
