// Campaign spec parsing and the CampaignEngine's deterministic firing:
// same (spec, seed) must resolve the same random targets at the same ticks
// and produce the same event log, run after run.
#include <gtest/gtest.h>

#include "src/chaos/campaign.h"

namespace o1mem {
namespace {

TEST(ParseCampaignTest, ParsesEveryActionKind) {
  auto config = ParseCampaign(
      "kill@100:2; hang@200:1x32; poison@50:r!; poison@every100; "
      "poisondram@300:0; crash@400; tornwrite@77; tornflush@88",
      42);
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config->schedule.size(), 8u);
  EXPECT_TRUE(config->enabled);
  EXPECT_EQ(config->seed, 42u);

  const auto& s = config->schedule;
  EXPECT_EQ(s[0].kind, ChaosKind::kKillShard);
  EXPECT_EQ(s[0].at_tick, 100u);
  EXPECT_EQ(s[0].shard, 2);
  EXPECT_EQ(s[0].every_ticks, 0u);

  EXPECT_EQ(s[1].kind, ChaosKind::kHangShard);
  EXPECT_EQ(s[1].shard, 1);
  EXPECT_EQ(s[1].duration_ticks, 32u);

  EXPECT_EQ(s[2].kind, ChaosKind::kPoisonNvm);
  EXPECT_EQ(s[2].shard, -1);  // 'r' = random at fire time
  EXPECT_TRUE(s[2].sticky);

  EXPECT_EQ(s[3].kind, ChaosKind::kPoisonNvm);
  EXPECT_EQ(s[3].every_ticks, 100u);
  EXPECT_EQ(s[3].at_tick, 100u);  // first firing after one period
  EXPECT_FALSE(s[3].sticky);

  EXPECT_EQ(s[4].kind, ChaosKind::kPoisonDram);
  EXPECT_EQ(s[4].shard, 0);

  EXPECT_EQ(s[5].kind, ChaosKind::kCrashMachine);
  EXPECT_EQ(s[5].at_tick, 400u);

  EXPECT_EQ(s[6].kind, ChaosKind::kTornWriteCrash);
  EXPECT_EQ(s[6].event_index, 77u);
  EXPECT_EQ(s[7].kind, ChaosKind::kTornFlushCrash);
  EXPECT_EQ(s[7].event_index, 88u);
}

TEST(ParseCampaignTest, EmptySpecIsDisabled) {
  auto config = ParseCampaign("", 1);
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->enabled);
  EXPECT_TRUE(config->schedule.empty());

  auto semis = ParseCampaign(" ; ;; ", 1);
  ASSERT_TRUE(semis.ok());
  EXPECT_FALSE(semis->enabled);
}

TEST(ParseCampaignTest, RejectsMalformedSpecs) {
  EXPECT_EQ(ParseCampaign("bogus@5", 1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCampaign("kill100", 1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCampaign("hang@5:1", 1).status().code(),
            StatusCode::kInvalidArgument);  // missing xH
  EXPECT_EQ(ParseCampaign("poison@every0", 1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCampaign("kill@5:1z", 1).status().code(),
            StatusCode::kInvalidArgument);  // trailing junk
  EXPECT_EQ(ParseCampaign("kill@", 1).status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseCampaignTest, DefaultSpecParses) {
  auto config = ParseCampaign(DefaultCampaignSpec(20000), 1);
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->enabled);
  EXPECT_GE(config->schedule.size(), 4u);
}

TEST(CampaignEngineTest, FiresOneShotAtItsTick) {
  auto config = ParseCampaign("kill@10:1", 7);
  ASSERT_TRUE(config.ok());
  CampaignEngine engine(*config, 4);
  for (uint64_t t = 0; t < 10; ++t) {
    EXPECT_TRUE(engine.Poll(t).empty());
  }
  auto due = engine.Poll(10);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].kind, ChaosKind::kKillShard);
  EXPECT_EQ(due[0].shard, 1);
  for (uint64_t t = 11; t < 40; ++t) {
    EXPECT_TRUE(engine.Poll(t).empty());  // one-shot never refires
  }
  EXPECT_EQ(engine.firings(), 1u);
}

TEST(CampaignEngineTest, PeriodicActionRefires) {
  auto config = ParseCampaign("poison@every10", 7);
  ASSERT_TRUE(config.ok());
  CampaignEngine engine(*config, 4);
  uint64_t fired = 0;
  for (uint64_t t = 0; t <= 50; ++t) {
    for (const ChaosFiring& f : engine.Poll(t)) {
      EXPECT_EQ(f.kind, ChaosKind::kPoisonNvm);
      EXPECT_EQ(t % 10, 0u);
      EXPECT_NE(t, 0u);
      ++fired;
    }
  }
  EXPECT_EQ(fired, 5u);  // t = 10, 20, 30, 40, 50
}

TEST(CampaignEngineTest, RandomShardsResolveInRange) {
  auto config = ParseCampaign("kill@1:r; kill@2:r; kill@3:r; kill@4:r", 99);
  ASSERT_TRUE(config.ok());
  CampaignEngine engine(*config, 3);
  for (uint64_t t = 1; t <= 4; ++t) {
    auto due = engine.Poll(t);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_GE(due[0].shard, 0);
    EXPECT_LT(due[0].shard, 3);
  }
}

TEST(CampaignEngineTest, SameSeedReplaysBitIdentically) {
  const std::string spec = "kill@5:r; hang@9:rx20; poison@every7:r!; crash@40";
  auto config = ParseCampaign(spec, 1234);
  ASSERT_TRUE(config.ok());
  CampaignEngine a(*config, 8);
  CampaignEngine b(*config, 8);
  for (uint64_t t = 0; t <= 60; ++t) {
    auto da = a.Poll(t);
    auto db = b.Poll(t);
    ASSERT_EQ(da.size(), db.size());
    for (size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].kind, db[i].kind);
      EXPECT_EQ(da[i].shard, db[i].shard);
      EXPECT_EQ(da[i].tick, db[i].tick);
      EXPECT_EQ(da[i].sticky, db[i].sticky);
    }
  }
  EXPECT_EQ(a.LogString(), b.LogString());
  EXPECT_FALSE(a.LogString().empty());

  // A different seed resolves different random targets somewhere.
  ChaosConfig other = *config;
  other.seed = 4321;
  CampaignEngine c(other, 8);
  for (uint64_t t = 0; t <= 60; ++t) {
    c.Poll(t);
  }
  EXPECT_NE(a.LogString(), c.LogString());
}

}  // namespace
}  // namespace o1mem
