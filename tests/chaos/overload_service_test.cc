// ShardedKvService in open-loop overload mode: saturation never trips the
// watchdog (heartbeats are out-of-band), admission bounds queue depth and
// sojourn, the protected service loses nothing (sheds are clean rejects),
// brownout climbs under load and restores in reverse, runs replay
// bit-identically per (arrival, campaign, seed), and the brownout hooks
// never touch durability (tier writeback of dirty data still runs).
#include <gtest/gtest.h>

#include <string>

#include "src/chaos/shard_service.h"

namespace o1mem {
namespace {

SystemConfig ServiceMachine() {
  SystemConfig config;
  config.machine.dram_bytes = 64 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  config.machine.smp.num_cpus = 2;
  return config;
}

// 3 shards x 4 slots = 12 requests/tick of capacity.
ShardServiceConfig OverloadService(double rate) {
  ShardServiceConfig config;
  config.shards = 3;
  config.shard_bytes = 64 * kKiB;
  config.record_bytes = 64;
  config.ops = 2000;
  config.arrival.enabled = true;
  config.arrival.kind = ArrivalConfig::Kind::kPoisson;
  config.arrival.rate = rate;
  config.overload = OverloadConfig::Protected();
  return config;
}

ShardServiceReport RunService(const SystemConfig& machine, const ShardServiceConfig& config) {
  System sys(machine);
  ShardedKvService service(sys, config);
  return service.Run();
}

TEST(OverloadServiceTest, SaturationNeverTripsTheWatchdog) {
  // 3x capacity: every shard is permanently saturated and shedding, but
  // heartbeats are out-of-band -- overload is not a liveness failure, so the
  // watchdog must never kill a busy shard.
  ShardServiceReport report = RunService(ServiceMachine(), OverloadService(36.0));
  EXPECT_EQ(report.watchdog_kills, 0u);
  EXPECT_EQ(report.kills, 0u);
  EXPECT_TRUE(report.recoveries.empty());
  EXPECT_GT(report.overload.served, 0u);
  EXPECT_GT(report.overload.sheds, 0u);  // it *was* overloaded
}

TEST(OverloadServiceTest, ProtectedOverloadLosesNothing) {
  ShardServiceReport report = RunService(ServiceMachine(), OverloadService(36.0));
  const OverloadReport& ov = report.overload;
  EXPECT_TRUE(ov.enabled);
  EXPECT_EQ(report.ops_lost, 0u);  // every shed is a clean rejection
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(ov.arrivals, 2000u);
  // Conservation: every arrival is served, cleanly rejected, or was an
  // admitted-then-expired timeout that later resolved one of those ways.
  EXPECT_EQ(ov.served + ov.rejected_final, ov.arrivals);
  EXPECT_GT(ov.rejected_final, 0u);
  // Admission holds the CoDel-style bound: est wait (depth+1)/slots <= 3
  // ticks means per-shard depth never exceeds 12.
  for (const ShardOverloadStats& st : ov.per_shard) {
    EXPECT_LE(st.max_queue_depth, 12u);
  }
  // With admission holding queues at the target, deadlines never expire in
  // queue, so the breaker sees no failures: zero false opens under pure
  // overload.
  for (const ShardOverloadStats& st : ov.per_shard) {
    EXPECT_EQ(st.breaker_transitions, 0u) << st.breaker_timeline;
  }
}

TEST(OverloadServiceTest, LightLoadShedsNothing) {
  // 0.5x capacity: no sheds, no brownout, no breaker activity, all served.
  ShardServiceReport report = RunService(ServiceMachine(), OverloadService(6.0));
  const OverloadReport& ov = report.overload;
  EXPECT_EQ(ov.served, ov.arrivals);
  EXPECT_EQ(ov.sheds, 0u);
  EXPECT_EQ(ov.rejected_final, 0u);
  EXPECT_EQ(report.ops_lost, 0u);
  for (const ShardOverloadStats& st : ov.per_shard) {
    EXPECT_EQ(st.breaker_transitions, 0u);
    for (size_t level = 1; level < st.brownout_ticks.size(); ++level) {
      EXPECT_EQ(st.brownout_ticks[level], 0u);
    }
  }
}

TEST(OverloadServiceTest, BrownoutClimbsUnderOverloadAndRestores) {
  // 2x burst phases with a fast-hysteresis ladder: levels climb during the
  // high phase and walk back down (in reverse order, one level at a time)
  // during the quiet phase.
  ShardServiceConfig config = OverloadService(0);
  config.arrival.kind = ArrivalConfig::Kind::kBurst;
  config.arrival.rate = 24.0;
  config.arrival.burst_ticks = 40;
  config.overload.brownout.hysteresis_ticks = 4;
  ShardServiceReport report = RunService(ServiceMachine(), config);
  const OverloadReport& ov = report.overload;
  EXPECT_EQ(report.ops_lost, 0u);
  bool browned_out = false;
  for (const ShardOverloadStats& st : ov.per_shard) {
    uint64_t total = 0;
    for (size_t level = 0; level < st.brownout_ticks.size(); ++level) {
      total += st.brownout_ticks[level];
      if (level >= 1 && st.brownout_ticks[level] > 0) {
        browned_out = true;
      }
    }
    // One Update per tick per shard: residency accounts for the whole run.
    EXPECT_EQ(total, report.ticks);
    // Restore happened: the run ends (quiet drain) back at L0, so L0
    // residency includes post-brownout ticks.
    EXPECT_GT(st.brownout_ticks[0], 0u);
  }
  EXPECT_TRUE(browned_out);
  EXPECT_GT(report.overload.scan_ops + report.overload.served, 0u);
}

TEST(OverloadServiceTest, OverloadComposesWithKillCampaign) {
  ShardServiceConfig config = OverloadService(24.0);
  auto chaos = ParseCampaign("kill@60:1", /*seed=*/11);
  ASSERT_TRUE(chaos.ok());
  config.chaos = *chaos;
  ShardServiceReport report = RunService(ServiceMachine(), config);
  EXPECT_EQ(report.kills, 1u);
  EXPECT_EQ(report.watchdog_kills, 1u);  // dead shard stops heartbeating
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  // The killed shard's queue failed fast and its breaker opened (fail-fasts
  // are consecutive failures), then closed again after recovery.
  const ShardOverloadStats& st = report.overload.per_shard[1];
  EXPECT_GT(st.failed_fast, 0u);
  EXPECT_GE(st.breaker_transitions, 2u) << st.breaker_timeline;
  EXPECT_GT(st.breaker_rejects, 0u);
}

TEST(OverloadServiceTest, HungShardExpiresQueueAndRecovers) {
  ShardServiceConfig config = OverloadService(24.0);
  auto chaos = ParseCampaign("hang@40:0x64", /*seed=*/11);
  ASSERT_TRUE(chaos.ok());
  config.chaos = *chaos;
  ShardServiceReport report = RunService(ServiceMachine(), config);
  EXPECT_EQ(report.hangs, 1u);
  EXPECT_EQ(report.watchdog_kills, 1u);
  EXPECT_EQ(report.ops_lost, 0u);
  const ShardOverloadStats& st = report.overload.per_shard[0];
  EXPECT_GT(st.expired_in_queue, 0u);  // queued requests burnt their deadline
  EXPECT_GE(st.breaker_transitions, 1u) << st.breaker_timeline;
}

TEST(OverloadServiceTest, SameSeedReplaysBitIdentically) {
  ShardServiceConfig config = OverloadService(30.0);
  auto chaos = ParseCampaign("kill@80:1; hang@200:2x40", /*seed=*/5);
  ASSERT_TRUE(chaos.ok());
  config.chaos = *chaos;
  ShardServiceReport a = RunService(ServiceMachine(), config);
  ShardServiceReport b = RunService(ServiceMachine(), config);
  EXPECT_EQ(a.chaos_log, b.chaos_log);
  EXPECT_FALSE(a.chaos_log.empty());
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.run_us, b.run_us);
  const OverloadReport& oa = a.overload;
  const OverloadReport& ob = b.overload;
  EXPECT_EQ(oa.arrivals, ob.arrivals);
  EXPECT_EQ(oa.admitted, ob.admitted);
  EXPECT_EQ(oa.served, ob.served);
  EXPECT_EQ(oa.sheds, ob.sheds);
  EXPECT_EQ(oa.rejected_final, ob.rejected_final);
  EXPECT_EQ(oa.retry_budget_denials, ob.retry_budget_denials);
  EXPECT_EQ(oa.admitted_latency.count(), ob.admitted_latency.count());
  EXPECT_EQ(oa.admitted_latency.Percentile(99), ob.admitted_latency.Percentile(99));
  ASSERT_EQ(oa.per_shard.size(), ob.per_shard.size());
  for (size_t i = 0; i < oa.per_shard.size(); ++i) {
    // Shed decisions and the breaker timeline replay bit-identically.
    EXPECT_EQ(oa.per_shard[i].admitted, ob.per_shard[i].admitted);
    EXPECT_EQ(oa.per_shard[i].shed_deadline, ob.per_shard[i].shed_deadline);
    EXPECT_EQ(oa.per_shard[i].shed_overflow, ob.per_shard[i].shed_overflow);
    EXPECT_EQ(oa.per_shard[i].shed_scan, ob.per_shard[i].shed_scan);
    EXPECT_EQ(oa.per_shard[i].shed_write, ob.per_shard[i].shed_write);
    EXPECT_EQ(oa.per_shard[i].expired_in_queue, ob.per_shard[i].expired_in_queue);
    EXPECT_EQ(oa.per_shard[i].breaker_timeline, ob.per_shard[i].breaker_timeline);
    EXPECT_EQ(oa.per_shard[i].brownout_ticks, ob.per_shard[i].brownout_ticks);
  }
}

TEST(OverloadServiceTest, ScanClassIsShedFirst) {
  ShardServiceConfig config = OverloadService(36.0);
  config.arrival.scan_fraction = 0.2;
  config.arrival.scan_records = 8;
  ShardServiceReport report = RunService(ServiceMachine(), config);
  const OverloadReport& ov = report.overload;
  uint64_t shed_scan = 0;
  uint64_t shed_write = 0;
  for (const ShardOverloadStats& st : ov.per_shard) {
    shed_scan += st.shed_scan;
    shed_write += st.shed_write;
  }
  // Sustained 3x overload drives the ladder to L3/L4: scans shed, and the
  // scan shed engages at a lower level than the write shed.
  EXPECT_GT(shed_scan, 0u);
  EXPECT_GT(shed_write, 0u);
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
}

// --- brownout durability invariant -----------------------------------------

TEST(OverloadServiceTest, BrownoutPauseDefersTierTicksNotDurability) {
  SystemConfig config = ServiceMachine();
  config.machine.tier.enabled = true;
  config.machine.tier.dram_cache_bytes = 8 * kMiB;
  config.machine.tier.aggregation_ticks = 1;
  System sys(config);
  ASSERT_NE(sys.tier(), nullptr);
  sys.tier()->SetBrownoutPause(true);
  const uint64_t pauses_before = sys.ctx().counters().brownout_tier_pauses;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sys.TierTick().ok());
  }
  // Optional migration work was deferred...
  EXPECT_GT(sys.ctx().counters().brownout_tier_pauses, pauses_before);

  // ...but durability is untouched: a write + flush to a persistent segment
  // still reaches media while the pause is set.
  auto seg = sys.fom().CreateSegment("/srv/s", 64 * kKiB,
                                     SegmentOptions{.flags = {.persistent = true}});
  ASSERT_TRUE(seg.ok());
  auto proc = sys.Launch(Backend::kFom);
  ASSERT_TRUE(proc.ok());
  auto base = sys.fom().Map((*proc)->fom(), *seg, Prot::kReadWrite);
  ASSERT_TRUE(base.ok());
  uint8_t line[64];
  for (uint8_t& b : line) {
    b = 0x5a;
  }
  ASSERT_TRUE(sys.UserWrite(**proc, *base, line).ok());
  ASSERT_TRUE(sys.UserFlush(**proc, *base, sizeof(line)).ok());
  uint8_t back[64] = {};
  ASSERT_TRUE(sys.UserRead(**proc, *base, back).ok());
  EXPECT_EQ(back[0], 0x5a);
  sys.tier()->SetBrownoutPause(false);
}

TEST(OverloadServiceTest, BrownoutDefersPrezeroRefillNotCorrectness) {
  SystemConfig config = ServiceMachine();
  config.machine.smp.num_cpus = 2;
  config.machine.smp.percpu_frame_cache = true;
  config.machine.smp.prezero_pool = true;
  config.machine.smp.prezero_target_frames = 64;
  System sys(config);
  PhysManager& pm = sys.phys_manager();
  pm.ReplenishPrezeroPool();
  ASSERT_GT(pm.prezero_pool_frames(), 0u);
  pm.SetBrownout(true);
  const uint64_t deferrals_before = sys.ctx().counters().brownout_prezero_deferrals;
  // Drain the pool well past the refill watermark: every alloc still
  // succeeds (inline zeroing is the fallback), but no background refill
  // happens while the brownout holds.
  for (int i = 0; i < 512; ++i) {
    auto frame = pm.AllocFrame(/*zero=*/true);
    ASSERT_TRUE(frame.ok());
  }
  EXPECT_GT(sys.ctx().counters().brownout_prezero_deferrals, deferrals_before);
  EXPECT_EQ(pm.prezero_pool_frames(), 0u);
  pm.SetBrownout(false);
}

TEST(OverloadServiceTest, OverloadWithTieringKeepsAuditClean) {
  // End-to-end durability under brownout: sustained overload with tiering
  // on (promotions paused at L1+, writeback never skipped) -- every get
  // still returns the audited current value.
  SystemConfig machine = ServiceMachine();
  machine.machine.tier.enabled = true;
  machine.machine.tier.dram_cache_bytes = 8 * kMiB;
  machine.machine.tier.aggregation_ticks = 1;
  ShardServiceConfig config = OverloadService(36.0);
  config.tier_tick_every = 1;
  System sys(machine);
  ShardedKvService service(sys, config);
  ShardServiceReport report = service.Run();
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(report.ops_lost, 0u);
  // Sustained 3x load holds brownout at L1+, so the paused tier engine
  // logged deferrals -- and the audit above proves no data was harmed.
  EXPECT_GT(sys.ctx().counters().brownout_tier_pauses, 0u);
}

}  // namespace
}  // namespace o1mem
