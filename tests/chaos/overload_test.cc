// Unit tests for the overload-robustness primitives: arrival parsing and
// determinism, CoDel-style admission shed bounds, retry-budget exhaustion,
// the breaker state machine, and the brownout ladder's hysteresis.
#include <gtest/gtest.h>

#include "src/chaos/admission.h"
#include "src/chaos/arrival.h"
#include "src/chaos/breaker.h"

namespace o1mem {
namespace {

// --- arrival ---------------------------------------------------------------

TEST(ArrivalTest, ParsesPoisson) {
  auto config = ParseArrival("poisson:2.5");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->enabled);
  EXPECT_EQ(config->kind, ArrivalConfig::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(config->rate, 2.5);
  EXPECT_DOUBLE_EQ(config->MeanRate(), 2.5);
}

TEST(ArrivalTest, ParsesBurst) {
  auto config = ParseArrival("burst:4x200");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->kind, ArrivalConfig::Kind::kBurst);
  EXPECT_DOUBLE_EQ(config->rate, 4.0);
  EXPECT_EQ(config->burst_ticks, 200u);
  EXPECT_DOUBLE_EQ(config->MeanRate(), 2.0);  // square wave: half duty cycle
}

TEST(ArrivalTest, ParsesRamp) {
  auto config = ParseArrival("ramp:0.5-3");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->kind, ArrivalConfig::Kind::kRamp);
  EXPECT_DOUBLE_EQ(config->ramp_lo, 0.5);
  EXPECT_DOUBLE_EQ(config->ramp_hi, 3.0);
  EXPECT_DOUBLE_EQ(config->MeanRate(), 1.75);
}

TEST(ArrivalTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseArrival("poisson").ok());        // no colon
  EXPECT_FALSE(ParseArrival("poisson:").ok());       // no rate
  EXPECT_FALSE(ParseArrival("poisson:0").ok());      // zero mean rate
  EXPECT_FALSE(ParseArrival("burst:4").ok());        // missing x<len>
  EXPECT_FALSE(ParseArrival("burst:4x0").ok());      // zero-length phase
  EXPECT_FALSE(ParseArrival("ramp:1").ok());         // missing -<hi>
  EXPECT_FALSE(ParseArrival("gamma:2").ok());        // unknown process
  EXPECT_FALSE(ParseArrival("poisson:2zzz").ok());   // trailing junk
}

TEST(ArrivalTest, SameSeedSameSequence) {
  auto config = ParseArrival("poisson:3");
  ASSERT_TRUE(config.ok());
  ArrivalProcess a(*config, /*total_ops=*/500, /*seed=*/42);
  ArrivalProcess b(*config, /*total_ops=*/500, /*seed=*/42);
  for (uint64_t tick = 0; tick < 400; ++tick) {
    ASSERT_EQ(a.ArrivalsAt(tick), b.ArrivalsAt(tick)) << "tick " << tick;
  }
  EXPECT_EQ(a.generated(), b.generated());
}

TEST(ArrivalTest, DifferentSeedDifferentSequence) {
  auto config = ParseArrival("poisson:3");
  ASSERT_TRUE(config.ok());
  ArrivalProcess a(*config, /*total_ops=*/500, /*seed=*/42);
  ArrivalProcess b(*config, /*total_ops=*/500, /*seed=*/43);
  bool differs = false;
  for (uint64_t tick = 0; tick < 100 && !differs; ++tick) {
    differs = a.ArrivalsAt(tick) != b.ArrivalsAt(tick);
  }
  EXPECT_TRUE(differs);
}

TEST(ArrivalTest, BudgetBoundsGeneration) {
  auto config = ParseArrival("poisson:5");
  ASSERT_TRUE(config.ok());
  ArrivalProcess process(*config, /*total_ops=*/100, /*seed=*/7);
  uint64_t total = 0;
  for (uint64_t tick = 0; tick < 1000; ++tick) {
    total += process.ArrivalsAt(tick);
  }
  EXPECT_EQ(total, 100u);
  EXPECT_TRUE(process.done());
  EXPECT_EQ(process.ArrivalsAt(1000), 0u);
}

TEST(ArrivalTest, BurstQuietPhaseIsSilent) {
  auto config = ParseArrival("burst:6x50");
  ASSERT_TRUE(config.ok());
  ArrivalProcess process(*config, /*total_ops=*/100000, /*seed=*/9);
  uint64_t high = 0;
  for (uint64_t tick = 0; tick < 200; ++tick) {
    const uint32_t n = process.ArrivalsAt(tick);
    const bool high_phase = (tick / 50) % 2 == 0;
    if (!high_phase) {
      EXPECT_EQ(n, 0u) << "tick " << tick;
    }
    high += high_phase ? n : 0;
  }
  EXPECT_GT(high, 0u);
}

TEST(ArrivalTest, RampRateClimbsAndHolds) {
  auto config = ParseArrival("ramp:1-5");
  ASSERT_TRUE(config.ok());
  config->horizon_ticks = 100;
  ArrivalProcess process(*config, /*total_ops=*/1000000, /*seed=*/3);
  EXPECT_DOUBLE_EQ(process.RateAt(0), 1.0);
  EXPECT_LT(process.RateAt(25), process.RateAt(75));
  EXPECT_DOUBLE_EQ(process.RateAt(100), 5.0);
  EXPECT_DOUBLE_EQ(process.RateAt(5000), 5.0);  // holds hi past the horizon
}

// --- admission -------------------------------------------------------------

AdmissionConfig BoundedQueue(uint64_t capacity, uint64_t target) {
  AdmissionConfig config;
  config.enabled = true;
  config.queue_capacity = capacity;
  config.target_wait_ticks = target;
  return config;
}

TEST(AdmissionTest, StandingQueueTargetBoundsDepth) {
  // slots=4, target=3 ticks: est wait (depth+1)/4 exceeds the target once
  // depth reaches 12, so exactly 12 admits then sheds -- the CoDel-style
  // bound on queued sojourn.
  AdmissionQueue<int> q(BoundedQueue(/*capacity=*/1000, /*target=*/3), /*slots_per_tick=*/4);
  int admitted = 0;
  for (int i = 0; i < 64; ++i) {
    if (q.Offer(i, /*tick=*/0, /*deadline_tick=*/1000) ==
        AdmissionQueue<int>::Verdict::kAdmit) {
      admitted++;
    }
  }
  EXPECT_EQ(admitted, 12);
  EXPECT_EQ(q.depth(), 12u);
  // Draining one service tick's worth re-opens exactly that much room.
  for (int i = 0; i < 4; ++i) {
    q.PopFront();
  }
  EXPECT_EQ(q.Offer(99, 0, 1000), AdmissionQueue<int>::Verdict::kAdmit);
}

TEST(AdmissionTest, DeadlineShedBeatsTarget) {
  // With 1 tick of deadline left, est wait (depth+1)/4 > 1 sheds at depth 4
  // even though the standing target (3 ticks -> depth 12) would admit.
  AdmissionQueue<int> q(BoundedQueue(1000, 3), 4);
  int admitted = 0;
  for (int i = 0; i < 16; ++i) {
    if (q.Offer(i, /*tick=*/10, /*deadline_tick=*/11) ==
        AdmissionQueue<int>::Verdict::kAdmit) {
      admitted++;
    }
  }
  EXPECT_EQ(admitted, 4);  // est (4)/4 = 1.0 not > 1.0 admits; (5)/4 > 1 sheds
}

TEST(AdmissionTest, OverflowShedsAtCapacity) {
  // Tiny hard bound, no target: the capacity trips first.
  AdmissionQueue<int> q(BoundedQueue(/*capacity=*/8, /*target=*/0), 4);
  int admitted = 0;
  AdmissionQueue<int>::Verdict last = AdmissionQueue<int>::Verdict::kAdmit;
  for (int i = 0; i < 16; ++i) {
    last = q.Offer(i, 0, /*deadline_tick=*/1000);
    if (last == AdmissionQueue<int>::Verdict::kAdmit) {
      admitted++;
    }
  }
  EXPECT_EQ(admitted, 8);
  EXPECT_EQ(last, AdmissionQueue<int>::Verdict::kShedOverflow);
}

TEST(AdmissionTest, DisabledAdmitsEverything) {
  AdmissionConfig config;  // enabled = false
  AdmissionQueue<int> q(config, 4);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(q.Offer(i, 0, 0), AdmissionQueue<int>::Verdict::kAdmit);
  }
  EXPECT_EQ(q.depth(), 500u);
}

// --- retry budget ----------------------------------------------------------

TEST(RetryBudgetTest, ExhaustsAndRefillsFromSuccesses) {
  RetryBudgetConfig config;
  config.enabled = true;
  config.burst = 2.0;
  config.tokens_per_success = 0.5;
  RetryBudget budget(config);
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());  // exhausted
  budget.OnSuccess();
  EXPECT_FALSE(budget.TryConsume());  // 0.5 token: still below 1
  budget.OnSuccess();
  EXPECT_TRUE(budget.TryConsume());  // 1.0 token
  EXPECT_FALSE(budget.TryConsume());
}

TEST(RetryBudgetTest, BurstCapsAccumulation) {
  RetryBudgetConfig config;
  config.enabled = true;
  config.burst = 3.0;
  config.tokens_per_success = 1.0;
  RetryBudget budget(config);
  for (int i = 0; i < 100; ++i) {
    budget.OnSuccess();
  }
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
}

TEST(RetryBudgetTest, DisabledNeverDenies) {
  RetryBudget budget(RetryBudgetConfig{});  // enabled = false
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(budget.TryConsume());
  }
}

// --- circuit breaker -------------------------------------------------------

BreakerConfig SmallBreaker() {
  BreakerConfig config;
  config.enabled = true;
  config.failure_threshold = 3;
  config.open_ticks = 10;
  config.half_open_probes = 2;
  return config;
}

TEST(BreakerTest, OpensOnConsecutiveFailuresOnly) {
  CircuitBreaker breaker(SmallBreaker());
  breaker.RecordFailure(1);
  breaker.RecordFailure(2);
  breaker.RecordSuccess(3);  // resets the consecutive count
  breaker.RecordFailure(4);
  breaker.RecordFailure(5);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(6);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(7));
}

TEST(BreakerTest, HalfOpenProbesCloseOrReopen) {
  CircuitBreaker breaker(SmallBreaker());
  for (uint64_t t = 0; t < 3; ++t) {
    breaker.RecordFailure(t);
  }
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(5));  // still cooling down
  EXPECT_TRUE(breaker.Allow(12));  // open_ticks elapsed -> half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess(12);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);  // 1 of 2
  breaker.RecordSuccess(13);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // And the reopen path: a failed probe goes straight back to open.
  for (uint64_t t = 20; t < 23; ++t) {
    breaker.RecordFailure(t);
  }
  ASSERT_TRUE(breaker.Allow(33));
  breaker.RecordFailure(33);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(34));
}

TEST(BreakerTest, TimelineIsDeterministic) {
  auto drive = [] {
    CircuitBreaker breaker(SmallBreaker());
    for (uint64_t t = 0; t < 3; ++t) {
      breaker.RecordFailure(t);
    }
    breaker.Allow(12);
    breaker.RecordSuccess(12);
    breaker.RecordSuccess(13);
    return breaker;
  };
  CircuitBreaker a = drive();
  CircuitBreaker b = drive();
  EXPECT_EQ(a.timeline(), b.timeline());
  EXPECT_EQ(a.timeline(), "t=2 open; t=12 half_open; t=13 closed; ");
  EXPECT_EQ(a.transitions(), 3u);
}

TEST(BreakerTest, LatencySignalCountsSlowSuccesses) {
  BreakerConfig config = SmallBreaker();
  config.latency_fail_ticks = 5;
  CircuitBreaker breaker(config);
  for (uint64_t t = 0; t < 3; ++t) {
    breaker.RecordSuccess(t, /*sojourn_ticks=*/20);  // served, but too slow
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(BreakerTest, DisabledNeverOpens) {
  CircuitBreaker breaker(BreakerConfig{});  // enabled = false
  for (uint64_t t = 0; t < 100; ++t) {
    breaker.RecordFailure(t);
    EXPECT_TRUE(breaker.Allow(t));
  }
  EXPECT_EQ(breaker.transitions(), 0u);
}

// --- brownout ladder -------------------------------------------------------

BrownoutConfig FastBrownout() {
  BrownoutConfig config;
  config.enabled = true;
  config.hysteresis_ticks = 4;
  return config;
}

TEST(BrownoutTest, ClimbsOneLevelPerTickAndRestoresInReverse) {
  BrownoutController ctl(FastBrownout());
  // Saturated signal: one level per tick to the top of the ladder.
  EXPECT_EQ(ctl.Update(1.0), 1);
  EXPECT_EQ(ctl.Update(1.0), 2);
  EXPECT_EQ(ctl.Update(1.0), 3);
  EXPECT_EQ(ctl.Update(1.0), 4);
  EXPECT_EQ(ctl.Update(1.0), 4);  // clamps at kMaxLevel
  // Calm signal: each descent needs hysteresis_ticks consecutive calm ticks,
  // and levels shed in reverse order (4 -> 3 -> 2 -> 1 -> 0).
  int level = 4;
  for (int expected = 3; expected >= 0; --expected) {
    for (uint64_t i = 0; i < FastBrownout().hysteresis_ticks - 1; ++i) {
      level = ctl.Update(0.0);
      EXPECT_EQ(level, expected + 1);  // still holding
    }
    level = ctl.Update(0.0);
    EXPECT_EQ(level, expected);
  }
  // Residency saw every level on the way up and down.
  for (int l = 0; l <= BrownoutController::kMaxLevel; ++l) {
    EXPECT_GT(ctl.residency()[static_cast<size_t>(l)], 0u) << "level " << l;
  }
}

TEST(BrownoutTest, SignalBlipResetsHysteresis) {
  BrownoutController ctl(FastBrownout());
  ctl.Update(1.0);  // L1
  ctl.Update(0.1);  // calm 1
  ctl.Update(0.1);  // calm 2
  ctl.Update(0.4);  // between exit[0]=0.25 and enter[1]=0.70: resets calm
  ctl.Update(0.1);
  ctl.Update(0.1);
  ctl.Update(0.1);
  EXPECT_EQ(ctl.level(), 1);  // only 3 consecutive calm ticks
  EXPECT_EQ(ctl.Update(0.1), 0);
}

TEST(BrownoutTest, DisabledStaysAtZero) {
  BrownoutController ctl(BrownoutConfig{});  // enabled = false
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ctl.Update(1.0), 0);
  }
}

}  // namespace
}  // namespace o1mem
