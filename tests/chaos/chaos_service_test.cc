// ShardedKvService under canned campaigns: kill-one-shard-under-load keeps
// the survivors serving (zero lost requests, recovery p99 within 2x
// nominal), hangs longer than the watchdog allowance are detected and
// recovered, slow-but-alive shards are never killed, whole runs replay
// bit-identically per seed, and chaos-off is behaviorally invisible.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/chaos/shard_service.h"

namespace o1mem {
namespace {

SystemConfig ServiceMachine() {
  SystemConfig config;
  config.machine.dram_bytes = 64 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  config.machine.smp.num_cpus = 2;
  return config;
}

// Small but non-trivial: 3 shards x 1024 single-line records, 600 arrivals.
ShardServiceConfig SmallService() {
  ShardServiceConfig config;
  config.shards = 3;
  config.shard_bytes = 64 * kKiB;
  config.record_bytes = 64;
  config.ops = 600;
  return config;
}

ShardServiceConfig WithCampaign(const std::string& spec, uint64_t seed = 11) {
  ShardServiceConfig config = SmallService();
  auto chaos = ParseCampaign(spec, seed);
  O1_CHECK(chaos.ok());
  config.chaos = *chaos;
  return config;
}

ShardServiceReport RunService(const SystemConfig& machine, const ShardServiceConfig& config) {
  System sys(machine);
  ShardedKvService service(sys, config);
  return service.Run();
}

TEST(ChaosServiceTest, ChaosOffIsInvisible) {
  ShardServiceReport report = RunService(ServiceMachine(), SmallService());
  EXPECT_EQ(report.ops_attempted, 600u);
  EXPECT_EQ(report.ops_ok, 600u);
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_EQ(report.kills + report.hangs + report.watchdog_kills + report.machine_crashes, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_TRUE(report.recoveries.empty());
  EXPECT_TRUE(report.chaos_log.empty());
  EXPECT_EQ(report.nominal.count(), 600u);
  EXPECT_EQ(report.recovery.count(), 0u);
  EXPECT_EQ(report.disrupted.count(), 0u);
  EXPECT_EQ(report.degraded_reads, 0u);
  EXPECT_EQ(report.poison_quarantines, 0u);
}

TEST(ChaosServiceTest, KillOneShardUnderLoadLosesNothing) {
  ShardServiceReport report = RunService(ServiceMachine(), WithCampaign("kill@200:1"));
  EXPECT_EQ(report.kills, 1u);
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(report.ops_ok, report.ops_attempted);

  // The dead shard stops heartbeating; the watchdog detects and recovers it
  // while the other shards keep serving.
  EXPECT_EQ(report.watchdog_kills, 1u);
  ASSERT_EQ(report.recoveries.size(), 1u);
  const RecoveryEvent& event = report.recoveries[0];
  EXPECT_EQ(event.shard, 1);
  EXPECT_STREQ(event.cause, "kill");
  EXPECT_EQ(event.down_tick, 200u);
  EXPECT_GT(event.detect_tick, event.down_tick);
  EXPECT_GT(event.scrub_us, 0.0);
  EXPECT_GT(event.remap_us, 0.0);
  EXPECT_GT(event.time_to_first_served_us, 0.0);

  // Surviving-shard SLO: first-try ops served during the recovery window
  // stay within 2x the nominal tail.
  ASSERT_GT(report.nominal.count(), 0u);
  ASSERT_GT(report.recovery.count(), 0u);
  EXPECT_LE(report.recovery.Percentile(99), 2 * report.nominal.Percentile(99));
}

TEST(ChaosServiceTest, HangBeyondAllowanceTriggersWatchdog) {
  ShardServiceReport report = RunService(ServiceMachine(), WithCampaign("hang@100:0x64"));
  EXPECT_EQ(report.hangs, 1u);
  EXPECT_EQ(report.watchdog_kills, 1u);
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_EQ(report.recoveries[0].shard, 0);
  EXPECT_STREQ(report.recoveries[0].cause, "watchdog");
  // Requests to the hung shard timed out and were retried, never lost.
  EXPECT_GT(report.timeouts, 0u);
  EXPECT_GT(report.retries, 0u);
}

TEST(ChaosServiceTest, SlowButAliveShardIsNotKilled) {
  // An 8-tick hang is inside the watchdog allowance (3 missed beats x
  // 4-tick interval): the shard resumes beating and must not be killed.
  ShardServiceReport report = RunService(ServiceMachine(), WithCampaign("hang@100:0x8"));
  EXPECT_EQ(report.hangs, 1u);
  EXPECT_EQ(report.watchdog_kills, 0u);
  EXPECT_TRUE(report.recoveries.empty());
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.ops_ok, 600u);
  EXPECT_EQ(report.verify_failures, 0u);
}

TEST(ChaosServiceTest, MediaPoisonDegradesAndRepairs) {
  // Heavy transient poison on shard 0's segment: gets that hit a poisoned
  // record repair it from the client copy; nothing fails, nothing is lost.
  ShardServiceReport report =
      RunService(ServiceMachine(), WithCampaign("poison@every2:0", /*seed=*/13));
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(report.ops_ok, report.ops_attempted);
  EXPECT_GT(report.media_repairs, 0u);
}

TEST(ChaosServiceTest, MachineCrashRecoversAllShards) {
  ShardServiceReport report = RunService(ServiceMachine(), WithCampaign("crash@150"));
  EXPECT_EQ(report.machine_crashes, 1u);
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_EQ(report.recoveries[0].shard, -1);
  EXPECT_STREQ(report.recoveries[0].cause, "machine");
  EXPECT_GT(report.recoveries[0].replay_records, 0u);
}

TEST(ChaosServiceTest, TornWriteCrashUnderExplicitFlush) {
  SystemConfig machine = ServiceMachine();
  machine.machine.persistence = PersistenceModel::kExplicitFlush;
  ShardServiceReport report =
      RunService(machine, WithCampaign("tornwrite@500", /*seed=*/17));
  // The armed index trips mid-campaign: power fails with torn persists, the
  // whole machine journal-replays back, and the audit still holds (records
  // are single-line, so a torn multi-line persist can never tear one).
  EXPECT_GE(report.machine_crashes, 1u);
  EXPECT_EQ(report.ops_lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
}

TEST(ChaosServiceTest, SameSeedReplaysBitIdentically) {
  const ShardServiceConfig config =
      WithCampaign("kill@150:r; hang@300:rx40; poison@100:r", /*seed=*/5);
  ShardServiceReport a = RunService(ServiceMachine(), config);
  ShardServiceReport b = RunService(ServiceMachine(), config);
  EXPECT_EQ(a.chaos_log, b.chaos_log);
  EXPECT_FALSE(a.chaos_log.empty());
  EXPECT_EQ(a.ops_attempted, b.ops_attempted);
  EXPECT_EQ(a.ops_ok, b.ops_ok);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.media_repairs, b.media_repairs);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.run_us, b.run_us);
  EXPECT_EQ(a.nominal.count(), b.nominal.count());
  EXPECT_EQ(a.recovery.count(), b.recovery.count());
  EXPECT_EQ(a.disrupted.count(), b.disrupted.count());
  EXPECT_EQ(a.nominal.Percentile(99), b.nominal.Percentile(99));
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (size_t i = 0; i < a.recoveries.size(); ++i) {
    EXPECT_EQ(a.recoveries[i].shard, b.recoveries[i].shard);
    EXPECT_EQ(a.recoveries[i].down_tick, b.recoveries[i].down_tick);
    EXPECT_EQ(a.recoveries[i].detect_tick, b.recoveries[i].detect_tick);
    EXPECT_EQ(a.recoveries[i].scrub_us, b.recoveries[i].scrub_us);
    EXPECT_EQ(a.recoveries[i].time_to_first_served_us, b.recoveries[i].time_to_first_served_us);
  }
  EXPECT_EQ(a.ops_lost, 0u);
  EXPECT_EQ(b.verify_failures, 0u);
}

}  // namespace
}  // namespace o1mem
