// Degraded mode: media errors surfaced by tier migration must quarantine
// the affected extent and fall back to read-only-NVM serving -- never abort
// the operation. Covers poison caught during promotion (home read), during
// writeback/demotion (cache read), the no-re-promote fence, procfs
// visibility, and the crash semantics of DRAM-tier poison.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/os/system.h"

namespace o1mem {
namespace {

SystemConfig TierOn(uint64_t cache_bytes = 8 * kMiB) {
  SystemConfig config;
  config.machine.dram_bytes = 64 * kMiB;
  config.machine.nvm_bytes = 128 * kMiB;
  config.machine.tier.enabled = true;
  config.machine.tier.dram_cache_bytes = cache_bytes;
  config.machine.tier.aggregation_ticks = 2;
  config.machine.tier.min_region_bytes = 16 * kPageSize;
  config.machine.tier.promote_after = 1;
  config.machine.tier.demote_after = 2;
  return config;
}

ProcessImage TinyImage() {
  return ProcessImage{.code_bytes = kPageSize, .stack_bytes = kPageSize,
                      .heap_bytes = kPageSize};
}

std::vector<uint8_t> Pattern(uint64_t n, uint8_t salt) {
  std::vector<uint8_t> data(n);
  for (uint64_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(i * 13 + salt);
  }
  return data;
}

class QuarantineTest : public ::testing::Test {
 protected:
  void Boot(const SystemConfig& config) {
    sys_ = std::make_unique<System>(config);
    auto launched = sys_->Launch(Backend::kFom, TinyImage());
    ASSERT_TRUE(launched.ok());
    proc_ = *launched;
  }

  void MakeSegment(const std::string& path, uint64_t bytes, uint8_t salt) {
    auto seg = sys_->fom().CreateSegment(path, bytes,
                                         SegmentOptions{.flags = {.persistent = true}});
    ASSERT_TRUE(seg.ok());
    inode_ = *seg;
    auto va = sys_->fom().Map(proc_->fom(), *seg, Prot::kReadWrite);
    ASSERT_TRUE(va.ok());
    va_ = *va;
    bytes_ = bytes;
    auto data = Pattern(bytes, salt);
    ASSERT_TRUE(sys_->UserWrite(*proc_, va_, data).ok());
    ASSERT_TRUE(sys_->UserFlush(*proc_, va_, bytes).ok());
  }

  // Physical address of the segment's first home byte.
  Paddr HomePaddr() {
    auto extents = sys_->pmfs().Extents(inode_);
    O1_CHECK(extents.ok() && !extents->empty());
    return (*extents)[0].paddr;
  }

  std::vector<uint8_t> ReadMapped(uint64_t off, uint64_t len) {
    std::vector<uint8_t> out(len);
    O1_CHECK(sys_->UserRead(*proc_, va_ + off, out).ok());
    return out;
  }

  std::vector<uint8_t> ReadHome(uint64_t off, uint64_t len) {
    std::vector<uint8_t> out(len);
    auto read = sys_->pmfs().ReadAt(inode_, off, out);
    O1_CHECK(read.ok() && *read == len);
    return out;
  }

  std::unique_ptr<System> sys_;
  Process* proc_ = nullptr;
  InodeId inode_ = kInvalidInode;
  Vaddr va_ = 0;
  uint64_t bytes_ = 0;
};

TEST_F(QuarantineTest, HomePoisonDuringPromotionQuarantinesInsteadOfAborting) {
  Boot(TierOn());
  MakeSegment("/q/promo", 2 * kMiB, /*salt=*/1);
  FaultInjector& fi = sys_->machine().fault_injector();
  fi.MarkUnreadable(HomePaddr(), /*sticky=*/false);

  // The promotion's bulk copy hits the poisoned home line: the whole unit is
  // fenced off, the hint itself succeeds.
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_GE(sys_->ctx().counters().poison_quarantines, 1u);
  EXPECT_EQ(sys_->tier()->quarantined_bytes(), bytes_);
  ASSERT_EQ(sys_->tier()->QuarantinedOf(inode_).size(), 1u);
  EXPECT_EQ(sys_->tier()->QuarantinedOf(inode_)[0].first, 0u);

  // The fence holds: a second hint neither re-promotes nor re-counts.
  const uint64_t quarantines = sys_->ctx().counters().poison_quarantines;
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_EQ(sys_->ctx().counters().poison_quarantines, quarantines);

  // Reads of the quarantined range (off the poisoned line) are served from
  // the NVM home and counted as degraded.
  const uint64_t degraded0 = sys_->ctx().counters().degraded_reads;
  EXPECT_EQ(ReadMapped(kPageSize, kPageSize), Pattern(kPageSize, 1));
  EXPECT_GT(sys_->ctx().counters().degraded_reads, degraded0);

  // The poisoned line itself still errors on read, and heals on rewrite
  // (transient poison), so repair-by-rewrite always works.
  std::vector<uint8_t> line(64);
  EXPECT_EQ(sys_->UserRead(*proc_, va_, line).code(), StatusCode::kMediaError);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, line).ok());
  EXPECT_TRUE(sys_->UserRead(*proc_, va_, line).ok());
  EXPECT_FALSE(fi.has_poison());
}

TEST_F(QuarantineTest, CachePoisonOnFlushAbandonsDirtyDeltaToHome) {
  Boot(TierOn());
  MakeSegment("/q/flush", 2 * kMiB, /*salt=*/3);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  auto promoted = sys_->tier()->PromotedOf(inode_);
  ASSERT_EQ(promoted.size(), 1u);
  ASSERT_EQ(promoted[0].bytes, bytes_);

  // Dirty the cache copy, then poison one of its lines: the writeback's
  // cache read fails, so UserFlush must abandon the copy instead of erroring.
  auto dirty = Pattern(bytes_, /*salt=*/4);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, dirty).ok());
  sys_->machine().fault_injector().MarkUnreadable(promoted[0].cache + 64, /*sticky=*/false);
  const uint64_t demotions0 = sys_->ctx().counters().tier_demotions;

  ASSERT_TRUE(sys_->UserFlush(*proc_, va_, bytes_).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_EQ(sys_->tier()->quarantined_bytes(), bytes_);
  EXPECT_GE(sys_->ctx().counters().poison_quarantines, 1u);
  EXPECT_GT(sys_->ctx().counters().tier_demotions, demotions0);

  // The dirty delta is lost by design: home still holds the pre-dirty
  // pattern, and mapped reads now serve it (degraded, from NVM).
  EXPECT_EQ(ReadHome(0, bytes_), Pattern(bytes_, 3));
  const uint64_t degraded0 = sys_->ctx().counters().degraded_reads;
  EXPECT_EQ(ReadMapped(0, kPageSize), Pattern(kPageSize, 3));
  EXPECT_GT(sys_->ctx().counters().degraded_reads, degraded0);
}

TEST_F(QuarantineTest, CachePoisonOnDemotionQuarantines) {
  Boot(TierOn());
  MakeSegment("/q/demote", 2 * kMiB, /*salt=*/5);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  auto promoted = sys_->tier()->PromotedOf(inode_);
  ASSERT_EQ(promoted.size(), 1u);

  auto dirty = Pattern(bytes_, /*salt=*/6);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, dirty).ok());
  sys_->machine().fault_injector().MarkUnreadable(promoted[0].cache, /*sticky=*/false);

  // Demotion's writeback hits the poison: degrade, don't fail.
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kCold).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_EQ(sys_->tier()->quarantined_bytes(), bytes_);
  EXPECT_EQ(ReadHome(0, kPageSize), Pattern(kPageSize, 5));
}

TEST_F(QuarantineTest, SnapshotExposesQuarantineState) {
  Boot(TierOn());
  MakeSegment("/q/proc", 2 * kMiB, /*salt=*/7);
  sys_->machine().fault_injector().MarkUnreadable(HomePaddr(), /*sticky=*/false);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());

  const std::string snap = sys_->DumpProcSnapshot();
  EXPECT_NE(snap.find("quarantined_bytes " + std::to_string(bytes_)), std::string::npos)
      << snap;
  EXPECT_NE(snap.find("poison_quarantines"), std::string::npos);
  EXPECT_NE(snap.find("degraded_reads"), std::string::npos);
}

TEST_F(QuarantineTest, CrashClearsTransientDramPoisonButKeepsSticky) {
  Boot(TierOn());
  MakeSegment("/q/crash", 2 * kMiB, /*salt=*/9);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  auto promoted = sys_->tier()->PromotedOf(inode_);
  ASSERT_EQ(promoted.size(), 1u);

  FaultInjector& fi = sys_->machine().fault_injector();
  const Paddr dram_line = promoted[0].cache;
  const Paddr nvm_line = HomePaddr();
  fi.MarkUnreadable(dram_line, /*sticky=*/false);   // latched ECC event
  fi.MarkUnreadable(nvm_line + 128, /*sticky=*/true);  // worn-out NVM cell
  ASSERT_EQ(fi.CheckRead(dram_line, 64).code(), StatusCode::kMediaError);

  // Power cycle: the latched DRAM error clears with the power, the sticky
  // NVM fault is a property of the part and survives.
  ASSERT_TRUE(sys_->Crash().ok());
  EXPECT_TRUE(fi.CheckRead(dram_line, 64).ok());
  EXPECT_EQ(fi.CheckRead(nvm_line + 128, 64).code(), StatusCode::kMediaError);
  EXPECT_TRUE(fi.IsSticky(nvm_line + 128));
}

}  // namespace
}  // namespace o1mem
