// Watchdog contract: a shard is declared dead only after missed_beats full
// heartbeat intervals with no beat; a slow-but-alive shard that beats at
// (or before) the deadline is never flagged.
#include <gtest/gtest.h>

#include "src/chaos/watchdog.h"

namespace o1mem {
namespace {

TEST(WatchdogTest, ExpiresOnlyPastTheFullAllowance) {
  Watchdog dog(/*heartbeat_interval_ticks=*/4, /*missed_beats=*/3);
  dog.Beat(0);
  EXPECT_EQ(dog.deadline_ticks(), 12u);
  for (uint64_t t = 0; t <= 12; ++t) {
    EXPECT_FALSE(dog.Expired(t)) << "tick " << t;
  }
  EXPECT_TRUE(dog.Expired(13));
}

TEST(WatchdogTest, RegularBeatsNeverExpire) {
  Watchdog dog(4, 3);
  for (uint64_t t = 0; t < 1000; ++t) {
    if (t % 4 == 0) {
      dog.Beat(t);
    }
    EXPECT_FALSE(dog.Expired(t)) << "tick " << t;
  }
}

TEST(WatchdogTest, SlowButAliveIsNeverFlagged) {
  // Beating exactly at the deadline -- misses_ * interval_ ticks apart, the
  // slowest legal shard -- must never trip the watchdog.
  Watchdog dog(4, 3);
  dog.Beat(0);
  for (uint64_t t = 1; t < 600; ++t) {
    if (t % 12 == 0) {
      dog.Beat(t);
    }
    EXPECT_FALSE(dog.Expired(t)) << "tick " << t;
  }
}

TEST(WatchdogTest, MissedBeatsAreDetected) {
  Watchdog dog(4, 3);
  dog.Beat(100);  // last sign of life
  EXPECT_FALSE(dog.Expired(112));
  EXPECT_TRUE(dog.Expired(113));
  EXPECT_TRUE(dog.Expired(500));  // stays expired until rearmed
}

TEST(WatchdogTest, DisarmAndRearm) {
  Watchdog dog(4, 3);
  dog.Beat(0);
  dog.Disarm();
  EXPECT_FALSE(dog.armed());
  EXPECT_FALSE(dog.Expired(1000));  // disarmed: never fires during recovery
  dog.Rearm(1000);
  EXPECT_TRUE(dog.armed());
  EXPECT_FALSE(dog.Expired(1012));
  EXPECT_TRUE(dog.Expired(1013));
}

}  // namespace
}  // namespace o1mem
