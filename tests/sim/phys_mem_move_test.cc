// PhysicalMemory::Move -- the primitive tier migrations are built on. The
// interesting behavior is charge splitting: a bulk transfer pays DRAM cycles
// for the part of the range below the tier boundary and NVM cycles for the
// part above it, on the source (read) and destination (write) sides
// independently.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/context.h"
#include "src/sim/phys_mem.h"

namespace o1mem {
namespace {

class PhysMemMoveTest : public ::testing::Test {
 protected:
  uint64_t ReadCharge(Paddr src, uint64_t len) const {
    const uint64_t dram = src >= mem_.nvm_base() ? 0 : std::min(len, mem_.nvm_base() - src);
    return ctx_.cost().DramBulkCycles(dram) + ctx_.cost().NvmReadBulkCycles(len - dram);
  }
  uint64_t WriteCharge(Paddr dst, uint64_t len) const {
    const uint64_t dram = dst >= mem_.nvm_base() ? 0 : std::min(len, mem_.nvm_base() - dst);
    return ctx_.cost().DramBulkCycles(dram) + ctx_.cost().NvmWriteBulkCycles(len - dram);
  }

  SimContext ctx_;
  PhysicalMemory mem_{&ctx_, /*dram_bytes=*/4 * kMiB, /*nvm_bytes=*/4 * kMiB};
};

TEST_F(PhysMemMoveTest, PromotionChargesNvmReadPlusDramWrite) {
  const uint64_t len = 128 * kKiB;
  const Paddr src = mem_.nvm_base();  // pure NVM
  const Paddr dst = 0;                // pure DRAM
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(mem_.Move(dst, src, len).ok());
  EXPECT_EQ(ctx_.now() - t0,
            ctx_.cost().NvmReadBulkCycles(len) + ctx_.cost().DramBulkCycles(len));
}

TEST_F(PhysMemMoveTest, DemotionChargesDramReadPlusNvmWrite) {
  const uint64_t len = 128 * kKiB;
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(mem_.Move(/*dst=*/mem_.nvm_base(), /*src=*/0, len).ok());
  EXPECT_EQ(ctx_.now() - t0,
            ctx_.cost().DramBulkCycles(len) + ctx_.cost().NvmWriteBulkCycles(len));
}

TEST_F(PhysMemMoveTest, SourceStraddlingBoundarySplitsReadCharge) {
  const uint64_t len = 128 * kKiB;
  const Paddr src = mem_.nvm_base() - 64 * kKiB;  // 64K DRAM + 64K NVM
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(mem_.Move(/*dst=*/0, src, len).ok());
  const uint64_t expect = ctx_.cost().DramBulkCycles(64 * kKiB) +
                          ctx_.cost().NvmReadBulkCycles(64 * kKiB) +
                          ctx_.cost().DramBulkCycles(len);
  EXPECT_EQ(ctx_.now() - t0, expect);
  EXPECT_EQ(expect, ReadCharge(src, len) + WriteCharge(0, len));
}

TEST_F(PhysMemMoveTest, DestinationStraddlingBoundarySplitsWriteCharge) {
  const uint64_t len = 256 * kKiB;
  const Paddr dst = mem_.nvm_base() - 64 * kKiB;  // 64K DRAM + 192K NVM
  const Paddr src = mem_.nvm_base() + kMiB;
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(mem_.Move(dst, src, len).ok());
  const uint64_t expect = ctx_.cost().NvmReadBulkCycles(len) +
                          ctx_.cost().DramBulkCycles(64 * kKiB) +
                          ctx_.cost().NvmWriteBulkCycles(192 * kKiB);
  EXPECT_EQ(ctx_.now() - t0, expect);
  EXPECT_EQ(expect, ReadCharge(src, len) + WriteCharge(dst, len));
}

TEST_F(PhysMemMoveTest, MovesDataAndCountsMigratedBytes) {
  std::vector<uint8_t> data(3 * kPageSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  const Paddr src = mem_.nvm_base() + kPageSize / 2;  // unaligned, page-straddling
  ASSERT_TRUE(mem_.Write(src, data).ok());
  const uint64_t before = ctx_.counters().tier_migrated_bytes;
  ASSERT_TRUE(mem_.Move(/*dst=*/kPageSize / 4, src, data.size()).ok());
  EXPECT_EQ(ctx_.counters().tier_migrated_bytes - before, data.size());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(mem_.Read(kPageSize / 4, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(PhysMemMoveTest, ZeroLengthMoveIsFreeNoOp) {
  const uint64_t t0 = ctx_.now();
  const uint64_t before = ctx_.counters().tier_migrated_bytes;
  ASSERT_TRUE(mem_.Move(/*dst=*/0, /*src=*/mem_.nvm_base(), 0).ok());
  EXPECT_EQ(ctx_.now(), t0);
  EXPECT_EQ(ctx_.counters().tier_migrated_bytes, before);
}

TEST_F(PhysMemMoveTest, OutOfRangeIsRejectedUncharged) {
  const uint64_t t0 = ctx_.now();
  const uint64_t total = mem_.total_bytes();
  EXPECT_EQ(mem_.Move(total - kPageSize, 0, 2 * kPageSize).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mem_.Move(0, total - kPageSize, 2 * kPageSize).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mem_.Move(total, 0, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ctx_.now(), t0);
  EXPECT_EQ(ctx_.counters().tier_migrated_bytes, 0u);
}

}  // namespace
}  // namespace o1mem
