#include "src/sim/tlb.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

TEST(TlbTest, MissThenHitAfterInsert) {
  Tlb tlb(64, 4);
  EXPECT_FALSE(tlb.Lookup(1, 0x1000).has_value());
  tlb.Insert(1, 0x1000, 0x8000, kPageSize, Prot::kRead);
  auto e = tlb.Lookup(1, 0x1abc);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->pbase, 0x8000u);
  EXPECT_EQ(e->page_bytes, kPageSize);
}

TEST(TlbTest, AsidIsolation) {
  Tlb tlb(64, 4);
  tlb.Insert(1, 0x1000, 0x8000, kPageSize, Prot::kRead);
  EXPECT_FALSE(tlb.Lookup(2, 0x1000).has_value());
}

TEST(TlbTest, LargePageEntryCoversWholePage) {
  Tlb tlb(64, 4);
  tlb.Insert(1, kLargePageSize, 0, kLargePageSize, Prot::kReadWrite);
  auto e = tlb.Lookup(1, kLargePageSize + 12345);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->page_bytes, kLargePageSize);
}

TEST(TlbTest, LruEvictionWithinSet) {
  Tlb tlb(4, 4);  // one set, four ways
  for (int i = 0; i < 4; ++i) {
    tlb.Insert(1, static_cast<Vaddr>(i) * 4 * kPageSize, 0, kPageSize, Prot::kRead);
  }
  // Touch entry 0 so it is most recently used.
  ASSERT_TRUE(tlb.Lookup(1, 0).has_value());
  // Insert a fifth entry: the LRU (entry for page 1*4) must be evicted.
  tlb.Insert(1, 100 * kPageSize, 0, kPageSize, Prot::kRead);
  EXPECT_TRUE(tlb.Lookup(1, 0).has_value());
  EXPECT_FALSE(tlb.Lookup(1, 4 * kPageSize).has_value());
}

TEST(TlbTest, ReinsertionRefreshesInPlace) {
  Tlb tlb(4, 4);
  tlb.Insert(1, 0, 0x1000, kPageSize, Prot::kRead);
  tlb.Insert(1, 0, 0x2000, kPageSize, Prot::kReadWrite);
  auto e = tlb.Lookup(1, 0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->pbase, 0x2000u);
  EXPECT_EQ(e->prot, Prot::kReadWrite);
}

TEST(TlbTest, InvalidatePage) {
  Tlb tlb(64, 4);
  tlb.Insert(1, 0x1000, 0x8000, kPageSize, Prot::kRead);
  EXPECT_EQ(tlb.InvalidatePage(1, 0x1fff), 1);
  EXPECT_FALSE(tlb.Lookup(1, 0x1000).has_value());
  EXPECT_EQ(tlb.InvalidatePage(1, 0x1000), 0);
}

TEST(TlbTest, InvalidateRangeDropsOverlapsOnly) {
  Tlb tlb(64, 4);
  tlb.Insert(1, 0, 0, kPageSize, Prot::kRead);
  tlb.Insert(1, kPageSize, 0, kPageSize, Prot::kRead);
  tlb.Insert(1, 10 * kPageSize, 0, kPageSize, Prot::kRead);
  EXPECT_EQ(tlb.InvalidateRange(1, 0, 2 * kPageSize), 2);
  EXPECT_TRUE(tlb.Lookup(1, 10 * kPageSize).has_value());
}

TEST(TlbTest, InvalidateAsidKeepsOthers) {
  Tlb tlb(64, 4);
  tlb.Insert(1, 0, 0, kPageSize, Prot::kRead);
  tlb.Insert(2, 0, 0, kPageSize, Prot::kRead);
  tlb.InvalidateAsid(1);
  EXPECT_FALSE(tlb.Lookup(1, 0).has_value());
  EXPECT_TRUE(tlb.Lookup(2, 0).has_value());
}

TEST(RangeTlbTest, OneEntryCoversArbitrarilyLargeRange) {
  RangeTlb rtlb(4);
  rtlb.Insert(1, kGiB, 64 * kGiB, /*pbase=*/0, Prot::kReadWrite);
  EXPECT_TRUE(rtlb.Lookup(1, kGiB).has_value());
  EXPECT_TRUE(rtlb.Lookup(1, kGiB + 63 * kGiB).has_value());
  EXPECT_FALSE(rtlb.Lookup(1, kGiB + 64 * kGiB).has_value());
  EXPECT_FALSE(rtlb.Lookup(1, kGiB - 1).has_value());
}

TEST(RangeTlbTest, OffsetTranslationIsLinear) {
  RangeTlb rtlb(4);
  rtlb.Insert(1, 0x10000, 0x1000, 0x90000, Prot::kRead);
  auto e = rtlb.Lookup(1, 0x10abc);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->pbase + (0x10abcu - e->vbase), 0x90abcu);
}

TEST(RangeTlbTest, LruEviction) {
  RangeTlb rtlb(2);
  rtlb.Insert(1, 0, kPageSize, 0, Prot::kRead);
  rtlb.Insert(1, kMiB, kPageSize, 0, Prot::kRead);
  ASSERT_TRUE(rtlb.Lookup(1, 0).has_value());  // refresh first entry
  rtlb.Insert(1, kGiB, kPageSize, 0, Prot::kRead);
  EXPECT_TRUE(rtlb.Lookup(1, 0).has_value());
  EXPECT_FALSE(rtlb.Lookup(1, kMiB).has_value());
}

TEST(RangeTlbTest, InvalidateRange) {
  RangeTlb rtlb(4);
  rtlb.Insert(1, 0, kMiB, 0, Prot::kRead);
  rtlb.Insert(1, 2 * kMiB, kMiB, 0, Prot::kRead);
  EXPECT_EQ(rtlb.InvalidateRange(1, kMiB / 2, kMiB), 1);
  EXPECT_FALSE(rtlb.Lookup(1, kMiB / 2).has_value());
  EXPECT_TRUE(rtlb.Lookup(1, 2 * kMiB).has_value());
}

}  // namespace
}  // namespace o1mem
