#include "src/sim/mmu.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/machine.h"

namespace o1mem {
namespace {

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : as_(machine_.CreateAddressSpace()) {}

  Machine machine_{MachineConfig{.dram_bytes = 64 * kMiB, .nvm_bytes = 64 * kMiB}};
  std::unique_ptr<AddressSpace> as_;
};

TEST_F(MmuTest, PageWalkThenTlbHits) {
  ASSERT_TRUE(as_->page_table().MapPage(0x1000, 0x2000, kPageSize, Prot::kReadWrite).ok());
  auto t1 = machine_.mmu().Translate(*as_, 0x1234, AccessType::kRead);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->paddr, 0x2234u);
  EXPECT_EQ(t1->source, TranslationInfo::Source::kPageWalk);

  auto t2 = machine_.mmu().Translate(*as_, 0x1678, AccessType::kRead);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->source, TranslationInfo::Source::kL1Tlb);
  EXPECT_EQ(machine_.ctx().counters().tlb_l1_hits, 1u);
  EXPECT_EQ(machine_.ctx().counters().page_walks, 1u);
}

TEST_F(MmuTest, TlbHitIsCheaperThanWalk) {
  ASSERT_TRUE(as_->page_table().MapPage(0, 0, kPageSize, Prot::kRead).ok());
  const uint64_t t0 = machine_.ctx().now();
  ASSERT_TRUE(machine_.mmu().Translate(*as_, 0, AccessType::kRead).ok());
  const uint64_t walk_cost = machine_.ctx().now() - t0;
  const uint64_t t1 = machine_.ctx().now();
  ASSERT_TRUE(machine_.mmu().Translate(*as_, 8, AccessType::kRead).ok());
  const uint64_t hit_cost = machine_.ctx().now() - t1;
  EXPECT_GT(walk_cost, hit_cost);
}

TEST_F(MmuTest, RangeTableServesTranslationsAndPopulatesRangeTlb) {
  ASSERT_TRUE(as_->range_table()
                  .Insert({.vbase = kGiB, .bytes = 16 * kMiB, .pbase = 8 * kMiB,
                           .prot = Prot::kReadWrite})
                  .ok());
  auto t1 = machine_.mmu().Translate(*as_, kGiB + 5, AccessType::kWrite);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->paddr, 8 * kMiB + 5);
  EXPECT_EQ(t1->source, TranslationInfo::Source::kRangeTable);
  // A far-away address in the same range: range TLB covers the whole extent.
  auto t2 = machine_.mmu().Translate(*as_, kGiB + 15 * kMiB, AccessType::kRead);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->source, TranslationInfo::Source::kRangeTlb);
}

TEST_F(MmuTest, ProtectionViolationIsDenied) {
  ASSERT_TRUE(as_->page_table().MapPage(0, 0, kPageSize, Prot::kRead).ok());
  auto t = machine_.mmu().Translate(*as_, 0, AccessType::kWrite);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(machine_.ctx().counters().segv_faults, 1u);
}

TEST_F(MmuTest, UnhandledFaultIsSegv) {
  auto t = machine_.mmu().Translate(*as_, 0xdead000, AccessType::kRead);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kFault);
}

class MappingFaultHandler : public FaultHandler {
 public:
  MappingFaultHandler(AddressSpace* as, Paddr pool_base) : as_(as), next_(pool_base) {}

  Status HandleFault(Vaddr vaddr, AccessType /*type*/) override {
    ++faults;
    const Paddr frame = next_;
    next_ += kPageSize;
    return as_->page_table().MapPage(AlignDown(vaddr, kPageSize), frame, kPageSize,
                                     Prot::kReadWrite);
  }

  int faults = 0;

 private:
  AddressSpace* as_;
  Paddr next_;
};

TEST_F(MmuTest, FaultHandlerResolvesMiss) {
  MappingFaultHandler handler(as_.get(), 16 * kMiB);
  as_->set_fault_handler(&handler);
  auto t = machine_.mmu().Translate(*as_, 0x5000, AccessType::kWrite);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->faulted);
  EXPECT_EQ(t->paddr, 16 * kMiB);
  EXPECT_EQ(handler.faults, 1);
  // Subsequent access: no fault.
  auto t2 = machine_.mmu().Translate(*as_, 0x5008, AccessType::kRead);
  ASSERT_TRUE(t2.ok());
  EXPECT_FALSE(t2->faulted);
  EXPECT_EQ(handler.faults, 1);
}

TEST_F(MmuTest, FaultIsMuchMoreExpensiveThanWarmAccess) {
  MappingFaultHandler handler(as_.get(), 16 * kMiB);
  as_->set_fault_handler(&handler);
  const uint64_t t0 = machine_.ctx().now();
  ASSERT_TRUE(machine_.mmu().Touch(*as_, 0, 1, AccessType::kRead).ok());
  const uint64_t fault_cost = machine_.ctx().now() - t0;
  const uint64_t t1 = machine_.ctx().now();
  ASSERT_TRUE(machine_.mmu().Touch(*as_, 64, 1, AccessType::kRead).ok());
  const uint64_t warm_cost = machine_.ctx().now() - t1;
  EXPECT_GT(fault_cost, 10 * warm_cost);
}

TEST_F(MmuTest, ReadWriteVirtRoundTrip) {
  ASSERT_TRUE(as_->page_table().MapPage(0x10000, 0x40000, kPageSize, Prot::kReadWrite).ok());
  ASSERT_TRUE(as_->page_table().MapPage(0x11000, 0x99000, kPageSize, Prot::kReadWrite).ok());
  std::vector<uint8_t> data(5000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  // Write crosses the (physically discontiguous) page boundary.
  ASSERT_TRUE(machine_.mmu().WriteVirt(*as_, 0x10800, data).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(machine_.mmu().ReadVirt(*as_, 0x10800, out).ok());
  EXPECT_EQ(out, data);
  // Verify the bytes landed at the right physical addresses.
  EXPECT_EQ(machine_.phys().PeekByte(0x40800), data[0]);
  EXPECT_EQ(machine_.phys().PeekByte(0x99000), data[0x800]);
}

TEST_F(MmuTest, ShootdownForcesRewalk) {
  ASSERT_TRUE(as_->page_table().MapPage(0, 0, kPageSize, Prot::kRead).ok());
  ASSERT_TRUE(machine_.mmu().Translate(*as_, 0, AccessType::kRead).ok());
  machine_.mmu().ShootdownPage(as_->asid(), 0);
  const uint64_t walks_before = machine_.ctx().counters().page_walks;
  ASSERT_TRUE(machine_.mmu().Translate(*as_, 0, AccessType::kRead).ok());
  EXPECT_EQ(machine_.ctx().counters().page_walks, walks_before + 1);
  EXPECT_EQ(machine_.ctx().counters().tlb_shootdowns, 1u);
}

TEST_F(MmuTest, StaleTlbEntryServedUntilShootdown) {
  // Documents the hardware behaviour the OS must manage: unmapping the PTE
  // without a shootdown leaves the translation cached.
  ASSERT_TRUE(as_->page_table().MapPage(0, 0x7000, kPageSize, Prot::kRead).ok());
  ASSERT_TRUE(machine_.mmu().Translate(*as_, 0, AccessType::kRead).ok());
  ASSERT_TRUE(as_->page_table().UnmapPage(0, kPageSize).ok());
  auto stale = machine_.mmu().Translate(*as_, 0, AccessType::kRead);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->paddr, 0x7000u);
  machine_.mmu().ShootdownPage(as_->asid(), 0);
  EXPECT_FALSE(machine_.mmu().Translate(*as_, 0, AccessType::kRead).ok());
}

TEST_F(MmuTest, TouchChargesStreamingCheaperThanScattered) {
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(as_->page_table()
                    .MapPage(static_cast<Vaddr>(i) * kPageSize, static_cast<Paddr>(i) * kPageSize,
                             kPageSize, Prot::kRead)
                    .ok());
    ASSERT_TRUE(machine_.mmu().Translate(*as_, static_cast<Vaddr>(i) * kPageSize,
                                         AccessType::kRead)
                    .ok());  // warm the TLB
  }
  const uint64_t t0 = machine_.ctx().now();
  ASSERT_TRUE(machine_.mmu().Touch(*as_, 0, 16 * kPageSize, AccessType::kRead).ok());
  const uint64_t streaming = machine_.ctx().now() - t0;
  const uint64_t t1 = machine_.ctx().now();
  for (int i = 0; i < 16 * 64; ++i) {  // one line at a time
    ASSERT_TRUE(machine_.mmu().Touch(*as_, static_cast<Vaddr>(i) * 64, 1, AccessType::kRead).ok());
  }
  const uint64_t scattered = machine_.ctx().now() - t1;
  EXPECT_GT(scattered, streaming);
}

TEST_F(MmuTest, CrashInvalidatesTranslationCaches) {
  ASSERT_TRUE(as_->page_table().MapPage(0, 0, kPageSize, Prot::kRead).ok());
  ASSERT_TRUE(machine_.mmu().Translate(*as_, 0, AccessType::kRead).ok());
  machine_.Crash();
  const uint64_t walks_before = machine_.ctx().counters().page_walks;
  ASSERT_TRUE(machine_.mmu().Translate(*as_, 0, AccessType::kRead).ok());
  EXPECT_EQ(machine_.ctx().counters().page_walks, walks_before + 1);
  EXPECT_EQ(machine_.crash_count(), 1u);
}

TEST_F(MmuTest, DistinctAddressSpacesDoNotAlias) {
  auto as2 = machine_.CreateAddressSpace();
  ASSERT_TRUE(as_->page_table().MapPage(0, 0x1000, kPageSize, Prot::kRead).ok());
  ASSERT_TRUE(as2->page_table().MapPage(0, 0x2000, kPageSize, Prot::kRead).ok());
  auto a = machine_.mmu().Translate(*as_, 0, AccessType::kRead);
  auto b = machine_.mmu().Translate(*as2, 0, AccessType::kRead);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->paddr, 0x1000u);
  EXPECT_EQ(b->paddr, 0x2000u);
  // Both should now hit their own TLB entries.
  EXPECT_EQ(machine_.mmu().Translate(*as_, 8, AccessType::kRead)->paddr, 0x1008u);
  EXPECT_EQ(machine_.mmu().Translate(*as2, 8, AccessType::kRead)->paddr, 0x2008u);
}

}  // namespace
}  // namespace o1mem
