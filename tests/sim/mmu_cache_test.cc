// Focused tests of the MMU's caching layers: L2 TLB path, page-walk cache,
// range-TLB capacity behaviour, virtualized walk charging.
#include <gtest/gtest.h>

#include "src/sim/machine.h"

namespace o1mem {
namespace {

TEST(MmuCacheTest, L2TlbServesAfterL1Eviction) {
  MachineConfig config;
  config.dram_bytes = 64 * kMiB;
  config.nvm_bytes = 0;
  config.mmu.l1_tlb_entries = 4;  // tiny L1, roomy L2
  config.mmu.l1_tlb_ways = 4;
  config.mmu.l2_tlb_entries = 256;
  config.mmu.l2_tlb_ways = 8;
  Machine machine(config);
  auto as = machine.CreateAddressSpace();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(as->page_table()
                    .MapPage(static_cast<Vaddr>(i) * kPageSize,
                             static_cast<Paddr>(i) * kPageSize, kPageSize, Prot::kRead)
                    .ok());
  }
  // Walk all 16 pages (fills L2; L1 can only hold 4).
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(machine.mmu()
                    .Translate(*as, static_cast<Vaddr>(i) * kPageSize, AccessType::kRead)
                    .ok());
  }
  const uint64_t walks_before = machine.ctx().counters().page_walks;
  const uint64_t l2_before = machine.ctx().counters().tlb_l2_hits;
  // Revisit them: no new walks, L2 hits instead.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(machine.mmu()
                    .Translate(*as, static_cast<Vaddr>(i) * kPageSize, AccessType::kRead)
                    .ok());
  }
  EXPECT_EQ(machine.ctx().counters().page_walks, walks_before);
  EXPECT_GT(machine.ctx().counters().tlb_l2_hits, l2_before);
}

TEST(MmuCacheTest, PwcMakesRepeatWalksCheaper) {
  MachineConfig config;
  config.dram_bytes = 64 * kMiB;
  config.nvm_bytes = 0;
  config.mmu.l1_tlb_entries = 4;  // force walks
  config.mmu.l1_tlb_ways = 4;
  config.mmu.l2_tlb_entries = 8;
  config.mmu.l2_tlb_ways = 8;
  Machine machine(config);
  auto as = machine.CreateAddressSpace();
  // 64 pages in ONE 2 MiB region (one PWC tag covers them all).
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(as->page_table()
                    .MapPage(static_cast<Vaddr>(i) * kPageSize,
                             static_cast<Paddr>(i) * kPageSize, kPageSize, Prot::kRead)
                    .ok());
  }
  const uint64_t t0 = machine.ctx().now();
  ASSERT_TRUE(machine.mmu().Translate(*as, 0, AccessType::kRead).ok());  // cold walk
  const uint64_t cold = machine.ctx().now() - t0;
  const uint64_t t1 = machine.ctx().now();
  ASSERT_TRUE(machine.mmu().Translate(*as, 40 * kPageSize, AccessType::kRead).ok());
  const uint64_t warm = machine.ctx().now() - t1;
  EXPECT_GT(machine.ctx().counters().pwc_hits, 0u);
  EXPECT_LT(warm, cold);
}

TEST(MmuCacheTest, RangeTlbEvictionFallsBackToRangeTable) {
  MachineConfig config;
  config.dram_bytes = 256 * kMiB;
  config.nvm_bytes = 0;
  config.mmu.range_tlb_entries = 2;  // tiny range TLB
  Machine machine(config);
  auto as = machine.CreateAddressSpace();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(as->range_table()
                    .Insert({.vbase = static_cast<Vaddr>(i) * kGiB, .bytes = kMiB,
                             .pbase = static_cast<Paddr>(i) * kMiB, .prot = Prot::kRead})
                    .ok());
  }
  // Round-robin through 8 ranges with a 2-entry range TLB: correctness must
  // hold, and the range table must absorb the misses.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      auto t = machine.mmu().Translate(*as, static_cast<Vaddr>(i) * kGiB + 5,
                                       AccessType::kRead);
      ASSERT_TRUE(t.ok());
      EXPECT_EQ(t->paddr, static_cast<Paddr>(i) * kMiB + 5);
    }
  }
  EXPECT_GT(machine.ctx().counters().range_table_walks, 8u);
}

TEST(MmuCacheTest, FailedWalkIsStillCharged) {
  Machine machine(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 0});
  auto as = machine.CreateAddressSpace();
  const uint64_t t0 = machine.ctx().now();
  EXPECT_FALSE(machine.mmu().Translate(*as, 0x1234000, AccessType::kRead).ok());
  // Hardware walked the (empty) tree and trapped: time moved.
  EXPECT_GT(machine.ctx().now(), t0);
  EXPECT_EQ(machine.ctx().counters().segv_faults, 1u);
}

TEST(MmuCacheTest, TouchZeroLengthIsFree) {
  Machine machine(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 0});
  auto as = machine.CreateAddressSpace();
  const uint64_t t0 = machine.ctx().now();
  EXPECT_TRUE(machine.mmu().Touch(*as, 0xdead000, 0, AccessType::kWrite).ok());
  EXPECT_EQ(machine.ctx().now(), t0);
}

TEST(MmuCacheTest, ReadVirtFailsCleanlyAcrossUnmappedBoundary) {
  Machine machine(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 0});
  auto as = machine.CreateAddressSpace();
  ASSERT_TRUE(as->page_table().MapPage(0, 0, kPageSize, Prot::kReadWrite).ok());
  std::vector<uint8_t> buf(2 * kPageSize, 1);
  // Write starts in the mapped page, crosses into unmapped space: error.
  EXPECT_FALSE(machine.mmu().WriteVirt(*as, kPageSize / 2, buf).ok());
  // The mapped half may have been partially written -- but the mapped page
  // itself is still intact/accessible.
  EXPECT_TRUE(machine.mmu().Touch(*as, 0, kPageSize, AccessType::kRead).ok());
}

}  // namespace
}  // namespace o1mem
