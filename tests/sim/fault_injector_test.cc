#include "src/sim/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/context.h"
#include "src/sim/machine.h"
#include "src/sim/phys_mem.h"

namespace o1mem {
namespace {

constexpr uint64_t kDram = 4 * kMiB;

std::vector<uint8_t> Pattern(uint64_t n, uint8_t base) {
  std::vector<uint8_t> data(n);
  for (uint64_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(base + i);
  }
  return data;
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  explicit FaultInjectorTest(
      PersistenceModel persistence = PersistenceModel::kAutoDurable)
      : mem_(&ctx_, kDram, /*nvm_bytes=*/4 * kMiB, persistence) {
    injector_.AttachPhys(&mem_);
    mem_.AttachFaultInjector(&injector_);
  }

  // Models Machine::Crash() on a raw PhysicalMemory.
  void Crash() {
    mem_.DropVolatile();
    injector_.OnMachineCrash();
  }

  SimContext ctx_;
  FaultInjector injector_;
  PhysicalMemory mem_;
};

class FaultInjectorStrictTest : public FaultInjectorTest {
 protected:
  FaultInjectorStrictTest() : FaultInjectorTest(PersistenceModel::kExplicitFlush) {}
};

TEST_F(FaultInjectorTest, IdleInjectorIsInvisible) {
  // A second memory with no injector attached must behave and charge
  // identically for the same operation sequence.
  SimContext bare_ctx;
  PhysicalMemory bare(&bare_ctx, kDram, 4 * kMiB);

  const auto data = Pattern(5000, 7);
  for (PhysicalMemory* m : {&mem_, &bare}) {
    ASSERT_TRUE(m->Write(kDram + 100, data).ok());
    ASSERT_TRUE(m->FlushLines(kDram + 100, data.size()).ok());
    ASSERT_TRUE(m->Zero(kDram + 64 * kKiB, kPageSize).ok());
  }
  std::vector<uint8_t> a(data.size());
  std::vector<uint8_t> b(data.size());
  ASSERT_TRUE(mem_.Read(kDram + 100, a).ok());
  ASSERT_TRUE(bare.Read(kDram + 100, b).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(ctx_.now(), bare_ctx.now());
  // The injector observed the events even though it changed nothing.
  EXPECT_GT(injector_.nvm_line_writes(), 0u);
  EXPECT_EQ(injector_.nvm_flushes(), 1u);
}

TEST_F(FaultInjectorTest, DramTrafficIsNotCounted) {
  ASSERT_TRUE(mem_.Write(0, Pattern(kPageSize, 1)).ok());
  ASSERT_TRUE(mem_.FlushLines(0, kPageSize).ok());
  EXPECT_EQ(injector_.nvm_line_writes(), 0u);
  EXPECT_EQ(injector_.nvm_flushes(), 0u);
}

TEST_F(FaultInjectorTest, CrashAtNthWriteDiscardsFromThatWriteOn) {
  // Three one-line writes; arm the crash at the second (index 1, 0-based).
  const auto one = Pattern(64, 0x11);
  const auto two = Pattern(64, 0x22);
  const auto three = Pattern(64, 0x33);
  injector_.ArmCrashAtNvmWrite(1);
  ASSERT_TRUE(mem_.Write(kDram, one).ok());
  EXPECT_FALSE(injector_.triggered());
  ASSERT_TRUE(mem_.Write(kDram + 64, two).ok());
  EXPECT_TRUE(injector_.triggered());
  ASSERT_TRUE(mem_.Write(kDram + 128, three).ok());

  // Pre-crash, the in-cache view still shows everything.
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(mem_.Read(kDram + 64, out).ok());
  EXPECT_EQ(out, two);

  Crash();
  EXPECT_FALSE(injector_.triggered());

  ASSERT_TRUE(mem_.Read(kDram, out).ok());
  EXPECT_EQ(out, one);  // before the crash point: durable
  ASSERT_TRUE(mem_.Read(kDram + 64, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(64, 0));  // the armed write: gone
  ASSERT_TRUE(mem_.Read(kDram + 128, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(64, 0));  // after it: gone
}

TEST_F(FaultInjectorTest, PostTriggerOverwriteRevertsToOldContents) {
  const auto old_data = Pattern(64, 0x44);
  ASSERT_TRUE(mem_.Write(kDram, old_data).ok());
  injector_.ArmCrashAtNvmWrite(injector_.nvm_line_writes());
  ASSERT_TRUE(mem_.Write(kDram, Pattern(64, 0x55)).ok());
  EXPECT_TRUE(injector_.triggered());
  Crash();
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(mem_.Read(kDram, out).ok());
  EXPECT_EQ(out, old_data);
}

TEST_F(FaultInjectorStrictTest, CrashAtNthFlushKeepsOnlyEarlierFlushes) {
  const auto one = Pattern(64, 0x11);
  const auto two = Pattern(64, 0x22);
  injector_.ArmCrashAtFlush(1);
  ASSERT_TRUE(mem_.Write(kDram, one).ok());
  ASSERT_TRUE(mem_.FlushLines(kDram, 64).ok());  // flush 0: commits
  EXPECT_FALSE(injector_.triggered());
  ASSERT_TRUE(mem_.Write(kDram + 64, two).ok());
  ASSERT_TRUE(mem_.FlushLines(kDram + 64, 64).ok());  // flush 1: armed, no commit
  EXPECT_TRUE(injector_.triggered());
  Crash();
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(mem_.Read(kDram, out).ok());
  EXPECT_EQ(out, one);
  ASSERT_TRUE(mem_.Read(kDram + 64, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(64, 0));
}

TEST_F(FaultInjectorStrictTest, TornPersistTearsMultiLineWrite) {
  // 64 dirty-unflushed lines at 50%: with torn persists some survive and
  // some revert -- the multi-line persist is torn, not all-or-nothing.
  injector_.EnableTornPersists(/*seed=*/42, /*persist_percent=*/50);
  const auto data = Pattern(4096, 0x66);
  ASSERT_TRUE(mem_.Write(kDram, data).ok());
  Crash();
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(mem_.Read(kDram, out).ok());
  int persisted = 0;
  int reverted = 0;
  for (int line = 0; line < 64; ++line) {
    const bool match =
        std::equal(out.begin() + line * 64, out.begin() + (line + 1) * 64,
                   data.begin() + line * 64);
    const bool zero = std::all_of(out.begin() + line * 64,
                                  out.begin() + (line + 1) * 64,
                                  [](uint8_t b) { return b == 0; });
    ASSERT_TRUE(match || zero) << "line " << line << " is neither old nor new";
    match ? ++persisted : ++reverted;
  }
  EXPECT_GT(persisted, 0);
  EXPECT_GT(reverted, 0);
}

TEST_F(FaultInjectorStrictTest, FlushedLinesImmuneToTearing) {
  injector_.EnableTornPersists(/*seed=*/42, /*persist_percent=*/0);
  const auto data = Pattern(4096, 0x77);
  ASSERT_TRUE(mem_.Write(kDram, data).ok());
  ASSERT_TRUE(mem_.FlushLines(kDram, 4096).ok());
  Crash();
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(mem_.Read(kDram, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FaultInjectorTest, TransientPoisonFailsReadsAndHealsOnOverwrite) {
  ASSERT_TRUE(mem_.Write(kDram, Pattern(256, 1)).ok());
  injector_.MarkUnreadable(kDram + 64, /*sticky=*/false);

  std::vector<uint8_t> out(256);
  auto read = mem_.Read(kDram, out);
  EXPECT_EQ(read.code(), StatusCode::kMediaError);
  // A read that misses the poisoned line still works.
  ASSERT_TRUE(mem_.Read(kDram + 128, std::span(out).subspan(0, 64)).ok());

  ASSERT_TRUE(mem_.Write(kDram + 64, Pattern(64, 2)).ok());  // rewrite heals
  EXPECT_FALSE(injector_.has_poison());
  EXPECT_TRUE(mem_.Read(kDram, out).ok());
}

TEST_F(FaultInjectorTest, StickyPoisonSurvivesOverwriteAndCrash) {
  injector_.MarkUnreadable(kDram + 64, /*sticky=*/true);
  ASSERT_TRUE(mem_.Write(kDram + 64, Pattern(64, 3)).ok());
  std::vector<uint8_t> out(64);
  EXPECT_EQ(mem_.Read(kDram + 64, out).code(), StatusCode::kMediaError);
  EXPECT_TRUE(injector_.IsSticky(kDram + 64));

  Crash();
  EXPECT_EQ(mem_.Read(kDram + 64, out).code(), StatusCode::kMediaError);

  injector_.ClearUnreadable(kDram + 64);  // the "replaced the DIMM" backdoor
  EXPECT_TRUE(mem_.Read(kDram + 64, out).ok());
}

TEST_F(FaultInjectorTest, FindUnreadableLineReportsLowestOverlap) {
  injector_.MarkUnreadable(kDram + 640, /*sticky=*/false);
  injector_.MarkUnreadable(kDram + 192, /*sticky=*/true);
  auto line = injector_.FindUnreadableLine(kDram, 4096);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, kDram + 192);
  EXPECT_FALSE(injector_.FindUnreadableLine(kDram + 1024, 4096).has_value());
  EXPECT_EQ(mem_.FindUnreadableLineUncharged(kDram, 4096), line);
}

TEST_F(FaultInjectorTest, FlipBitCorruptsStoredData) {
  const auto data = Pattern(64, 0x10);
  ASSERT_TRUE(mem_.Write(kDram, data).ok());
  injector_.FlipBit(kDram + 3, /*bit=*/5);
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(mem_.Read(kDram, out).ok());
  EXPECT_EQ(out[3], data[3] ^ (1u << 5));
  for (size_t i = 0; i < out.size(); ++i) {
    if (i != 3) {
      EXPECT_EQ(out[i], data[i]) << i;
    }
  }
}

TEST_F(FaultInjectorStrictTest, FlipBitOnDirtyLineSurvivesCrash) {
  const auto data = Pattern(64, 0x20);
  ASSERT_TRUE(mem_.Write(kDram, data).ok());
  ASSERT_TRUE(mem_.FlushLines(kDram, 64).ok());
  ASSERT_TRUE(mem_.Write(kDram, Pattern(64, 0x30)).ok());  // dirty again
  injector_.FlipBit(kDram + 0, /*bit=*/0);
  Crash();  // unflushed overwrite reverts; the flip hit the durable copy too
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(mem_.Read(kDram, out).ok());
  EXPECT_EQ(out[0], data[0] ^ 1u);
}

TEST_F(FaultInjectorTest, DisarmCancelsThePendingCrashPoint) {
  injector_.ArmCrashAtNvmWrite(0);
  injector_.Disarm();
  ASSERT_TRUE(mem_.Write(kDram, Pattern(64, 1)).ok());
  EXPECT_FALSE(injector_.triggered());
  Crash();
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(mem_.Read(kDram, out).ok());
  EXPECT_EQ(out, Pattern(64, 1));
}

TEST_F(FaultInjectorTest, MachineWiresInjectorEndToEnd) {
  MachineConfig config;
  config.dram_bytes = 2 * kMiB;
  config.nvm_bytes = 2 * kMiB;
  Machine machine(config);
  FaultInjector& fi = machine.fault_injector();
  ASSERT_EQ(machine.phys().fault_injector(), &fi);

  const Paddr nvm = machine.phys().nvm_base();
  fi.ArmCrashAtNvmWrite(fi.nvm_line_writes());
  ASSERT_TRUE(machine.phys().Write(nvm, Pattern(64, 9)).ok());
  EXPECT_TRUE(fi.triggered());
  machine.Crash();
  EXPECT_FALSE(fi.triggered());
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(machine.phys().Read(nvm, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(64, 0));
}

}  // namespace
}  // namespace o1mem
