#include "src/sim/machine.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

TEST(SimClockTest, Conversions) {
  SimClock clock(2.0);  // 2 GHz
  clock.Advance(2000);
  EXPECT_DOUBLE_EQ(clock.CyclesToUs(2000), 1.0);
  EXPECT_DOUBLE_EQ(clock.CyclesToNs(2000), 1000.0);
  EXPECT_EQ(clock.now(), 2000u);
  EXPECT_DOUBLE_EQ(clock.ElapsedUs(0), 1.0);
}

TEST(SimClockTest, FrequencyMatters) {
  SimClock slow(1.0);
  slow.Advance(1000);
  EXPECT_DOUBLE_EQ(slow.CyclesToUs(1000), 1.0);
}

TEST(CostModelTest, BulkCyclesScaleByLine) {
  CostModel cost;
  EXPECT_EQ(cost.DramBulkCycles(64), cost.dram_line_copy_cycles);
  EXPECT_EQ(cost.DramBulkCycles(65), 2 * cost.dram_line_copy_cycles);
  EXPECT_EQ(cost.DramBulkCycles(kPageSize), 64 * cost.dram_line_copy_cycles);
  EXPECT_GT(cost.NvmWriteBulkCycles(kPageSize), cost.NvmReadBulkCycles(kPageSize));
  EXPECT_GT(cost.NvmReadBulkCycles(kPageSize), cost.DramBulkCycles(kPageSize));
}

TEST(CostModelTest, WalkRefs) {
  CostModel cost;
  EXPECT_EQ(cost.WalkRefs(4), 4u);
  EXPECT_EQ(cost.WalkRefs(5), 5u);
  cost.virtualized_walks = true;
  EXPECT_EQ(cost.WalkRefs(4), 24u);
  EXPECT_EQ(cost.WalkRefs(5), 35u);
}

TEST(MachineTest, AsidsAreUnique) {
  Machine machine(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 0});
  auto a = machine.CreateAddressSpace();
  auto b = machine.CreateAddressSpace();
  auto c = machine.CreateAddressSpace();
  EXPECT_NE(a->asid(), b->asid());
  EXPECT_NE(b->asid(), c->asid());
}

TEST(MachineTest, CrashCountsAndCharges) {
  Machine machine(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 16 * kMiB});
  const uint64_t t0 = machine.ctx().now();
  machine.Crash();
  machine.Crash();
  EXPECT_EQ(machine.crash_count(), 2u);
  EXPECT_GT(machine.ctx().now(), t0);
}

TEST(MachineTest, ConfiguredDepthPropagates) {
  Machine machine(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 0,
                                .page_table_depth = 5});
  auto as = machine.CreateAddressSpace();
  EXPECT_EQ(as->page_table().depth(), 5);
}

TEST(CountersTest, DeltaSubtractsFieldwise) {
  EventCounters before;
  before.minor_faults = 5;
  before.ptes_written = 100;
  EventCounters after = before;
  after.minor_faults = 12;
  after.ptes_written = 150;
  after.tlb_misses = 9;
  const EventCounters delta = after.Delta(before);
  EXPECT_EQ(delta.minor_faults, 7u);
  EXPECT_EQ(delta.ptes_written, 50u);
  EXPECT_EQ(delta.tlb_misses, 9u);
  EXPECT_EQ(delta.major_faults, 0u);
}

TEST(ProtTest, BitOperations) {
  EXPECT_TRUE(HasProt(Prot::kReadWrite, Prot::kRead));
  EXPECT_TRUE(HasProt(Prot::kReadWrite, Prot::kWrite));
  EXPECT_FALSE(HasProt(Prot::kRead, Prot::kWrite));
  EXPECT_TRUE(HasProt(Prot::kAll, Prot::kReadExec));
  EXPECT_EQ(ProtName(Prot::kReadExec), "r-x");
  EXPECT_EQ(ProtName(Prot::kNone), "---");
  EXPECT_EQ(RequiredProt(AccessType::kWrite), Prot::kWrite);
  EXPECT_EQ(RequiredProt(AccessType::kExec), Prot::kExec);
}

TEST(UnitsTest, AlignmentHelpers) {
  EXPECT_EQ(AlignDown(4097, kPageSize), kPageSize);
  EXPECT_EQ(AlignUp(4097, kPageSize), 2 * kPageSize);
  EXPECT_EQ(AlignUp(4096, kPageSize), kPageSize);
  EXPECT_TRUE(IsAligned(kLargePageSize, kPageSize));
  EXPECT_FALSE(IsAligned(kPageSize + 1, kPageSize));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(65));
  EXPECT_EQ(PagesFor(1), 1u);
  EXPECT_EQ(PagesFor(kPageSize), 1u);
  EXPECT_EQ(PagesFor(kPageSize + 1), 2u);
  EXPECT_EQ(PagesFor(0), 0u);
}

}  // namespace
}  // namespace o1mem
