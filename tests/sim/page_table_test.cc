#include "src/sim/page_table.h"

#include <gtest/gtest.h>

#include "src/sim/context.h"

namespace o1mem {
namespace {

class PageTableTest : public ::testing::Test {
 protected:
  SimContext ctx_;
  PageTable pt_{&ctx_, 4};
};

TEST_F(PageTableTest, GeometryConstants) {
  EXPECT_EQ(BytesPerEntry(1), kPageSize);
  EXPECT_EQ(BytesPerEntry(2), kLargePageSize);
  EXPECT_EQ(BytesPerEntry(3), kHugePageSize);
  EXPECT_EQ(BytesPerNode(1), kLargePageSize);
  EXPECT_EQ(BytesPerNode(2), kHugePageSize);
  EXPECT_EQ(pt_.va_limit(), 256 * kTiB);
}

TEST_F(PageTableTest, MapAndLookup4K) {
  ASSERT_TRUE(pt_.MapPage(0x200000, 0x5000, kPageSize, Prot::kReadWrite).ok());
  auto t = pt_.Lookup(0x200123);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->paddr, 0x5123u);
  EXPECT_EQ(t->page_bytes, kPageSize);
  EXPECT_EQ(t->leaf_level, 1);
  EXPECT_EQ(t->levels_walked, 4);
  EXPECT_TRUE(HasProt(t->prot, Prot::kWrite));
}

TEST_F(PageTableTest, LookupMissReturnsNullopt) {
  EXPECT_FALSE(pt_.Lookup(0x1000).has_value());
  ASSERT_TRUE(pt_.MapPage(0x1000, 0x2000, kPageSize, Prot::kRead).ok());
  EXPECT_FALSE(pt_.Lookup(0x2000).has_value());  // adjacent page unmapped
}

TEST_F(PageTableTest, Map2MLeaf) {
  ASSERT_TRUE(pt_.MapPage(2 * kLargePageSize, 4 * kLargePageSize, kLargePageSize,
                          Prot::kRead).ok());
  auto t = pt_.Lookup(2 * kLargePageSize + 0x12345);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->page_bytes, kLargePageSize);
  EXPECT_EQ(t->paddr, 4 * kLargePageSize + 0x12345);
  EXPECT_EQ(t->leaf_level, 2);
  EXPECT_EQ(t->levels_walked, 3);  // large pages walk one level less
}

TEST_F(PageTableTest, Map1GLeaf) {
  ASSERT_TRUE(pt_.MapPage(kHugePageSize, 0, kHugePageSize, Prot::kRead).ok());
  auto t = pt_.Lookup(kHugePageSize + 123);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->page_bytes, kHugePageSize);
  EXPECT_EQ(t->levels_walked, 2);
}

TEST_F(PageTableTest, MisalignedMapRejected) {
  EXPECT_FALSE(pt_.MapPage(0x1001, 0x2000, kPageSize, Prot::kRead).ok());
  EXPECT_FALSE(pt_.MapPage(kPageSize, kPageSize, kLargePageSize, Prot::kRead).ok());
  EXPECT_FALSE(pt_.MapPage(0x1000, 0x2000, 12345, Prot::kRead).ok());
}

TEST_F(PageTableTest, ConflictingPageSizesRejected) {
  ASSERT_TRUE(pt_.MapPage(0, 0, kLargePageSize, Prot::kRead).ok());
  // A 4K map under an existing 2M leaf must fail.
  EXPECT_FALSE(pt_.MapPage(kPageSize, 0x10000, kPageSize, Prot::kRead).ok());
  // And a 2M leaf over existing 4K pages must fail.
  ASSERT_TRUE(pt_.MapPage(kLargePageSize, 0x20000, kPageSize, Prot::kRead).ok());
  EXPECT_FALSE(pt_.MapPage(kLargePageSize, 0, kLargePageSize, Prot::kRead).ok());
}

TEST_F(PageTableTest, UnmapRemovesTranslation) {
  ASSERT_TRUE(pt_.MapPage(0x4000, 0x8000, kPageSize, Prot::kRead).ok());
  ASSERT_TRUE(pt_.UnmapPage(0x4000, kPageSize).ok());
  EXPECT_FALSE(pt_.Lookup(0x4000).has_value());
  EXPECT_FALSE(pt_.UnmapPage(0x4000, kPageSize).ok());
}

TEST_F(PageTableTest, RemapUpdatesInPlace) {
  ASSERT_TRUE(pt_.MapPage(0x4000, 0x8000, kPageSize, Prot::kRead).ok());
  ASSERT_TRUE(pt_.MapPage(0x4000, 0xA000, kPageSize, Prot::kReadWrite).ok());
  auto t = pt_.Lookup(0x4000);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->paddr, 0xA000u);
}

TEST_F(PageTableTest, MappingChargesPerPage) {
  const uint64_t t0 = ctx_.now();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pt_.MapPage(static_cast<Vaddr>(i) * kPageSize, static_cast<Paddr>(i) * kPageSize,
                            kPageSize, Prot::kRead)
                    .ok());
  }
  const uint64_t c64 = ctx_.now() - t0;
  const uint64_t t1 = ctx_.now();
  for (int i = 64; i < 192; ++i) {
    ASSERT_TRUE(pt_.MapPage(static_cast<Vaddr>(i) * kPageSize, static_cast<Paddr>(i) * kPageSize,
                            kPageSize, Prot::kRead)
                    .ok());
  }
  const uint64_t c128 = ctx_.now() - t1;
  // Twice the pages ~ twice the cost (node allocations amortize away).
  EXPECT_GT(c128, c64);
  EXPECT_EQ(ctx_.counters().ptes_written, 192u);
}

TEST_F(PageTableTest, BuildExtentSubtreeAndSplice) {
  // Build a 2 MiB pre-created subtree for a contiguous 1 MiB extent.
  NodeRef subtree = PageTable::BuildExtentSubtree(&ctx_, 1, /*paddr=*/8 * kMiB,
                                                  /*bytes=*/1 * kMiB, Prot::kReadWrite);
  ASSERT_NE(subtree, nullptr);
  EXPECT_EQ(subtree->live_entries, 256);  // 1 MiB / 4 KiB

  const uint64_t ptes_before = ctx_.counters().ptes_written;
  ASSERT_TRUE(pt_.SpliceSubtree(4 * kLargePageSize, 1, subtree).ok());
  // Splice writes no leaf PTEs -- that is the O(1) property.
  EXPECT_EQ(ctx_.counters().ptes_written, ptes_before);
  EXPECT_EQ(ctx_.counters().subtree_splices, 1u);

  auto t = pt_.Lookup(4 * kLargePageSize + 3 * kPageSize + 7);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->paddr, 8 * kMiB + 3 * kPageSize + 7);
  // Beyond the extent within the node: unmapped.
  EXPECT_FALSE(pt_.Lookup(4 * kLargePageSize + 1 * kMiB).has_value());
}

TEST_F(PageTableTest, SpliceRejectsMisalignmentAndOccupiedSlots) {
  NodeRef subtree = PageTable::BuildExtentSubtree(&ctx_, 1, 0, kPageSize, Prot::kRead);
  EXPECT_FALSE(pt_.SpliceSubtree(kPageSize, 1, subtree).ok());  // not 2M-aligned
  ASSERT_TRUE(pt_.SpliceSubtree(kLargePageSize, 1, subtree).ok());
  EXPECT_FALSE(pt_.SpliceSubtree(kLargePageSize, 1, subtree).ok());  // occupied
}

TEST_F(PageTableTest, SharedSubtreeVisibleInTwoTables) {
  PageTable other(&ctx_, 4);
  NodeRef subtree = PageTable::BuildExtentSubtree(&ctx_, 1, 16 * kMiB, 64 * kPageSize,
                                                  Prot::kRead);
  ASSERT_TRUE(pt_.SpliceSubtree(0, 1, subtree).ok());
  ASSERT_TRUE(other.SpliceSubtree(6 * kLargePageSize, 1, subtree).ok());
  auto a = pt_.Lookup(5 * kPageSize);
  auto b = other.Lookup(6 * kLargePageSize + 5 * kPageSize);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->paddr, b->paddr);
  // The node is physically shared, so it is counted once per table but is
  // the same object.
  EXPECT_EQ(pt_.GetSubtree(0, 1).get(), other.GetSubtree(6 * kLargePageSize, 1).get());
}

TEST_F(PageTableTest, UnspliceDetachesSharedNodeWithoutDestroyingIt) {
  NodeRef subtree = PageTable::BuildExtentSubtree(&ctx_, 1, 0, 8 * kPageSize, Prot::kRead);
  ASSERT_TRUE(pt_.SpliceSubtree(0, 1, subtree).ok());
  ASSERT_TRUE(pt_.UnspliceSubtree(0, 1).ok());
  EXPECT_FALSE(pt_.Lookup(0).has_value());
  EXPECT_EQ(subtree->live_entries, 8);  // still intact for the next mapper
}

TEST_F(PageTableTest, ProtectRangeRewritesLeaves) {
  ASSERT_TRUE(pt_.MapPage(0, 0, kPageSize, Prot::kReadWrite).ok());
  ASSERT_TRUE(pt_.MapPage(kPageSize, kPageSize, kPageSize, Prot::kReadWrite).ok());
  ASSERT_TRUE(pt_.ProtectRange(0, 2 * kPageSize, Prot::kRead).ok());
  EXPECT_EQ(pt_.Lookup(0)->prot, Prot::kRead);
  EXPECT_EQ(pt_.Lookup(kPageSize)->prot, Prot::kRead);
}

TEST_F(PageTableTest, CountNodesCountsSharedOnce) {
  NodeRef subtree = PageTable::BuildExtentSubtree(&ctx_, 1, 0, kPageSize, Prot::kRead);
  ASSERT_TRUE(pt_.SpliceSubtree(0, 1, subtree).ok());
  ASSERT_TRUE(pt_.SpliceSubtree(kLargePageSize, 1, subtree).ok());
  // root + PDPT + PD + one shared PT = 4.
  EXPECT_EQ(pt_.CountNodes(), 4u);
}

TEST(PageTable5Level, WalksFiveLevels) {
  SimContext ctx;
  PageTable pt(&ctx, 5);
  EXPECT_EQ(pt.va_limit(), uint64_t{1} << 57);  // 128 PiB of VA
  const Vaddr high = 300 * kTiB;                       // beyond 4-level reach
  ASSERT_TRUE(pt.MapPage(high, 0x1000, kPageSize, Prot::kRead).ok());
  auto t = pt.Lookup(high + 5);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->paddr, 0x1005u);
  EXPECT_EQ(t->levels_walked, 5);
}

TEST(PageTable5Level, FourLevelRejectsHighAddresses) {
  SimContext ctx;
  PageTable pt(&ctx, 4);
  EXPECT_FALSE(pt.MapPage(300 * kTiB, 0x1000, kPageSize, Prot::kRead).ok());
}

}  // namespace
}  // namespace o1mem
