#include "src/sim/counters.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace o1mem {
namespace {

// The compile-time guarantee (sizeof == kFieldCount * 8) is the real check;
// these tests pin the runtime behaviour the X-macro generates.

TEST(EventCountersTest, FieldCountMatchesLayout) {
  static_assert(sizeof(EventCounters) == EventCounters::kFieldCount * sizeof(uint64_t));
  EXPECT_GE(EventCounters::kFieldCount, 39u);
}

TEST(EventCountersTest, ForEachFieldVisitsEveryCounterOnce) {
  EventCounters c;
  c.tlb_l1_hits = 7;
  c.degraded_reads = 11;
  size_t visited = 0;
  uint64_t sum = 0;
  std::vector<std::string> names;
  c.ForEachField([&](const char* name, uint64_t value) {
    ++visited;
    sum += value;
    names.emplace_back(name);
  });
  EXPECT_EQ(visited, EventCounters::kFieldCount);
  EXPECT_EQ(sum, 18u);
  // Declaration order: first and last fields of the macro list.
  EXPECT_EQ(names.front(), "tlb_l1_hits");
  EXPECT_EQ(names.back(), "cma_migrated_pages");
}

TEST(EventCountersTest, DeltaSubtractsEveryField) {
  EventCounters before;
  EventCounters after;
  // Fill every field through the visitor-equivalent: set after = 3, before = 1
  // via memory layout (all fields are uint64_t, asserted above).
  auto* b = reinterpret_cast<uint64_t*>(&before);
  auto* a = reinterpret_cast<uint64_t*>(&after);
  for (size_t i = 0; i < EventCounters::kFieldCount; ++i) {
    b[i] = 1;
    a[i] = 3 + i;
  }
  const EventCounters d = after.Delta(before);
  const auto* dp = reinterpret_cast<const uint64_t*>(&d);
  for (size_t i = 0; i < EventCounters::kFieldCount; ++i) {
    EXPECT_EQ(dp[i], 2 + i) << "field index " << i;
  }
}

}  // namespace
}  // namespace o1mem
