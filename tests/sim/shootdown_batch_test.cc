// Batched + lazy TLB shootdowns (SmpConfig::batched_shootdowns): an unmap on
// one CPU queues invalidations for the others instead of IPI-ing them per
// page. Correctness rule under test: a queued invalidation MUST be applied
// before the remote CPU's next translation in the affected ASID -- there is
// no window in which CPU 1 can read through a stale TLB entry that CPU 0
// already shot down.
#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/sim/mmu.h"

namespace o1mem {
namespace {

Machine MakeMachine(int cpus, bool batched) {
  return Machine(MachineConfig{
      .dram_bytes = 64 * kMiB,
      .nvm_bytes = 64 * kMiB,
      .smp = SmpConfig{.num_cpus = cpus, .batched_shootdowns = batched}});
}

class ShootdownBatchTest : public ::testing::Test {
 protected:
  ShootdownBatchTest()
      : machine_(MakeMachine(2, /*batched=*/true)),
        as_(machine_.CreateAddressSpace()) {}

  Mmu& mmu() { return machine_.mmu(); }
  SimContext& ctx() { return machine_.ctx(); }

  Machine machine_;
  std::unique_ptr<AddressSpace> as_;
};

TEST_F(ShootdownBatchTest, StaleEntryDrainedBeforeRemoteTranslate) {
  constexpr Vaddr kVa = 0x10000;
  ASSERT_TRUE(as_->page_table().MapPage(kVa, 0x2000, kPageSize, Prot::kReadWrite).ok());

  // CPU 1 caches the translation.
  ctx().SetCurrentCpu(1);
  auto t1 = mmu().Translate(*as_, kVa, AccessType::kRead);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->paddr, 0x2000u);

  // CPU 0 remaps the page and shoots it down -- batched, so CPU 1 only gets
  // a queued invalidation, not an immediate IPI.
  ctx().SetCurrentCpu(0);
  ASSERT_TRUE(as_->page_table().UnmapPage(kVa, kPageSize).ok());
  ASSERT_TRUE(as_->page_table().MapPage(kVa, 0x5000, kPageSize, Prot::kReadWrite).ok());
  mmu().ShootdownPage(as_->asid(), kVa);
  EXPECT_EQ(mmu().PendingInvalidations(1), 1u);
  EXPECT_EQ(ctx().counters().shootdown_invals_batched, 1u);

  // CPU 1's next translation in this ASID must drain the queue first: it
  // sees the new frame, never the stale one.
  ctx().SetCurrentCpu(1);
  auto t2 = mmu().Translate(*as_, kVa, AccessType::kRead);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->paddr, 0x5000u);
  EXPECT_EQ(t2->source, TranslationInfo::Source::kPageWalk);
  EXPECT_EQ(ctx().counters().shootdown_translate_drains, 1u);
  EXPECT_EQ(mmu().PendingInvalidations(1), 0u);
}

TEST_F(ShootdownBatchTest, UnaffectedAsidDoesNotDrain) {
  auto other = machine_.CreateAddressSpace();
  constexpr Vaddr kVa = 0x10000;
  ASSERT_TRUE(as_->page_table().MapPage(kVa, 0x2000, kPageSize, Prot::kRead).ok());
  ASSERT_TRUE(other->page_table().MapPage(kVa, 0x7000, kPageSize, Prot::kRead).ok());

  ctx().SetCurrentCpu(0);
  mmu().ShootdownPage(as_->asid(), kVa);
  ASSERT_EQ(mmu().PendingInvalidations(1), 1u);

  // Translating in a different ASID leaves the queue alone (lazy: the
  // invalidation only matters to the ASID it names).
  ctx().SetCurrentCpu(1);
  ASSERT_TRUE(mmu().Translate(*other, kVa, AccessType::kRead).ok());
  EXPECT_EQ(ctx().counters().shootdown_translate_drains, 0u);
  EXPECT_EQ(mmu().PendingInvalidations(1), 1u);
}

TEST_F(ShootdownBatchTest, FlushPendingAppliesQueuedInvalidations) {
  constexpr Vaddr kVa = 0x10000;
  ASSERT_TRUE(as_->page_table().MapPage(kVa, 0x2000, kPageSize, Prot::kReadWrite).ok());
  ctx().SetCurrentCpu(1);
  ASSERT_TRUE(mmu().Translate(*as_, kVa, AccessType::kRead).ok());

  ctx().SetCurrentCpu(0);
  ASSERT_TRUE(as_->page_table().UnmapPage(kVa, kPageSize).ok());
  ASSERT_TRUE(as_->page_table().MapPage(kVa, 0x5000, kPageSize, Prot::kReadWrite).ok());
  mmu().ShootdownPage(as_->asid(), kVa);
  const uint64_t ipis_before = ctx().counters().shootdown_ipis_sent;
  mmu().FlushPending();
  EXPECT_EQ(ctx().counters().shootdown_ipis_sent, ipis_before + 1);
  EXPECT_EQ(mmu().PendingInvalidations(1), 0u);

  // The flush already applied the invalidation; CPU 1 translates fresh with
  // no drain needed.
  ctx().SetCurrentCpu(1);
  auto t = mmu().Translate(*as_, kVa, AccessType::kRead);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->paddr, 0x5000u);
  EXPECT_EQ(ctx().counters().shootdown_translate_drains, 0u);
}

TEST_F(ShootdownBatchTest, LargePageStaleEntryDrained) {
  constexpr Vaddr kVa = 4 * kGiB;  // 2 MiB-aligned
  ASSERT_TRUE(
      as_->page_table().MapPage(kVa, 8 * kMiB, kLargePageSize, Prot::kReadWrite).ok());
  ctx().SetCurrentCpu(1);
  auto t1 = mmu().Translate(*as_, kVa + 12345, AccessType::kRead);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->paddr, 8 * kMiB + 12345);

  ctx().SetCurrentCpu(0);
  ASSERT_TRUE(as_->page_table().UnmapPage(kVa, kLargePageSize).ok());
  ASSERT_TRUE(
      as_->page_table().MapPage(kVa, 16 * kMiB, kLargePageSize, Prot::kReadWrite).ok());
  mmu().ShootdownRange(as_->asid(), kVa, kLargePageSize);
  ASSERT_EQ(mmu().PendingInvalidations(1), 1u);

  ctx().SetCurrentCpu(1);
  auto t2 = mmu().Translate(*as_, kVa + 12345, AccessType::kRead);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->paddr, 16 * kMiB + 12345);
  EXPECT_EQ(ctx().counters().shootdown_translate_drains, 1u);
}

TEST_F(ShootdownBatchTest, WholeAsidShootdownQueuesAndDrains) {
  constexpr Vaddr kVa = 0x10000;
  ASSERT_TRUE(as_->page_table().MapPage(kVa, 0x2000, kPageSize, Prot::kReadWrite).ok());
  ctx().SetCurrentCpu(1);
  ASSERT_TRUE(mmu().Translate(*as_, kVa, AccessType::kRead).ok());

  ctx().SetCurrentCpu(0);
  ASSERT_TRUE(as_->page_table().UnmapPage(kVa, kPageSize).ok());
  ASSERT_TRUE(as_->page_table().MapPage(kVa, 0x5000, kPageSize, Prot::kReadWrite).ok());
  mmu().ShootdownAsid(as_->asid());
  ASSERT_EQ(mmu().PendingInvalidations(1), 1u);

  ctx().SetCurrentCpu(1);
  auto t = mmu().Translate(*as_, kVa, AccessType::kRead);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->paddr, 0x5000u);
  EXPECT_EQ(ctx().counters().shootdown_translate_drains, 1u);
}

// One queued entry per remote per operation, however many pages the range
// spans -- that is the whole amortization argument.
TEST_F(ShootdownBatchTest, RangeShootdownQueuesOneEntryPerRemote) {
  mmu().ShootdownRange(as_->asid(), 0x100000, 64 * kPageSize);
  EXPECT_EQ(mmu().PendingInvalidations(1), 1u);
  EXPECT_EQ(ctx().counters().shootdown_invals_batched, 1u);
  EXPECT_EQ(ctx().counters().tlb_shootdowns, 1u);
}

TEST(ShootdownCostTest, BatchedIsFiveTimesCheaperPerPageAtEightCpus) {
  constexpr uint64_t kPages = 64;
  auto cycles_per_page = [](bool batched) {
    Machine m = MakeMachine(8, batched);
    auto as = m.CreateAddressSpace();
    m.mmu().ShootdownRange(as->asid(), 0x100000, kPages * kPageSize);
    m.mmu().FlushPending();  // batched mode still pays its one-IPI flush
    return static_cast<double>(m.ctx().counters().shootdown_cycles) /
           static_cast<double>(kPages);
  };
  const double eager = cycles_per_page(false);
  const double batched = cycles_per_page(true);
  EXPECT_GE(eager / batched, 5.0) << "eager=" << eager << " batched=" << batched;
}

// With one CPU and batching off, ShootdownRange must charge exactly the
// seed's flat tlb_shootdown_cycles: the SMP machinery is invisible.
TEST(ShootdownCostTest, SingleCpuEagerMatchesSeedCharge) {
  Machine m = MakeMachine(1, /*batched=*/false);
  auto as = m.CreateAddressSpace();
  const uint64_t before = m.ctx().now();
  m.mmu().ShootdownRange(as->asid(), 0x100000, 64 * kPageSize);
  EXPECT_EQ(m.ctx().now() - before, m.ctx().cost().tlb_shootdown_cycles);
  EXPECT_EQ(m.ctx().counters().shootdown_ipis_sent, 0u);
}

}  // namespace
}  // namespace o1mem
