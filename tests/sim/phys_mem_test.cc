#include "src/sim/phys_mem.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/context.h"

namespace o1mem {
namespace {

class PhysMemTest : public ::testing::Test {
 protected:
  SimContext ctx_;
  PhysicalMemory mem_{&ctx_, /*dram_bytes=*/4 * kMiB, /*nvm_bytes=*/4 * kMiB};
};

TEST_F(PhysMemTest, TierBoundaries) {
  EXPECT_EQ(mem_.TierOf(0), MemTier::kDram);
  EXPECT_EQ(mem_.TierOf(4 * kMiB - 1), MemTier::kDram);
  EXPECT_EQ(mem_.TierOf(4 * kMiB), MemTier::kNvm);
  EXPECT_EQ(mem_.nvm_base(), 4 * kMiB);
  EXPECT_EQ(mem_.total_bytes(), 8 * kMiB);
}

TEST_F(PhysMemTest, ReadOfUnwrittenMemoryIsZero) {
  std::vector<uint8_t> buf(100, 0xff);
  ASSERT_TRUE(mem_.Read(123, buf).ok());
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0);
  }
}

TEST_F(PhysMemTest, WriteThenReadRoundTrips) {
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(mem_.Write(kPageSize - 2, data).ok());  // straddles a page boundary
  std::vector<uint8_t> out(5, 0);
  ASSERT_TRUE(mem_.Read(kPageSize - 2, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(PhysMemTest, OutOfRangeRejected) {
  std::vector<uint8_t> buf(16);
  EXPECT_FALSE(mem_.Read(mem_.total_bytes() - 8, buf).ok());
  EXPECT_FALSE(mem_.Write(mem_.total_bytes(), buf).ok());
  EXPECT_FALSE(mem_.Zero(mem_.total_bytes() - 1, 2).ok());
}

TEST_F(PhysMemTest, ZeroClearsData) {
  std::vector<uint8_t> data(kPageSize, 0xab);
  ASSERT_TRUE(mem_.Write(0, data).ok());
  ASSERT_TRUE(mem_.Zero(100, 50).ok());
  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(mem_.Read(0, out).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], (i >= 100 && i < 150) ? 0 : 0xab) << i;
  }
  EXPECT_EQ(ctx_.counters().bytes_zeroed, 50u);
}

TEST_F(PhysMemTest, ZeroOfWholeUntouchedPageStaysUnmaterialized) {
  const uint64_t before = mem_.materialized_pages();
  ASSERT_TRUE(mem_.Zero(64 * kPageSize, 4 * kPageSize).ok());
  EXPECT_EQ(mem_.materialized_pages(), before);
}

TEST_F(PhysMemTest, CopyMovesBytesAndCountsThem) {
  std::vector<uint8_t> data = {9, 8, 7, 6};
  ASSERT_TRUE(mem_.Write(10, data).ok());
  ASSERT_TRUE(mem_.Copy(2 * kPageSize + 1, 10, 4).ok());
  std::vector<uint8_t> out(4);
  ASSERT_TRUE(mem_.Read(2 * kPageSize + 1, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(ctx_.counters().bytes_copied, 4u);
}

TEST_F(PhysMemTest, CopyFromUnmaterializedSourceZeroesDestination) {
  std::vector<uint8_t> data(64, 0x5a);
  ASSERT_TRUE(mem_.Write(0, data).ok());
  ASSERT_TRUE(mem_.Copy(0, 512 * kPageSize, 64).ok());
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(mem_.Read(0, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST_F(PhysMemTest, BulkCostsChargeDramCheaperThanNvmWrite) {
  std::vector<uint8_t> data(kPageSize, 1);
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(mem_.Write(0, data).ok());
  const uint64_t dram_cost = ctx_.now() - t0;
  const uint64_t t1 = ctx_.now();
  ASSERT_TRUE(mem_.Write(mem_.nvm_base(), data).ok());
  const uint64_t nvm_cost = ctx_.now() - t1;
  EXPECT_GT(nvm_cost, dram_cost);
}

TEST_F(PhysMemTest, DropVolatileErasesDramKeepsNvm) {
  std::vector<uint8_t> data = {42};
  ASSERT_TRUE(mem_.Write(0, data).ok());
  ASSERT_TRUE(mem_.Write(mem_.nvm_base(), data).ok());
  mem_.DropVolatile();
  EXPECT_EQ(mem_.PeekByte(0), 0);
  EXPECT_EQ(mem_.PeekByte(mem_.nvm_base()), 42);
}

TEST_F(PhysMemTest, PeekPokeUncharged) {
  const uint64_t t0 = ctx_.now();
  mem_.PokeByte(77, 5);
  EXPECT_EQ(mem_.PeekByte(77), 5);
  EXPECT_EQ(ctx_.now(), t0);
}

}  // namespace
}  // namespace o1mem
