#include "src/sim/range_table.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

TEST(RangeTableTest, InsertAndLookup) {
  RangeTable rt;
  ASSERT_TRUE(rt.Insert({.vbase = 0x10000, .bytes = kMiB, .pbase = 0x400000,
                         .prot = Prot::kReadWrite})
                  .ok());
  auto e = rt.Lookup(0x10000 + 1234);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->pbase + (0x10000u + 1234 - e->vbase), 0x400000u + 1234);
  EXPECT_FALSE(rt.Lookup(0x10000 + kMiB).has_value());
  EXPECT_FALSE(rt.Lookup(0xFFFF).has_value());
}

TEST(RangeTableTest, RejectsOverlaps) {
  RangeTable rt;
  ASSERT_TRUE(rt.Insert({.vbase = kMiB, .bytes = kMiB, .pbase = 0, .prot = Prot::kRead}).ok());
  // Overlapping from below.
  EXPECT_FALSE(rt.Insert({.vbase = kMiB / 2, .bytes = kMiB, .pbase = 0,
                          .prot = Prot::kRead})
                   .ok());
  // Overlapping from above.
  EXPECT_FALSE(rt.Insert({.vbase = kMiB + kPageSize, .bytes = kPageSize, .pbase = 0,
                          .prot = Prot::kRead})
                   .ok());
  // Exactly adjacent on both sides is fine.
  EXPECT_TRUE(rt.Insert({.vbase = 0, .bytes = kMiB, .pbase = 0, .prot = Prot::kRead}).ok());
  EXPECT_TRUE(
      rt.Insert({.vbase = 2 * kMiB, .bytes = kMiB, .pbase = 0, .prot = Prot::kRead}).ok());
}

TEST(RangeTableTest, RejectsEmptyAndWrappingRanges) {
  RangeTable rt;
  EXPECT_FALSE(rt.Insert({.vbase = 0, .bytes = 0, .pbase = 0, .prot = Prot::kRead}).ok());
  EXPECT_FALSE(rt.Insert({.vbase = UINT64_MAX - 10, .bytes = 100, .pbase = 0,
                          .prot = Prot::kRead})
                   .ok());
}

TEST(RangeTableTest, RemoveIsExactBaseMatch) {
  RangeTable rt;
  ASSERT_TRUE(rt.Insert({.vbase = kMiB, .bytes = kMiB, .pbase = 0, .prot = Prot::kRead}).ok());
  EXPECT_FALSE(rt.Remove(kMiB + 1).ok());
  EXPECT_TRUE(rt.Remove(kMiB).ok());
  EXPECT_FALSE(rt.Lookup(kMiB).has_value());
  EXPECT_EQ(rt.size(), 0u);
}

TEST(RangeTableTest, ProtectWholeRange) {
  RangeTable rt;
  ASSERT_TRUE(rt.Insert({.vbase = 0, .bytes = kGiB, .pbase = 0, .prot = Prot::kReadWrite}).ok());
  ASSERT_TRUE(rt.Protect(0, Prot::kRead).ok());
  EXPECT_EQ(rt.Lookup(kGiB - 1)->prot, Prot::kRead);
  EXPECT_FALSE(rt.Protect(12345, Prot::kRead).ok());
}

TEST(RangeTableTest, InsertCostIndependentOfRangeLength) {
  // Structural sanity: a one-page range and a 1 TiB range are both one entry.
  RangeTable rt;
  ASSERT_TRUE(rt.Insert({.vbase = 0, .bytes = kPageSize, .pbase = 0, .prot = Prot::kRead}).ok());
  ASSERT_TRUE(
      rt.Insert({.vbase = kTiB, .bytes = kTiB, .pbase = kPageSize, .prot = Prot::kRead}).ok());
  EXPECT_EQ(rt.size(), 2u);
  EXPECT_TRUE(rt.Lookup(kTiB + kTiB - 1).has_value());
}

TEST(RangeTableTest, EntriesReturnedSorted) {
  RangeTable rt;
  ASSERT_TRUE(rt.Insert({.vbase = 5 * kMiB, .bytes = kMiB, .pbase = 0, .prot = Prot::kRead}).ok());
  ASSERT_TRUE(rt.Insert({.vbase = kMiB, .bytes = kMiB, .pbase = 0, .prot = Prot::kRead}).ok());
  auto entries = rt.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].vbase, entries[1].vbase);
}

}  // namespace
}  // namespace o1mem
