// Level-2 (1 GiB) subtree splicing: gigabyte-class files map with one store
// per GiB instead of one per 2 MiB window.
#include <gtest/gtest.h>

#include "src/fom/fom_manager.h"

namespace o1mem {
namespace {

class L2SpliceTest : public ::testing::Test {
 protected:
  L2SpliceTest()
      : machine_(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 6 * kGiB}),
        pmfs_(&machine_, machine_.phys().nvm_base(), 6 * kGiB),
        fom_(&machine_, &pmfs_),
        proc_(fom_.CreateProcess()) {}

  Machine machine_;
  Pmfs pmfs_;
  FomManager fom_;
  std::unique_ptr<FomProcess> proc_;
};

TEST_F(L2SpliceTest, TablesGrowL2WrappersAtGibibyte) {
  auto small = fom_.CreateSegment("/s", 512 * kMiB);
  ASSERT_TRUE(small.ok());
  auto big = fom_.CreateSegment("/b", 2 * kGiB + 4 * kMiB);
  ASSERT_TRUE(big.ok());
  // 2 GiB + 4 MiB = two full L2 groups + two L1 windows; the small file has
  // no L2 wrappers.
  EXPECT_EQ(fom_.precreated_node_count(),
            2 * (256u /*small L1*/ + 0) + 2 * (1026u /*big L1*/ + 2 /*big L2*/));
}

TEST_F(L2SpliceTest, GigabyteMapUsesOneStorePerGib) {
  auto seg = fom_.CreateSegment("/g", 2 * kGiB + 4 * kMiB);
  ASSERT_TRUE(seg.ok());
  const uint64_t splices_before = machine_.ctx().counters().subtree_splices;
  auto vaddr = fom_.Map(*proc_, *seg, Prot::kReadWrite,
                        MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(vaddr.ok());
  EXPECT_TRUE(IsAligned(*vaddr, kGiB));
  // 2 level-2 splices + 2 level-1 windows for the 4 MiB tail.
  EXPECT_EQ(machine_.ctx().counters().subtree_splices, splices_before + 4);

  // Translation works across every region: an L2-covered byte, a window
  // boundary inside an L2 group, and the L1 tail.
  std::vector<uint8_t> data{1, 2, 3};
  for (uint64_t off : {uint64_t{5}, kGiB - 3, kGiB + 512 * kMiB, 2 * kGiB + kMiB}) {
    ASSERT_TRUE(machine_.mmu().WriteVirt(proc_->address_space(), *vaddr + off, data).ok())
        << off;
    std::vector<uint8_t> out(3);
    ASSERT_TRUE(machine_.mmu().ReadVirt(proc_->address_space(), *vaddr + off, out).ok());
    EXPECT_EQ(out, data) << off;
  }
}

TEST_F(L2SpliceTest, MapCostPerGibIsTiny) {
  auto seg = fom_.CreateSegment("/cost", 4 * kGiB);
  ASSERT_TRUE(seg.ok());
  const uint64_t t0 = machine_.ctx().now();
  ASSERT_TRUE(fom_.Map(*proc_, *seg, Prot::kReadWrite,
                       MapOptions{.mechanism = MapMechanism::kPtSplice})
                  .ok());
  // 4 splices + constant bookkeeping: well under 2 us for 4 GiB.
  EXPECT_LT(machine_.ctx().clock().CyclesToUs(machine_.ctx().now() - t0), 2.0);
}

TEST_F(L2SpliceTest, UnmapAndProtectHandleMixedLevels) {
  auto seg = fom_.CreateSegment("/mix", kGiB + 8 * kMiB);
  ASSERT_TRUE(seg.ok());
  auto vaddr = fom_.Map(*proc_, *seg, Prot::kReadWrite,
                        MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(vaddr.ok());
  // Protect flips both the L2 group and the L1 tail windows.
  ASSERT_TRUE(fom_.Protect(*proc_, *vaddr, Prot::kRead).ok());
  EXPECT_FALSE(machine_.mmu()
                   .Touch(proc_->address_space(), *vaddr + 5, 1, AccessType::kWrite)
                   .ok());
  EXPECT_FALSE(machine_.mmu()
                   .Touch(proc_->address_space(), *vaddr + kGiB + 5, 1, AccessType::kWrite)
                   .ok());
  EXPECT_TRUE(machine_.mmu()
                  .Touch(proc_->address_space(), *vaddr + kGiB + 5, 1, AccessType::kRead)
                  .ok());
  ASSERT_TRUE(fom_.Unmap(*proc_, *vaddr).ok());
  EXPECT_FALSE(
      machine_.mmu().Touch(proc_->address_space(), *vaddr, 1, AccessType::kRead).ok());
  EXPECT_FALSE(machine_.mmu()
                   .Touch(proc_->address_space(), *vaddr + kGiB + 5, 1, AccessType::kRead)
                   .ok());
}

TEST_F(L2SpliceTest, TwoProcessesShareL2Nodes) {
  auto seg = fom_.CreateSegment("/share", kGiB);
  ASSERT_TRUE(seg.ok());
  auto proc2 = fom_.CreateProcess();
  auto v1 = fom_.Map(*proc_, *seg, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPtSplice});
  auto v2 = fom_.Map(*proc2, *seg, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_EQ(proc_->address_space().page_table().GetSubtree(*v1, 2).get(),
            proc2->address_space().page_table().GetSubtree(*v2, 2).get());
}

}  // namespace
}  // namespace o1mem
