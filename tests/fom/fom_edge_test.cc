// Edge cases of the file-only memory manager: fragmented files under every
// mechanism, pressure interplay with mapped files, config variants, rollback
// paths.
#include <gtest/gtest.h>

#include "src/fom/fom_manager.h"

namespace o1mem {
namespace {

class FomEdgeTest : public ::testing::Test {
 protected:
  FomEdgeTest()
      : machine_(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 512 * kMiB}),
        pmfs_(&machine_, machine_.phys().nvm_base(), 512 * kMiB),
        fom_(&machine_, &pmfs_),
        proc_(fom_.CreateProcess()) {}

  // Creates a file guaranteed to have >= 2 extents by fragmenting first.
  InodeId MakeFragmented(uint64_t bytes) {
    auto f1 = fom_.CreateSegment("/frag/fill1", 200 * kMiB);
    auto f2 = fom_.CreateSegment("/frag/fill2", 200 * kMiB);
    O1_CHECK(f1.ok() && f2.ok());
    O1_CHECK(fom_.DeleteSegment("/frag/fill1").ok());
    auto target = fom_.CreateSegment("/frag/target", bytes);
    O1_CHECK(target.ok());
    O1_CHECK(pmfs_.Stat(*target)->extent_count >= 2);
    return *target;
  }

  Machine machine_;
  Pmfs pmfs_;
  FomManager fom_;
  std::unique_ptr<FomProcess> proc_;
};

TEST_F(FomEdgeTest, FragmentedFileMapsCorrectlyViaRanges) {
  const InodeId inode = MakeFragmented(210 * kMiB);
  auto vaddr = fom_.Map(*proc_, inode, Prot::kReadWrite,
                        MapOptions{.mechanism = MapMechanism::kRangeTable});
  ASSERT_TRUE(vaddr.ok());
  const auto extents = pmfs_.Extents(inode).value();
  EXPECT_EQ(proc_->address_space().range_table().size(), extents.size());
  // Write across the extent seam and read back.
  const uint64_t seam = extents.front().bytes;
  std::vector<uint8_t> data(4096, 0x6e);
  ASSERT_TRUE(machine_.mmu()
                  .WriteVirt(proc_->address_space(), *vaddr + seam - 2048, data)
                  .ok());
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(machine_.mmu()
                  .ReadVirt(proc_->address_space(), *vaddr + seam - 2048, out)
                  .ok());
  EXPECT_EQ(out, data);
  // Unmap removes every range entry.
  ASSERT_TRUE(fom_.Unmap(*proc_, *vaddr).ok());
  EXPECT_EQ(proc_->address_space().range_table().size(), 0u);
}

TEST_F(FomEdgeTest, FragmentedFileMapsCorrectlyViaSplice) {
  const InodeId inode = MakeFragmented(210 * kMiB);
  auto vaddr = fom_.Map(*proc_, inode, Prot::kReadWrite,
                        MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(vaddr.ok());
  const auto extents = pmfs_.Extents(inode).value();
  const uint64_t seam = extents.front().bytes;
  // Translate across the seam: two adjacent virtual pages hit two extents.
  auto before = machine_.mmu().Translate(proc_->address_space(), *vaddr + seam - kPageSize,
                                         AccessType::kRead);
  auto after =
      machine_.mmu().Translate(proc_->address_space(), *vaddr + seam, AccessType::kRead);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(before->paddr, extents.front().paddr + seam - kPageSize);
  EXPECT_EQ(after->paddr, extents[1].paddr);
}

TEST_F(FomEdgeTest, PressureSkipsMappedDiscardables) {
  auto mapped = fom_.CreateSegment(
      "/cache/mapped", 32 * kMiB, SegmentOptions{.flags = FileFlags{.discardable = true}});
  auto idle = fom_.CreateSegment(
      "/cache/idle", 32 * kMiB, SegmentOptions{.flags = FileFlags{.discardable = true}});
  ASSERT_TRUE(mapped.ok() && idle.ok());
  auto vaddr = fom_.Map(*proc_, *mapped, Prot::kRead);
  ASSERT_TRUE(vaddr.ok());
  auto released = fom_.HandlePressure(16 * kMiB);
  ASSERT_TRUE(released.ok());
  EXPECT_GE(released.value(), 16 * kMiB);
  EXPECT_TRUE(pmfs_.LookupPath("/cache/mapped").ok());   // in use: spared
  EXPECT_FALSE(pmfs_.LookupPath("/cache/idle").ok());    // idle: deleted
  // The mapping still works.
  EXPECT_TRUE(machine_.mmu()
                  .Touch(proc_->address_space(), *vaddr, 1, AccessType::kRead)
                  .ok());
}

TEST_F(FomEdgeTest, PressureWithNothingDiscardableReleasesZero) {
  ASSERT_TRUE(fom_.CreateSegment("/data/vital", 32 * kMiB).ok());
  auto released = fom_.HandlePressure(kMiB);
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(released.value(), 0u);
}

TEST_F(FomEdgeTest, LazyTableBuildOnFirstSpliceMap) {
  FomConfig config;
  config.precreate_page_tables = false;
  FomManager lazy_fom(&machine_, &pmfs_, config);
  auto proc = lazy_fom.CreateProcess();
  const uint64_t nodes_before = machine_.ctx().counters().pt_nodes_allocated;
  auto inode = lazy_fom.CreateSegment("/lazy/seg", 8 * kMiB);
  ASSERT_TRUE(inode.ok());
  // No tables were built at creation.
  EXPECT_EQ(machine_.ctx().counters().pt_nodes_allocated, nodes_before);
  EXPECT_EQ(lazy_fom.precreated_node_count(), 0u);
  // First splice map builds them; range map would not need them at all.
  auto vaddr = lazy_fom.Map(*proc, *inode, Prot::kReadWrite,
                            MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(vaddr.ok());
  EXPECT_EQ(lazy_fom.precreated_node_count(), 2 * 4u);  // RO+RW, 4 windows
}

TEST_F(FomEdgeTest, RangeMapNeedsNoTablesEver) {
  FomConfig config;
  config.precreate_page_tables = false;
  FomManager lazy_fom(&machine_, &pmfs_, config);
  auto proc = lazy_fom.CreateProcess();
  auto inode = lazy_fom.CreateSegment("/lazy/r", 8 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto vaddr = lazy_fom.Map(*proc, *inode, Prot::kRead,
                            MapOptions{.mechanism = MapMechanism::kRangeTable});
  ASSERT_TRUE(vaddr.ok());
  EXPECT_EQ(lazy_fom.precreated_node_count(), 0u);
}

TEST_F(FomEdgeTest, DoubleMapSameFileInOneProcess) {
  auto inode = fom_.CreateSegment("/dup/seg", 4 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto v1 = fom_.Map(*proc_, *inode, Prot::kReadWrite);
  auto v2 = fom_.Map(*proc_, *inode, Prot::kRead);
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_NE(*v1, *v2);
  EXPECT_EQ(pmfs_.Stat(*inode)->map_count, 2u);
  // Aliases see each other's data.
  std::vector<uint8_t> data{1, 2, 3};
  ASSERT_TRUE(machine_.mmu().WriteVirt(proc_->address_space(), *v1 + 100, data).ok());
  std::vector<uint8_t> out(3);
  ASSERT_TRUE(machine_.mmu().ReadVirt(proc_->address_space(), *v2 + 100, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(fom_.Unmap(*proc_, *v1).ok());
  ASSERT_TRUE(fom_.Unmap(*proc_, *v2).ok());
  EXPECT_EQ(pmfs_.Stat(*inode)->map_count, 0u);
}

TEST_F(FomEdgeTest, ProtectByNonBaseAddressRejected) {
  auto inode = fom_.CreateSegment("/p/seg", 4 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto vaddr = fom_.Map(*proc_, *inode, Prot::kReadWrite);
  ASSERT_TRUE(vaddr.ok());
  EXPECT_FALSE(fom_.Protect(*proc_, *vaddr + kPageSize, Prot::kRead).ok());
  EXPECT_TRUE(fom_.Protect(*proc_, *vaddr, Prot::kRead).ok());
}

TEST_F(FomEdgeTest, SpliceFixedVaddrMisalignmentRejected) {
  auto inode = fom_.CreateSegment("/a/seg", 4 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto bad = fom_.Map(*proc_, *inode, Prot::kRead,
                      MapOptions{.mechanism = MapMechanism::kPtSplice,
                                 .fixed_vaddr = fom_.config().map_region_base + kPageSize});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FomEdgeTest, ExitProcessIdempotentOnEmptyProcess) {
  auto fresh = fom_.CreateProcess();
  EXPECT_TRUE(fom_.ExitProcess(*fresh).ok());
  EXPECT_TRUE(fom_.ExitProcess(*fresh).ok());
}

}  // namespace
}  // namespace o1mem
