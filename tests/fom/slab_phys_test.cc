#include "src/fom/slab_phys.h"

#include <gtest/gtest.h>

#include <set>

namespace o1mem {
namespace {

class SlabTest : public ::testing::Test {
 protected:
  SlabTest() : bitmap_(&ctx_, (64 * kMiB) >> kPageShift), slab_(&ctx_, &bitmap_, 0) {}

  SimContext ctx_;
  BlockBitmap bitmap_;
  SlabPhysAllocator slab_;
};

TEST_F(SlabTest, ClassSelection) {
  EXPECT_EQ(SlabPhysAllocator::ClassFor(1), 0);
  EXPECT_EQ(SlabPhysAllocator::ClassFor(kPageSize), 0);
  EXPECT_EQ(SlabPhysAllocator::ClassFor(kPageSize + 1), 1);
  EXPECT_EQ(SlabPhysAllocator::ClassFor(64 * kKiB), 4);
  EXPECT_EQ(SlabPhysAllocator::ClassFor(2 * kMiB), 9);
  EXPECT_EQ(SlabPhysAllocator::ClassFor(2 * kMiB + 1), SlabPhysAllocator::kClassCount);
}

TEST_F(SlabTest, AllocFreeRoundTrip) {
  auto a = slab_.Alloc(kPageSize);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(slab_.live_objects(), 1u);
  ASSERT_TRUE(slab_.Free(a.value()).ok());
  EXPECT_EQ(slab_.live_objects(), 0u);
  EXPECT_FALSE(slab_.Free(a.value()).ok());  // double free
}

TEST_F(SlabTest, ObjectsWithinClassDoNotOverlap) {
  std::set<Paddr> seen;
  for (int i = 0; i < 600; ++i) {  // more than one slab of 4K objects
    auto p = slab_.Alloc(kPageSize);
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(seen.insert(p.value()).second);
  }
  EXPECT_GE(slab_.slab_count(), 2u);
}

TEST_F(SlabTest, FreeListReuseIsO1NoBitmapScan) {
  auto p = slab_.Alloc(16 * kKiB);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(slab_.Free(p.value()).ok());
  // Re-allocation from the free list must not touch the bitmap.
  const uint64_t free_blocks = bitmap_.free_blocks();
  auto q = slab_.Alloc(16 * kKiB);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(bitmap_.free_blocks(), free_blocks);
  EXPECT_EQ(q.value(), p.value());
}

TEST_F(SlabTest, CachedAllocIsCheaperThanColdExtentAlloc) {
  auto warmup = slab_.Alloc(kPageSize);
  ASSERT_TRUE(warmup.ok());
  ASSERT_TRUE(slab_.Free(warmup.value()).ok());
  const uint64_t t0 = ctx_.now();
  auto cached = slab_.Alloc(kPageSize);
  const uint64_t slab_cost = ctx_.now() - t0;
  ASSERT_TRUE(cached.ok());
  const uint64_t t1 = ctx_.now();
  ASSERT_TRUE(bitmap_.AllocExtent(1).ok());
  const uint64_t bitmap_cost = ctx_.now() - t1;
  EXPECT_LT(slab_cost, bitmap_cost);
}

TEST_F(SlabTest, LargeObjectsBypassSlabs) {
  auto big = slab_.Alloc(8 * kMiB);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(slab_.slab_count(), 0u);
  ASSERT_TRUE(slab_.Free(big.value()).ok());
  EXPECT_EQ(bitmap_.free_blocks(), (64 * kMiB) >> kPageShift);
}

TEST_F(SlabTest, ReleaseEmptySlabsReturnsMemory) {
  std::vector<Paddr> objs;
  for (int i = 0; i < 512; ++i) {
    auto p = slab_.Alloc(kPageSize);
    ASSERT_TRUE(p.ok());
    objs.push_back(p.value());
  }
  for (Paddr p : objs) {
    ASSERT_TRUE(slab_.Free(p).ok());
  }
  ASSERT_TRUE(slab_.ReleaseEmptySlabs().ok());
  EXPECT_EQ(slab_.slab_count(), 0u);
  EXPECT_EQ(bitmap_.free_blocks(), (64 * kMiB) >> kPageShift);
}

TEST_F(SlabTest, ReleaseKeepsLiveSlabs) {
  auto live = slab_.Alloc(kPageSize);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(slab_.ReleaseEmptySlabs().ok());
  EXPECT_EQ(slab_.slab_count(), 1u);
  ASSERT_TRUE(slab_.Free(live.value()).ok());
}

TEST_F(SlabTest, ZeroByteAllocRejected) {
  EXPECT_FALSE(slab_.Alloc(0).ok());
}

}  // namespace
}  // namespace o1mem
