// NVM table sidecars: a persistent FOM segment's pre-created page tables
// are serialized into a CRC-protected PMFS file and rehydrated after a
// crash without per-PTE work. These tests attack the sidecar -- bit flips,
// truncation, media poison, deletion -- and require the manager to fall
// back to a transparent rebuild, never to abort or serve a stale mapping.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/os/system.h"

namespace o1mem {
namespace {

class FomSidecarTest : public ::testing::Test {
 protected:
  FomSidecarTest() {
    SystemConfig config;
    config.machine.dram_bytes = 32 * kMiB;
    config.machine.nvm_bytes = 64 * kMiB;
    sys_ = std::make_unique<System>(config);
  }

  // Creates a persistent segment, fills it through a DAX mapping, and
  // returns its inode. Pre-created tables (and the sidecar) are built at
  // creation time.
  InodeId MakeSegment(const std::string& path, uint64_t bytes) {
    auto seg = sys_->fom().CreateSegment(
        path, bytes, SegmentOptions{.flags = {.persistent = true}});
    O1_CHECK(seg.ok());
    auto launched = sys_->Launch(Backend::kFom);
    O1_CHECK(launched.ok());
    Process* proc = *launched;
    auto va = sys_->fom().Map(proc->fom(), *seg, Prot::kReadWrite);
    O1_CHECK(va.ok());
    data_.resize(bytes);
    for (uint64_t i = 0; i < bytes; ++i) {
      data_[i] = static_cast<uint8_t>(i * 131 + 7);
    }
    O1_CHECK(sys_->UserWrite(*proc, *va, data_).ok());
    O1_CHECK(sys_->UserFlush(*proc, *va, bytes).ok());
    O1_CHECK(sys_->Exit(proc).ok());
    return *seg;
  }

  InodeId SidecarInode(InodeId segment) {
    auto id = sys_->pmfs().LookupPath("/.fom/tables/" + std::to_string(segment));
    O1_CHECK(id.ok());
    return *id;
  }

  // Crash, then remap the segment with kPtSplice and check its contents.
  void CrashAndVerify(const std::string& path) {
    ASSERT_TRUE(sys_->Crash().ok());
    auto seg = sys_->fom().OpenSegment(path);
    ASSERT_TRUE(seg.ok()) << path << " lost";
    auto launched = sys_->Launch(Backend::kFom);
    ASSERT_TRUE(launched.ok());
    Process* proc = *launched;
    auto va = sys_->fom().Map(proc->fom(), *seg, Prot::kRead,
                              MapOptions{.mechanism = MapMechanism::kPtSplice});
    ASSERT_TRUE(va.ok());
    std::vector<uint8_t> out(data_.size());
    ASSERT_TRUE(sys_->UserRead(*proc, *va, out).ok());
    ASSERT_EQ(out, data_) << path << " corrupted";
    ASSERT_TRUE(sys_->fom().Unmap(proc->fom(), *va).ok());
    ASSERT_TRUE(sys_->Exit(proc).ok());
  }

  std::unique_ptr<System> sys_;
  std::vector<uint8_t> data_;
};

TEST_F(FomSidecarTest, SidecarExistsAndRehydratesWithoutTableBuilds) {
  const InodeId seg = MakeSegment("/seg", 8 * kPageSize);
  ASSERT_TRUE(sys_->pmfs().LookupPath("/.fom/tables/" + std::to_string(seg)).ok());
  ASSERT_TRUE(sys_->Crash().ok());

  auto launched = sys_->Launch(Backend::kFom);
  ASSERT_TRUE(launched.ok());
  Process* proc = *launched;
  auto reopened = sys_->fom().OpenSegment("/seg");
  ASSERT_TRUE(reopened.ok());
  // Rehydration from the sidecar must not rebuild tables: the first map
  // after reboot allocates at most the process's own spine down to the
  // splice point, never the segment's leaf nodes or PTEs. (Launch above
  // rebuilt its own volatile segments' tables, so measure from here.)
  const uint64_t nodes_before = sys_->ctx().counters().pt_nodes_allocated;
  auto va = sys_->fom().Map(proc->fom(), *reopened, Prot::kRead,
                            MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(va.ok());
  EXPECT_LE(sys_->ctx().counters().pt_nodes_allocated, nodes_before + 3);
  std::vector<uint8_t> out(data_.size());
  ASSERT_TRUE(sys_->UserRead(*proc, *va, out).ok());
  EXPECT_EQ(out, data_);
}

TEST_F(FomSidecarTest, CorruptSidecarIsRebuiltTransparently) {
  const InodeId seg = MakeSegment("/seg", 8 * kPageSize);
  // Flip bytes in the sidecar's paddr payload through the file API: the CRC
  // must catch it at recovery and trigger a rebuild, not a bad mapping.
  std::vector<uint8_t> junk(16, 0xFF);
  ASSERT_TRUE(sys_->pmfs().WriteAt(SidecarInode(seg), 48, junk).ok());
  CrashAndVerify("/seg");
}

TEST_F(FomSidecarTest, CorruptHeaderIsRebuiltTransparently) {
  const InodeId seg = MakeSegment("/seg", 4 * kPageSize);
  std::vector<uint8_t> junk(8, 0x00);
  ASSERT_TRUE(sys_->pmfs().WriteAt(SidecarInode(seg), 0, junk).ok());  // magic
  CrashAndVerify("/seg");
}

TEST_F(FomSidecarTest, TruncatedSidecarIsRebuiltTransparently) {
  const InodeId seg = MakeSegment("/seg", 8 * kPageSize);
  ASSERT_TRUE(sys_->pmfs().Resize(SidecarInode(seg), 24).ok());
  CrashAndVerify("/seg");
}

TEST_F(FomSidecarTest, PoisonedSidecarIsRebuiltTransparently) {
  const InodeId seg = MakeSegment("/seg", 8 * kPageSize);
  auto extents = sys_->pmfs().Extents(SidecarInode(seg));
  ASSERT_TRUE(extents.ok());
  ASSERT_FALSE(extents->empty());
  // Media poison on the sidecar's first line: the recovery read fails with
  // kMediaError, which must fall back to a rebuild -- never an abort.
  sys_->machine().fault_injector().MarkUnreadable(extents->front().paddr,
                                                  /*sticky=*/false);
  CrashAndVerify("/seg");
}

TEST_F(FomSidecarTest, BitFlipInSidecarIsRebuiltTransparently) {
  const InodeId seg = MakeSegment("/seg", 8 * kPageSize);
  auto extents = sys_->pmfs().Extents(SidecarInode(seg));
  ASSERT_TRUE(extents.ok());
  // Silent corruption (no media error): only the CRC can catch this one.
  sys_->machine().fault_injector().FlipBit(extents->front().paddr + 45, 2);
  CrashAndVerify("/seg");
}

TEST_F(FomSidecarTest, MissingSidecarIsRebuiltTransparently) {
  const InodeId seg = MakeSegment("/seg", 8 * kPageSize);
  ASSERT_TRUE(sys_->pmfs().Unlink("/.fom/tables/" + std::to_string(seg)).ok());
  CrashAndVerify("/seg");
}

TEST_F(FomSidecarTest, OrphanSidecarIsCleanedUpAtRecovery) {
  // A sidecar whose segment no longer exists (crash between segment unlink
  // and sidecar unlink) must be garbage-collected at recovery.
  MakeSegment("/seg", 4 * kPageSize);
  auto orphan = sys_->pmfs().Create("/.fom/tables/9999",
                                    FileFlags{.persistent = true});
  ASSERT_TRUE(orphan.ok());
  ASSERT_TRUE(sys_->Crash().ok());
  EXPECT_FALSE(sys_->pmfs().LookupPath("/.fom/tables/9999").ok());
  EXPECT_TRUE(sys_->pmfs().LookupPath("/seg").ok());
}

TEST_F(FomSidecarTest, DeleteSegmentRemovesItsSidecar) {
  const InodeId seg = MakeSegment("/seg", 4 * kPageSize);
  const std::string sidecar = "/.fom/tables/" + std::to_string(seg);
  ASSERT_TRUE(sys_->pmfs().LookupPath(sidecar).ok());
  ASSERT_TRUE(sys_->fom().DeleteSegment("/seg").ok());
  EXPECT_FALSE(sys_->pmfs().LookupPath(sidecar).ok());
}

TEST_F(FomSidecarTest, StaleSidecarAfterReallocationIsRejected) {
  // Regrow the segment after the sidecar was written: the stored paddrs no
  // longer match the extent tree, so rehydration must reject the sidecar
  // and rebuild rather than map freed frames.
  const InodeId seg = MakeSegment("/seg", 4 * kPageSize);
  ASSERT_TRUE(sys_->pmfs().Resize(seg, 8 * kPageSize).ok());
  ASSERT_TRUE(sys_->Crash().ok());
  auto reopened = sys_->fom().OpenSegment("/seg");
  ASSERT_TRUE(reopened.ok());
  auto launched = sys_->Launch(Backend::kFom);
  ASSERT_TRUE(launched.ok());
  Process* proc = *launched;
  auto va = sys_->fom().Map(proc->fom(), *reopened, Prot::kRead,
                            MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(va.ok());
  std::vector<uint8_t> out(data_.size());
  ASSERT_TRUE(sys_->UserRead(*proc, *va, out).ok());
  EXPECT_EQ(out, data_);  // original prefix intact through the new tables
}

}  // namespace
}  // namespace o1mem
