#include "src/fom/precreated_tables.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

class PrecreatedTest : public ::testing::Test {
 protected:
  SimContext ctx_;
  PhysicalMemory phys_{&ctx_, 16 * kMiB, 64 * kMiB};
};

TEST_F(PrecreatedTest, SingleExtentFileBuildsCorrectLeaves) {
  const std::vector<FileExtentView> extents = {
      {.file_offset = 0, .paddr = 32 * kMiB, .bytes = 4 * kMiB}};
  auto tables = BuildPrecreatedTables(&ctx_, &phys_, extents, 4 * kMiB, false);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->window_count(), 2u);  // 4 MiB / 2 MiB
  EXPECT_EQ(tables->node_count(), 4u);    // RO + RW
  // Spot check: offset 3 MiB lives in window 1 at node offset 1 MiB.
  auto t = PageTable::LookupInSubtree(tables->read_write[1], 1, kMiB + 123);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->paddr, 32 * kMiB + 3 * kMiB + 123);
  EXPECT_TRUE(HasProt(t->prot, Prot::kWrite));
  // RO set has the same translation but read-only.
  auto ro = PageTable::LookupInSubtree(tables->read_only[1], 1, kMiB + 123);
  ASSERT_TRUE(ro.has_value());
  EXPECT_EQ(ro->paddr, t->paddr);
  EXPECT_FALSE(HasProt(ro->prot, Prot::kWrite));
}

TEST_F(PrecreatedTest, MultiExtentFileResolvesAcrossSeams) {
  // 2 MiB file from two discontiguous 1 MiB extents.
  const std::vector<FileExtentView> extents = {
      {.file_offset = 0, .paddr = 20 * kMiB, .bytes = kMiB},
      {.file_offset = kMiB, .paddr = 48 * kMiB, .bytes = kMiB}};
  auto tables = BuildPrecreatedTables(&ctx_, &phys_, extents, 2 * kMiB, false);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->window_count(), 1u);
  auto before = PageTable::LookupInSubtree(tables->read_write[0], 1, kMiB - kPageSize);
  auto after = PageTable::LookupInSubtree(tables->read_write[0], 1, kMiB);
  ASSERT_TRUE(before.has_value() && after.has_value());
  EXPECT_EQ(before->paddr, 20 * kMiB + kMiB - kPageSize);
  EXPECT_EQ(after->paddr, 48 * kMiB);
}

TEST_F(PrecreatedTest, PartialLastWindowLeavesTailUnmapped) {
  const std::vector<FileExtentView> extents = {
      {.file_offset = 0, .paddr = 20 * kMiB, .bytes = 3 * kMiB}};
  auto tables = BuildPrecreatedTables(&ctx_, &phys_, extents, 3 * kMiB, false);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->window_count(), 2u);
  EXPECT_TRUE(PageTable::LookupInSubtree(tables->read_write[1], 1, kMiB - 1).has_value());
  EXPECT_FALSE(PageTable::LookupInSubtree(tables->read_write[1], 1, kMiB).has_value());
}

TEST_F(PrecreatedTest, HolesAreCorruption) {
  const std::vector<FileExtentView> extents = {
      {.file_offset = kPageSize, .paddr = 20 * kMiB, .bytes = kMiB}};
  auto tables = BuildPrecreatedTables(&ctx_, &phys_, extents, kMiB, false);
  ASSERT_FALSE(tables.ok());
  EXPECT_EQ(tables.status().code(), StatusCode::kCorruption);
}

TEST_F(PrecreatedTest, EmptyFileRejected) {
  EXPECT_FALSE(BuildPrecreatedTables(&ctx_, &phys_, {}, 0, false).ok());
}

TEST_F(PrecreatedTest, PersistentBuildChargesNvmWrites) {
  const std::vector<FileExtentView> extents = {
      {.file_offset = 0, .paddr = 32 * kMiB, .bytes = 2 * kMiB}};
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(BuildPrecreatedTables(&ctx_, &phys_, extents, 2 * kMiB, false).ok());
  const uint64_t volatile_cost = ctx_.now() - t0;
  const uint64_t t1 = ctx_.now();
  ASSERT_TRUE(BuildPrecreatedTables(&ctx_, &phys_, extents, 2 * kMiB, true).ok());
  const uint64_t persistent_cost = ctx_.now() - t1;
  EXPECT_GT(persistent_cost, volatile_cost);
}

TEST_F(PrecreatedTest, BuildIsLinearButMapIsNot) {
  // Documents the design: building is O(pages) once...
  const std::vector<FileExtentView> small = {
      {.file_offset = 0, .paddr = 20 * kMiB, .bytes = 2 * kMiB}};
  const std::vector<FileExtentView> large = {
      {.file_offset = 0, .paddr = 20 * kMiB, .bytes = 32 * kMiB}};
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(BuildPrecreatedTables(&ctx_, &phys_, small, 2 * kMiB, false).ok());
  const uint64_t small_cost = ctx_.now() - t0;
  const uint64_t t1 = ctx_.now();
  auto big = BuildPrecreatedTables(&ctx_, &phys_, large, 32 * kMiB, false);
  ASSERT_TRUE(big.ok());
  const uint64_t large_cost = ctx_.now() - t1;
  EXPECT_GT(large_cost, 8 * small_cost);  // roughly 16x the pages
  // ...while consuming the tables (splicing) is per-window, tested in
  // fom_manager_test.cc.
  EXPECT_EQ(big->window_count(), 16u);
}

}  // namespace
}  // namespace o1mem
