#include "src/fom/fom_manager.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

class FomTest : public ::testing::Test {
 protected:
  FomTest()
      : machine_(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 512 * kMiB}),
        pmfs_(&machine_, machine_.phys().nvm_base(), 512 * kMiB),
        fom_(&machine_, &pmfs_),
        proc_(fom_.CreateProcess()) {}

  // Convenience: segment + map, returning the vaddr.
  Result<Vaddr> MakeMapped(std::string_view path, uint64_t bytes, MapMechanism mech,
                           Prot prot = Prot::kReadWrite) {
    auto inode = fom_.CreateSegment(path, bytes);
    if (!inode.ok()) {
      return inode.status();
    }
    return fom_.Map(*proc_, *inode, prot, MapOptions{.mechanism = mech});
  }

  Machine machine_;
  Pmfs pmfs_;
  FomManager fom_;
  std::unique_ptr<FomProcess> proc_;
};

TEST_F(FomTest, CreateSegmentAllocatesBackingAsFile) {
  auto inode = fom_.CreateSegment("/seg/heap", 8 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto st = pmfs_.Stat(*inode);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 8 * kMiB);
  EXPECT_EQ(st->allocated_bytes, 8 * kMiB);
  // Pre-created tables were built (RO + RW, one node per 2 MiB window).
  EXPECT_EQ(fom_.precreated_node_count(), 2 * 4u);
}

TEST_F(FomTest, MapRangeMechanismInstallsOneEntryPerExtent) {
  auto vaddr = MakeMapped("/seg/a", 64 * kMiB, MapMechanism::kRangeTable);
  ASSERT_TRUE(vaddr.ok());
  EXPECT_EQ(proc_->address_space().range_table().size(), 1u);  // one extent
  // The data is accessible without any fault.
  EXPECT_TRUE(
      machine_.mmu().Touch(proc_->address_space(), *vaddr + 63 * kMiB, 1, AccessType::kWrite)
          .ok());
  EXPECT_EQ(machine_.ctx().counters().minor_faults, 0u);
}

TEST_F(FomTest, MapCostIndependentOfSizeWithRanges) {
  auto small = fom_.CreateSegment("/seg/small", kMiB);
  auto large = fom_.CreateSegment("/seg/large", 256 * kMiB);
  ASSERT_TRUE(small.ok() && large.ok());
  const uint64_t t0 = machine_.ctx().now();
  ASSERT_TRUE(fom_.Map(*proc_, *small, Prot::kReadWrite,
                       MapOptions{.mechanism = MapMechanism::kRangeTable})
                  .ok());
  const uint64_t small_cost = machine_.ctx().now() - t0;
  const uint64_t t1 = machine_.ctx().now();
  ASSERT_TRUE(fom_.Map(*proc_, *large, Prot::kReadWrite,
                       MapOptions{.mechanism = MapMechanism::kRangeTable})
                  .ok());
  const uint64_t large_cost = machine_.ctx().now() - t1;
  // 256x the size, within 2x the cost (both files are single-extent).
  EXPECT_LT(large_cost, 2 * small_cost);
}

TEST_F(FomTest, SpliceMapWritesNoLeafPtes) {
  auto inode = fom_.CreateSegment("/seg/s", 16 * kMiB);
  ASSERT_TRUE(inode.ok());
  const uint64_t ptes_before = machine_.ctx().counters().ptes_written;
  auto vaddr = fom_.Map(*proc_, *inode, Prot::kReadWrite,
                        MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(vaddr.ok());
  EXPECT_EQ(machine_.ctx().counters().ptes_written, ptes_before);
  EXPECT_EQ(machine_.ctx().counters().subtree_splices, 8u);  // 16 MiB / 2 MiB
  // Data reachable through the spliced tables.
  std::vector<uint8_t> data{1, 2, 3};
  ASSERT_TRUE(machine_.mmu().WriteVirt(proc_->address_space(), *vaddr + 5 * kMiB, data).ok());
  std::vector<uint8_t> out(3);
  ASSERT_TRUE(machine_.mmu().ReadVirt(proc_->address_space(), *vaddr + 5 * kMiB, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FomTest, DataWrittenThroughMappingVisibleThroughFileApi) {
  auto inode = fom_.CreateSegment("/seg/shared-view", kMiB);
  ASSERT_TRUE(inode.ok());
  auto vaddr = fom_.Map(*proc_, *inode, Prot::kReadWrite,
                        MapOptions{.mechanism = MapMechanism::kRangeTable});
  ASSERT_TRUE(vaddr.ok());
  std::vector<uint8_t> data(100, 0x42);
  ASSERT_TRUE(machine_.mmu().WriteVirt(proc_->address_space(), *vaddr + 1234, data).ok());
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(pmfs_.ReadAt(*inode, 1234, out).ok());
  EXPECT_EQ(out, data);  // DAX: no page cache, one copy of the data
}

TEST_F(FomTest, UnmapIsOneShootdownAndDropsRef) {
  auto inode = fom_.CreateSegment("/seg/u", 32 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto vaddr = fom_.Map(*proc_, *inode, Prot::kRead,
                        MapOptions{.mechanism = MapMechanism::kRangeTable});
  ASSERT_TRUE(vaddr.ok());
  const uint64_t shootdowns_before = machine_.ctx().counters().tlb_shootdowns;
  ASSERT_TRUE(fom_.Unmap(*proc_, *vaddr).ok());
  EXPECT_EQ(machine_.ctx().counters().tlb_shootdowns, shootdowns_before + 1);
  EXPECT_FALSE(
      machine_.mmu().Touch(proc_->address_space(), *vaddr, 1, AccessType::kRead).ok());
  EXPECT_EQ(pmfs_.Stat(*inode)->map_count, 0u);
}

TEST_F(FomTest, UnmapOfUnlinkedFileFreesStorage) {
  auto inode = fom_.CreateSegment("/seg/tmp", 4 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto vaddr = fom_.Map(*proc_, *inode, Prot::kReadWrite);
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(fom_.DeleteSegment("/seg/tmp").ok());
  // Mapped: storage still held (whole-file refcount).
  EXPECT_TRUE(pmfs_.Stat(*inode).ok());
  const uint64_t free_before = pmfs_.free_bytes();
  ASSERT_TRUE(fom_.Unmap(*proc_, *vaddr).ok());
  EXPECT_EQ(pmfs_.free_bytes(), free_before + 4 * kMiB);
  EXPECT_FALSE(pmfs_.Stat(*inode).ok());
}

TEST_F(FomTest, ProtectWholeFileRange) {
  auto vaddr = MakeMapped("/seg/p", 8 * kMiB, MapMechanism::kRangeTable, Prot::kReadWrite);
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(
      machine_.mmu().Touch(proc_->address_space(), *vaddr, 1, AccessType::kWrite).ok());
  ASSERT_TRUE(fom_.Protect(*proc_, *vaddr, Prot::kRead).ok());
  EXPECT_FALSE(
      machine_.mmu().Touch(proc_->address_space(), *vaddr, 1, AccessType::kWrite).ok());
  EXPECT_TRUE(
      machine_.mmu().Touch(proc_->address_space(), *vaddr, 1, AccessType::kRead).ok());
}

TEST_F(FomTest, ProtectUnderSpliceSwapsTableSets) {
  auto vaddr = MakeMapped("/seg/ps", 4 * kMiB, MapMechanism::kPtSplice, Prot::kReadWrite);
  ASSERT_TRUE(vaddr.ok());
  const uint64_t ptes_before = machine_.ctx().counters().ptes_written;
  ASSERT_TRUE(fom_.Protect(*proc_, *vaddr, Prot::kRead).ok());
  // No PTE rewrites: the RO table set was spliced in instead.
  EXPECT_EQ(machine_.ctx().counters().ptes_written, ptes_before);
  EXPECT_FALSE(
      machine_.mmu().Touch(proc_->address_space(), *vaddr, 1, AccessType::kWrite).ok());
  EXPECT_TRUE(
      machine_.mmu().Touch(proc_->address_space(), *vaddr + kMiB, 1, AccessType::kRead).ok());
}

TEST_F(FomTest, GuardPagesAndCowRejected) {
  auto inode = fom_.CreateSegment("/seg/g", kMiB);
  ASSERT_TRUE(inode.ok());
  auto guard = fom_.Map(*proc_, *inode, Prot::kRead, MapOptions{.guard_page = true});
  EXPECT_EQ(guard.status().code(), StatusCode::kUnsupported);
  auto cow = fom_.Map(*proc_, *inode, Prot::kRead, MapOptions{.copy_on_write = true});
  EXPECT_EQ(cow.status().code(), StatusCode::kUnsupported);
}

TEST_F(FomTest, SharedSpliceMappingsUseTheSamePhysicalNodes) {
  auto inode = fom_.CreateSegment("/seg/shared", 8 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto proc2 = fom_.CreateProcess();
  auto v1 = fom_.Map(*proc_, *inode, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPtSplice});
  auto v2 = fom_.Map(*proc2, *inode, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(v1.ok() && v2.ok());
  // Figure 3: both page tables point at the same interior nodes.
  EXPECT_EQ(proc_->address_space().page_table().GetSubtree(*v1, 1).get(),
            proc2->address_space().page_table().GetSubtree(*v2, 1).get());
  // Writes by one process are visible to the other.
  std::vector<uint8_t> data{9, 9, 9};
  ASSERT_TRUE(machine_.mmu().WriteVirt(proc_->address_space(), *v1 + 100, data).ok());
  std::vector<uint8_t> out(3);
  ASSERT_TRUE(machine_.mmu().ReadVirt(proc2->address_space(), *v2 + 100, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FomTest, SecondSpliceMapIsCheapTablesAlreadyBuilt) {
  auto inode = fom_.CreateSegment("/seg/warm", 64 * kMiB);
  ASSERT_TRUE(inode.ok());
  auto proc2 = fom_.CreateProcess();
  auto v1 = fom_.Map(*proc_, *inode, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(v1.ok());
  const uint64_t nodes_before = machine_.ctx().counters().pt_nodes_allocated;
  const uint64_t t0 = machine_.ctx().now();
  auto v2 = fom_.Map(*proc2, *inode, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(v2.ok());
  // No new table nodes (beyond the spliced parents) and far less than a
  // per-page map would cost.
  EXPECT_LE(machine_.ctx().counters().pt_nodes_allocated, nodes_before + 3);
  EXPECT_LT(machine_.ctx().now() - t0, 50000u);
}

TEST_F(FomTest, PbmGivesSameVaddrInEveryProcess) {
  auto inode = fom_.CreateSegment("/seg/pbm", 4 * kMiB,
                                  SegmentOptions{.require_single_extent = true});
  ASSERT_TRUE(inode.ok());
  auto proc2 = fom_.CreateProcess();
  auto v1 = fom_.Map(*proc_, *inode, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPbm});
  auto v2 = fom_.Map(*proc2, *inode, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPbm});
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_EQ(*v1, *v2);  // Sec. 4.2: guaranteed common address
  // And it equals pbm_base + physical address.
  auto extents = pmfs_.Extents(*inode);
  ASSERT_TRUE(extents.ok());
  EXPECT_EQ(*v1, fom_.config().pbm_base + extents->front().paddr);
}

TEST_F(FomTest, PbmMappingsOfDistinctFilesNeverCollide) {
  auto a = fom_.CreateSegment("/seg/pbm-a", kMiB, SegmentOptions{.require_single_extent = true});
  auto b = fom_.CreateSegment("/seg/pbm-b", kMiB, SegmentOptions{.require_single_extent = true});
  ASSERT_TRUE(a.ok() && b.ok());
  auto va = fom_.Map(*proc_, *a, Prot::kRead, MapOptions{.mechanism = MapMechanism::kPbm});
  auto vb = fom_.Map(*proc_, *b, Prot::kRead, MapOptions{.mechanism = MapMechanism::kPbm});
  ASSERT_TRUE(va.ok() && vb.ok());
  EXPECT_TRUE(*va + kMiB <= *vb || *vb + kMiB <= *va);
}

TEST_F(FomTest, PbmRequiresSingleExtent) {
  // Fragment the fs so a large file needs two extents.
  auto filler1 = fom_.CreateSegment("/f1", 200 * kMiB);
  auto filler2 = fom_.CreateSegment("/f2", 200 * kMiB);
  ASSERT_TRUE(filler1.ok() && filler2.ok());
  ASSERT_TRUE(fom_.DeleteSegment("/f1").ok());
  auto frag = fom_.CreateSegment("/frag", 250 * kMiB);  // 200 MiB hole + tail
  ASSERT_TRUE(frag.ok());
  ASSERT_GE(pmfs_.Stat(*frag)->extent_count, 2u);
  auto v = fom_.Map(*proc_, *frag, Prot::kRead, MapOptions{.mechanism = MapMechanism::kPbm});
  EXPECT_EQ(v.status().code(), StatusCode::kUnsupported);
}

TEST_F(FomTest, ExitProcessReleasesEverything) {
  auto a = MakeMapped("/seg/e1", kMiB, MapMechanism::kRangeTable);
  auto b = MakeMapped("/seg/e2", kMiB, MapMechanism::kPtSplice);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(fom_.ExitProcess(*proc_).ok());
  EXPECT_TRUE(proc_->mappings().empty());
  EXPECT_EQ(pmfs_.Stat(*pmfs_.LookupPath("/seg/e1"))->map_count, 0u);
}

TEST_F(FomTest, HandlePressureDeletesDiscardableFilesOnly) {
  auto cache = fom_.CreateSegment(
      "/cache/1", 16 * kMiB, SegmentOptions{.flags = FileFlags{.discardable = true}});
  auto vital = fom_.CreateSegment("/data/vital", 16 * kMiB);
  ASSERT_TRUE(cache.ok() && vital.ok());
  const uint64_t scans_before = machine_.ctx().counters().pages_scanned;
  auto released = fom_.HandlePressure(8 * kMiB);
  ASSERT_TRUE(released.ok());
  EXPECT_GE(released.value(), 8 * kMiB);
  // No page was scanned: reclamation happened at file granularity.
  EXPECT_EQ(machine_.ctx().counters().pages_scanned, scans_before);
  EXPECT_FALSE(pmfs_.LookupPath("/cache/1").ok());
  EXPECT_TRUE(pmfs_.LookupPath("/data/vital").ok());
}

TEST_F(FomTest, PinnedExtentsWithoutPerPageWork) {
  auto vaddr = MakeMapped("/seg/dma", 32 * kMiB, MapMechanism::kRangeTable);
  ASSERT_TRUE(vaddr.ok());
  const uint64_t meta_updates_before = machine_.ctx().counters().frames_allocated;
  auto extents = fom_.PinnedExtents(*proc_, *vaddr);
  ASSERT_TRUE(extents.ok());
  EXPECT_EQ(extents->size(), 1u);
  EXPECT_EQ(extents->front().bytes, 32 * kMiB);
  EXPECT_EQ(machine_.ctx().counters().frames_allocated, meta_updates_before);
}

TEST_F(FomTest, PersistentSegmentRemappableAfterCrashInO1) {
  auto inode = fom_.CreateSegment(
      "/persist/db", 32 * kMiB,
      SegmentOptions{.flags = FileFlags{.persistent = true}});
  ASSERT_TRUE(inode.ok());
  auto vaddr = fom_.Map(*proc_, *inode, Prot::kReadWrite,
                        MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(vaddr.ok());
  std::vector<uint8_t> data(64, 0x77);
  ASSERT_TRUE(machine_.mmu().WriteVirt(proc_->address_space(), *vaddr + kMiB, data).ok());

  machine_.Crash();
  ASSERT_TRUE(pmfs_.OnCrash().ok());
  ASSERT_TRUE(fom_.OnCrash().ok());

  // New process after reboot maps the same file; tables were persistent, so
  // no node building happens (O(1) first map after reboot).
  auto proc2 = fom_.CreateProcess();
  auto found = fom_.OpenSegment("/persist/db");
  ASSERT_TRUE(found.ok());
  const uint64_t nodes_before = machine_.ctx().counters().pt_nodes_allocated;
  auto v2 = fom_.Map(*proc2, *found, Prot::kReadWrite,
                     MapOptions{.mechanism = MapMechanism::kPtSplice});
  ASSERT_TRUE(v2.ok());
  EXPECT_LE(machine_.ctx().counters().pt_nodes_allocated, nodes_before + 3);
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(machine_.mmu().ReadVirt(proc2->address_space(), *v2 + kMiB, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FomTest, VolatileSegmentGoneAfterCrash) {
  auto inode = fom_.CreateSegment("/tmp/scratch", kMiB);
  ASSERT_TRUE(inode.ok());
  machine_.Crash();
  ASSERT_TRUE(pmfs_.OnCrash().ok());
  ASSERT_TRUE(fom_.OnCrash().ok());
  EXPECT_FALSE(fom_.OpenSegment("/tmp/scratch").ok());
  EXPECT_EQ(fom_.precreated_node_count(), 0u);
}

TEST_F(FomTest, FixedVaddrMappingAndOverlapRejection) {
  auto a = fom_.CreateSegment("/seg/f1", kMiB);
  auto b = fom_.CreateSegment("/seg/f2", kMiB);
  ASSERT_TRUE(a.ok() && b.ok());
  const Vaddr fixed = fom_.config().map_region_base + 16 * kMiB;
  auto v1 = fom_.Map(*proc_, *a, Prot::kRead,
                     MapOptions{.mechanism = MapMechanism::kRangeTable, .fixed_vaddr = fixed});
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, fixed);
  auto v2 = fom_.Map(*proc_, *b, Prot::kRead,
                     MapOptions{.mechanism = MapMechanism::kRangeTable, .fixed_vaddr = fixed});
  EXPECT_EQ(v2.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(FomTest, MapEmptyOrMissingFileRejected) {
  auto inode = pmfs_.Create("/seg/empty", FileFlags{});
  ASSERT_TRUE(inode.ok());
  EXPECT_FALSE(fom_.Map(*proc_, *inode, Prot::kRead).ok());
  EXPECT_FALSE(fom_.Map(*proc_, 9999, Prot::kRead).ok());
  EXPECT_FALSE(fom_.Unmap(*proc_, 0xdead000).ok());
}

}  // namespace
}  // namespace o1mem
