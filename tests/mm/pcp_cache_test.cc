// Per-CPU frame caches and the pre-zeroed pool (SmpConfig::percpu_frame_cache
// / prezero_pool). Correctness obligations: a zero=true alloc must ALWAYS
// hand back an all-zero frame whatever path served it (buddy, pcp recycle,
// or background pool); free_bytes must count frames wherever they sit; and
// the whole apparatus must be deterministic and invisible when disabled.
#include "src/mm/phys_manager.h"

#include <gtest/gtest.h>

#include <vector>

namespace o1mem {
namespace {

MachineConfig SmpMachineConfig(int cpus, bool pcp, bool prezero) {
  MachineConfig config{.dram_bytes = 32 * kMiB, .nvm_bytes = 32 * kMiB};
  config.smp.num_cpus = cpus;
  config.smp.percpu_frame_cache = pcp;
  config.smp.prezero_pool = prezero;
  config.smp.prezero_target_frames = 256;
  return config;
}

bool FrameIsZero(Machine& m, Paddr frame) {
  std::vector<uint8_t> buf(kPageSize);
  if (!m.phys().ReadUncharged(frame, buf).ok()) {
    return false;
  }
  for (uint8_t b : buf) {
    if (b != 0) {
      return false;
    }
  }
  return true;
}

TEST(PcpCacheTest, DisabledCacheUsesBuddyDirectly) {
  Machine m(SmpMachineConfig(1, /*pcp=*/false, /*prezero=*/false));
  PhysManager mgr(&m);
  ASSERT_TRUE(mgr.AllocFrame(/*zero=*/false).ok());
  EXPECT_EQ(m.ctx().counters().frames_from_buddy, 1u);
  EXPECT_EQ(m.ctx().counters().frames_from_pcp, 0u);
  EXPECT_EQ(mgr.cpu_cache_frames(0), 0u);
  EXPECT_EQ(mgr.prezero_pool_frames(), 0u);
}

TEST(PcpCacheTest, CacheServesAtLeastNinetyPercentOfAllocs) {
  Machine m(SmpMachineConfig(2, /*pcp=*/true, /*prezero=*/false));
  PhysManager mgr(&m);
  constexpr int kAllocs = 64;
  for (int i = 0; i < kAllocs; ++i) {
    ASSERT_TRUE(mgr.AllocFrame(/*zero=*/false).ok());
  }
  const EventCounters& c = m.ctx().counters();
  EXPECT_EQ(c.frames_from_pcp + c.frames_from_buddy, static_cast<uint64_t>(kAllocs));
  // One buddy batch-refill per pcp_batch allocs: 60/64 served by the cache.
  EXPECT_GE(static_cast<double>(c.frames_from_pcp) / kAllocs, 0.90);
}

TEST(PcpCacheTest, RecycledDirtyFrameIsZeroedOnZeroAlloc) {
  Machine m(SmpMachineConfig(2, /*pcp=*/true, /*prezero=*/false));
  PhysManager mgr(&m);
  auto frame = mgr.AllocFrame(/*zero=*/false);
  ASSERT_TRUE(frame.ok());
  const std::vector<uint8_t> garbage(kPageSize, 0xab);
  ASSERT_TRUE(m.phys().WriteUncharged(*frame, garbage).ok());
  ASSERT_TRUE(mgr.FreeFrame(*frame).ok());
  // The pcp free list is LIFO, so the very next alloc recycles this frame.
  auto again = mgr.AllocFrame(/*zero=*/true);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *frame);
  EXPECT_TRUE(FrameIsZero(m, *again));
}

TEST(PcpCacheTest, PrezeroPoolServesZeroedFramesOffCriticalPath) {
  Machine m(SmpMachineConfig(2, /*pcp=*/true, /*prezero=*/true));
  PhysManager mgr(&m);
  auto frame = mgr.AllocFrame(/*zero=*/true);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(FrameIsZero(m, *frame));
  const EventCounters& c = m.ctx().counters();
  EXPECT_EQ(c.prezero_hits, 1u);
  EXPECT_EQ(c.prezero_misses, 0u);
  // Pool replenish (buddy ops + memset) booked off the simulated clock.
  EXPECT_GT(mgr.background_zero_cycles(), 0u);
  EXPECT_GT(mgr.prezero_pool_frames(), 0u);
}

TEST(PcpCacheTest, DirtyFreeNeverLeaksIntoZeroAllocWithPoolOn) {
  Machine m(SmpMachineConfig(2, /*pcp=*/true, /*prezero=*/true));
  PhysManager mgr(&m);
  // Dirty a few frames and free them into the pcp; every subsequent zeroed
  // alloc must still come back all-zero (from the pool or inline-zeroed).
  std::vector<Paddr> dirty;
  for (int i = 0; i < 8; ++i) {
    auto f = mgr.AllocFrame(/*zero=*/false);
    ASSERT_TRUE(f.ok());
    const std::vector<uint8_t> garbage(kPageSize, 0xcd);
    ASSERT_TRUE(m.phys().WriteUncharged(*f, garbage).ok());
    dirty.push_back(*f);
  }
  for (Paddr f : dirty) {
    ASSERT_TRUE(mgr.FreeFrame(f).ok());
  }
  for (int i = 0; i < 16; ++i) {
    auto f = mgr.AllocFrame(/*zero=*/true);
    ASSERT_TRUE(f.ok());
    EXPECT_TRUE(FrameIsZero(m, *f)) << "alloc " << i;
  }
}

TEST(PcpCacheTest, FreeBytesCountsCachesAndPool) {
  Machine m(SmpMachineConfig(2, /*pcp=*/true, /*prezero=*/true));
  PhysManager mgr(&m);
  const uint64_t initial = mgr.free_bytes();
  EXPECT_EQ(initial, 32 * kMiB);
  std::vector<Paddr> held;
  for (int i = 0; i < 40; ++i) {
    auto f = mgr.AllocFrame(/*zero=*/(i % 2) == 0);
    ASSERT_TRUE(f.ok());
    held.push_back(*f);
  }
  // Allocated frames are the only ones missing; pcp stock and the pre-zero
  // pool still count as free.
  EXPECT_EQ(mgr.free_bytes(), initial - held.size() * kPageSize);
  for (Paddr f : held) {
    ASSERT_TRUE(mgr.FreeFrame(f).ok());
  }
  EXPECT_EQ(mgr.free_bytes(), initial);
}

TEST(PcpCacheTest, HighWatermarkDrainsBackToBuddy) {
  Machine m(SmpMachineConfig(2, /*pcp=*/true, /*prezero=*/false));
  PhysManager mgr(&m);
  const int over = m.ctx().smp().pcp_high_watermark + 8;
  std::vector<Paddr> held;
  for (int i = 0; i < over; ++i) {
    auto f = mgr.AllocFrame(/*zero=*/false);
    ASSERT_TRUE(f.ok());
    held.push_back(*f);
  }
  for (Paddr f : held) {
    ASSERT_TRUE(mgr.FreeFrame(f).ok());
  }
  EXPECT_LE(mgr.cpu_cache_frames(0),
            static_cast<size_t>(m.ctx().smp().pcp_high_watermark));
}

TEST(PcpCacheTest, ReplenishLeavesBuddyReserve) {
  MachineConfig config = SmpMachineConfig(2, /*pcp=*/true, /*prezero=*/true);
  config.dram_bytes = 8 * kMiB;  // 2048 frames; target 256 fits, reserve 512
  config.smp.prezero_target_frames = 4096;  // asks for more than DRAM holds
  Machine m(config);
  PhysManager mgr(&m);
  mgr.ReplenishPrezeroPool();
  EXPECT_GT(mgr.prezero_pool_frames(), 0u);
  // The guard is checked per batch, so the floor is reserve minus one batch.
  const uint64_t reserve = mgr.buddy().total_bytes() / 4;
  const uint64_t batch_bytes =
      static_cast<uint64_t>(m.ctx().smp().pcp_batch) * kPageSize;
  EXPECT_GE(mgr.buddy().free_bytes() + batch_bytes, reserve);
}

TEST(PcpCacheTest, PerCpuCachesAreIndependent) {
  Machine m(SmpMachineConfig(2, /*pcp=*/true, /*prezero=*/false));
  PhysManager mgr(&m);
  auto f = mgr.AllocFrame(/*zero=*/false);  // refills CPU 0's cache
  ASSERT_TRUE(f.ok());
  EXPECT_GT(mgr.cpu_cache_frames(0), 0u);
  EXPECT_EQ(mgr.cpu_cache_frames(1), 0u);
  m.ctx().SetCurrentCpu(1);
  ASSERT_TRUE(mgr.FreeFrame(*f).ok());  // lands in CPU 1's cache
  EXPECT_EQ(mgr.cpu_cache_frames(1), 1u);
}

TEST(PcpCacheTest, AllocSequenceIsDeterministic) {
  auto run = [] {
    Machine m(SmpMachineConfig(4, /*pcp=*/true, /*prezero=*/true));
    PhysManager mgr(&m);
    for (int i = 0; i < 128; ++i) {
      m.ctx().SetCurrentCpu(i % 4);
      auto f = mgr.AllocFrame(/*zero=*/(i % 3) == 0);
      O1_CHECK(f.ok());
      if (i % 5 == 0) {
        O1_CHECK(mgr.FreeFrame(*f).ok());
      }
    }
    std::vector<uint64_t> cycles;
    for (int cpu = 0; cpu < 4; ++cpu) {
      cycles.push_back(m.ctx().cpu_cycles(cpu));
    }
    cycles.push_back(m.ctx().now());
    cycles.push_back(mgr.background_zero_cycles());
    return cycles;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace o1mem
