#include "src/mm/page_meta.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

TEST(PageMetaTest, SixtyFourByteFootprint) {
  EXPECT_EQ(sizeof(PageMeta), 64u);
}

TEST(PageMetaTest, FlagSetTestClear) {
  PageMeta m;
  EXPECT_FALSE(m.Test(PageFlag::kDirty));
  m.Set(PageFlag::kDirty);
  m.Set(PageFlag::kLru);
  EXPECT_TRUE(m.Test(PageFlag::kDirty));
  EXPECT_TRUE(m.Test(PageFlag::kLru));
  m.Clear(PageFlag::kDirty);
  EXPECT_FALSE(m.Test(PageFlag::kDirty));
  EXPECT_TRUE(m.Test(PageFlag::kLru));
}

TEST(PageMetaTest, TwentyFiveDistinctFlags) {
  // The paper: "the Linux PAGE structure has 25 separate flags".
  PageMeta m;
  int count = 0;
  for (uint32_t bit = 0; bit < 32; ++bit) {
    const auto flag = static_cast<PageFlag>(1u << bit);
    if (bit <= 24) {
      m.Set(flag);
      ++count;
    }
  }
  EXPECT_EQ(count, 25);
  EXPECT_EQ(m.flags, (1u << 25) - 1);
}

TEST(PageMetaArrayTest, InitCostIsLinearInMemorySize) {
  SimContext ctx;
  PageMetaArray small(&ctx, 0, 16 * kMiB);
  PageMetaArray big(&ctx, 0, 64 * kMiB);
  EXPECT_EQ(big.init_cycles(), 4 * small.init_cycles());
  EXPECT_EQ(small.frame_count(), 16 * kMiB / kPageSize);
  EXPECT_EQ(small.metadata_bytes(), small.frame_count() * 64);
}

TEST(PageMetaArrayTest, OfChargesPeekDoesNot) {
  SimContext ctx;
  PageMetaArray arr(&ctx, 0, kMiB);
  const uint64_t t0 = ctx.now();
  arr.Of(kPageSize).Set(PageFlag::kDirty);
  EXPECT_GT(ctx.now(), t0);
  const uint64_t t1 = ctx.now();
  EXPECT_TRUE(arr.Peek(kPageSize).Test(PageFlag::kDirty));
  EXPECT_EQ(ctx.now(), t1);
}

TEST(PageMetaArrayTest, DistinctFramesDistinctMeta) {
  SimContext ctx;
  PageMetaArray arr(&ctx, 0, kMiB);
  arr.Of(0).refcount = 3;
  arr.Of(kPageSize).refcount = 7;
  EXPECT_EQ(arr.Peek(0).refcount, 3);
  EXPECT_EQ(arr.Peek(kPageSize).refcount, 7);
  // Same frame, any offset within it.
  EXPECT_EQ(arr.Peek(kPageSize + 123).refcount, 7);
}

}  // namespace
}  // namespace o1mem
