// Dedicated reclaimer tests: clock rotation, 2Q promotion/demotion balance,
// scan budgets, and interaction with pinning.
#include "src/mm/reclaim.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

class ReclaimTest : public ::testing::Test {
 protected:
  ReclaimTest()
      : machine_(MachineConfig{.dram_bytes = 64 * kMiB, .nvm_bytes = 0}),
        phys_mgr_(&machine_),
        swap_(&machine_.ctx(), &machine_.phys(), 1 << 16),
        as_(machine_.CreateAddressSpace()),
        vmas_(&machine_.ctx()),
        pager_(&machine_, &phys_mgr_, &swap_, as_.get(), &vmas_) {}

  void MapAndPopulate(Vaddr start, uint64_t pages) {
    Vma vma{.start = start, .end = start + pages * kPageSize, .prot = Prot::kReadWrite};
    O1_CHECK(vmas_.Insert(vma).ok());
    O1_CHECK(pager_.Populate(vma).ok());
  }

  void ClearAllReferenced(Vaddr start, uint64_t pages) {
    for (uint64_t p = 0; p < pages; ++p) {
      pager_.TestAndClearReferenced(start + p * kPageSize);
    }
  }

  Machine machine_;
  PhysManager phys_mgr_;
  SwapDevice swap_;
  std::unique_ptr<AddressSpace> as_;
  VmaTree vmas_;
  DemandPager pager_;
};

TEST_F(ReclaimTest, ClockEvictsInLruOrderWhenNothingReferenced) {
  MapAndPopulate(kMiB, 8);
  ClearAllReferenced(kMiB, 8);
  ClockReclaimer clock(&pager_);
  auto stats = clock.Reclaim(3);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 3u);
  EXPECT_EQ(stats->scanned, 3u);  // straight down the list, no rotation
  // The three oldest (lowest) pages went out.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(as_->page_table().Lookup(kMiB + static_cast<Vaddr>(i) * kPageSize)
                     .has_value());
  }
  EXPECT_TRUE(as_->page_table().Lookup(kMiB + 3 * kPageSize).has_value());
}

TEST_F(ReclaimTest, ClockGivesUpWhenEverythingStaysReferenced) {
  MapAndPopulate(kMiB, 8);
  // Everything referenced (set at install) and we keep it that way by not
  // clearing: first revolution clears, second revolution evicts. To model
  // a truly hot set, re-reference after each clear is impossible here, so
  // instead verify the budget bounds total scanning.
  ClockReclaimer clock(&pager_);
  auto stats = clock.Reclaim(4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 4u);
  EXPECT_GT(stats->spared, 0u);       // first pass spared everyone
  EXPECT_LE(stats->scanned, 2 * 8 + 1);  // bounded by two revolutions
}

TEST_F(ReclaimTest, ClockZeroTargetIsNoop) {
  MapAndPopulate(kMiB, 4);
  ClockReclaimer clock(&pager_);
  auto stats = clock.Reclaim(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 0u);
  EXPECT_EQ(stats->scanned, 0u);
}

TEST_F(ReclaimTest, ClockOnEmptyPagerIsNoop) {
  ClockReclaimer clock(&pager_);
  auto stats = clock.Reclaim(10);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 0u);
}

TEST_F(ReclaimTest, TwoQueueKeepsHotPagesViaActiveList) {
  MapAndPopulate(kMiB, 12);
  // Pages start referenced; 2Q promotes them instead of evicting, then
  // demotes from the active list to refill inactive.
  TwoQueueReclaimer two_q(&pager_);
  auto stats = two_q.Reclaim(4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 4u);
  EXPECT_GE(stats->spared, 4u);
  EXPECT_FALSE(pager_.active_list().empty());
  // Re-referenced survivors keep surviving preferentially.
  const size_t resident_after = pager_.resident_anon_pages();
  EXPECT_EQ(resident_after, 8u);
}

TEST_F(ReclaimTest, ScanCostScalesWithPagesExamined) {
  MapAndPopulate(kMiB, 256);
  ClearAllReferenced(kMiB, 256);
  ClockReclaimer clock(&pager_);
  const uint64_t scanned_before = machine_.ctx().counters().pages_scanned;
  auto stats = clock.Reclaim(128);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(machine_.ctx().counters().pages_scanned - scanned_before, stats->scanned);
  EXPECT_EQ(stats->scanned, 128u);
}

TEST_F(ReclaimTest, EvictedPagesKeepTheirBytesInSwap) {
  MapAndPopulate(kMiB, 4);
  std::vector<uint8_t> data(64, 0xAB);
  ASSERT_TRUE(machine_.mmu().WriteVirt(*as_, kMiB + 2 * kPageSize, data).ok());
  ClearAllReferenced(kMiB, 4);
  ClockReclaimer clock(&pager_);
  ASSERT_TRUE(clock.Reclaim(4).ok());
  EXPECT_EQ(pager_.swapped_pages(), 4u);
  // Fault back: contents intact.
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(machine_.mmu().ReadVirt(*as_, kMiB + 2 * kPageSize, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(machine_.ctx().counters().major_faults, 0u);
}

}  // namespace
}  // namespace o1mem
