#include "src/mm/demand_pager.h"

#include <gtest/gtest.h>

#include "src/mm/reclaim.h"

namespace o1mem {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  PagerTest()
      : machine_(MachineConfig{.dram_bytes = 32 * kMiB, .nvm_bytes = 32 * kMiB}),
        phys_mgr_(&machine_),
        swap_(&machine_.ctx(), &machine_.phys(), /*capacity_pages=*/4096),
        as_(machine_.CreateAddressSpace()),
        vmas_(&machine_.ctx()),
        pager_(&machine_, &phys_mgr_, &swap_, as_.get(), &vmas_) {}

  Status MapAnon(Vaddr start, uint64_t len, bool populate = false) {
    Vma vma{.start = start, .end = start + len, .prot = Prot::kReadWrite,
            .populate = populate};
    O1_RETURN_IF_ERROR(vmas_.Insert(vma));
    if (populate) {
      return pager_.Populate(vma);
    }
    return OkStatus();
  }

  Machine machine_;
  PhysManager phys_mgr_;
  SwapDevice swap_;
  std::unique_ptr<AddressSpace> as_;
  VmaTree vmas_;
  DemandPager pager_;
};

TEST_F(PagerTest, DemandFaultInstallsZeroedPage) {
  ASSERT_TRUE(MapAnon(kMiB, 16 * kPageSize).ok());
  std::vector<uint8_t> buf(8, 0xff);
  ASSERT_TRUE(machine_.mmu().ReadVirt(*as_, kMiB + 100, buf).ok());
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(machine_.ctx().counters().minor_faults, 1u);
  EXPECT_EQ(pager_.resident_anon_pages(), 1u);
}

TEST_F(PagerTest, WriteReadRoundTripThroughFaults) {
  ASSERT_TRUE(MapAnon(kMiB, 64 * kPageSize).ok());
  std::vector<uint8_t> data(3 * kPageSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i % 251);
  }
  ASSERT_TRUE(machine_.mmu().WriteVirt(*as_, kMiB + 512, data).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(machine_.mmu().ReadVirt(*as_, kMiB + 512, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(machine_.ctx().counters().minor_faults, 4u);  // 3 pages + boundary
}

TEST_F(PagerTest, AccessOutsideVmaIsSegv) {
  ASSERT_TRUE(MapAnon(kMiB, kPageSize).ok());
  auto r = machine_.mmu().Touch(*as_, 64 * kMiB, 1, AccessType::kRead);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(machine_.ctx().counters().segv_faults, 1u);
}

TEST_F(PagerTest, WriteToReadOnlyVmaDenied) {
  Vma vma{.start = kMiB, .end = kMiB + kPageSize, .prot = Prot::kRead};
  ASSERT_TRUE(vmas_.Insert(vma).ok());
  EXPECT_FALSE(machine_.mmu().Touch(*as_, kMiB, 1, AccessType::kWrite).ok());
  // Read still works.
  EXPECT_TRUE(machine_.mmu().Touch(*as_, kMiB, 1, AccessType::kRead).ok());
}

TEST_F(PagerTest, PopulateAvoidsLaterFaults) {
  ASSERT_TRUE(MapAnon(kMiB, 32 * kPageSize, /*populate=*/true).ok());
  EXPECT_EQ(pager_.resident_anon_pages(), 32u);
  const uint64_t faults_before = machine_.ctx().counters().minor_faults;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        machine_.mmu().Touch(*as_, kMiB + static_cast<Vaddr>(i) * kPageSize, 1,
                             AccessType::kRead).ok());
  }
  EXPECT_EQ(machine_.ctx().counters().minor_faults, faults_before);
}

TEST_F(PagerTest, PopulatePerPageIsCheaperThanFaultPerPage) {
  ASSERT_TRUE(MapAnon(kMiB, 64 * kPageSize).ok());
  ASSERT_TRUE(MapAnon(16 * kMiB, 64 * kPageSize).ok());
  // Populate path.
  const uint64_t t0 = machine_.ctx().now();
  ASSERT_TRUE(pager_.Populate(*vmas_.Find(kMiB)).ok());
  const uint64_t populate_cost = machine_.ctx().now() - t0;
  // Demand path.
  const uint64_t t1 = machine_.ctx().now();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(machine_.mmu().Touch(*as_, 16 * kMiB + static_cast<Vaddr>(i) * kPageSize, 1,
                                     AccessType::kWrite).ok());
  }
  const uint64_t demand_cost = machine_.ctx().now() - t1;
  EXPECT_GT(demand_cost, 2 * populate_cost);
}

TEST_F(PagerTest, UnmapReleasesFramesAndPtes) {
  ASSERT_TRUE(MapAnon(kMiB, 8 * kPageSize, /*populate=*/true).ok());
  const uint64_t free_before = phys_mgr_.free_bytes();
  auto removed = vmas_.RemoveRange(kMiB, 8 * kPageSize);
  ASSERT_TRUE(removed.ok());
  for (const Vma& piece : removed.value()) {
    ASSERT_TRUE(pager_.UnmapRange(piece).ok());
  }
  EXPECT_EQ(phys_mgr_.free_bytes(), free_before + 8 * kPageSize);
  EXPECT_EQ(pager_.resident_anon_pages(), 0u);
  EXPECT_FALSE(machine_.mmu().Touch(*as_, kMiB, 1, AccessType::kRead).ok());
}

TEST_F(PagerTest, SwapOutThenMajorFaultRestoresContents) {
  ASSERT_TRUE(MapAnon(kMiB, 4 * kPageSize).ok());
  std::vector<uint8_t> data(64, 0x7e);
  ASSERT_TRUE(machine_.mmu().WriteVirt(*as_, kMiB, data).ok());
  ASSERT_TRUE(pager_.SwapOutPage(kMiB).ok());
  EXPECT_EQ(pager_.swapped_pages(), 1u);
  EXPECT_EQ(pager_.resident_anon_pages(), 0u);
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(machine_.mmu().ReadVirt(*as_, kMiB, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(machine_.ctx().counters().major_faults, 1u);
  EXPECT_EQ(pager_.swapped_pages(), 0u);
}

TEST_F(PagerTest, ClockReclaimEvictsUnreferencedFirst) {
  ASSERT_TRUE(MapAnon(kMiB, 8 * kPageSize, /*populate=*/true).ok());
  // Clear all referenced bits, then re-reference pages 0..3.
  for (int i = 0; i < 8; ++i) {
    pager_.TestAndClearReferenced(kMiB + static_cast<Vaddr>(i) * kPageSize);
  }
  for (int i = 0; i < 4; ++i) {
    pager_.MarkAccessed(kMiB + static_cast<Vaddr>(i) * kPageSize);
  }
  ClockReclaimer clock(&pager_);
  auto stats = clock.Reclaim(4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 4u);
  EXPECT_GE(stats->spared, 4u);
  // The referenced pages survived.
  for (int i = 0; i < 4; ++i) {
    const Vaddr va = kMiB + static_cast<Vaddr>(i) * kPageSize;
    EXPECT_TRUE(as_->page_table().Lookup(va).has_value()) << i;
  }
  EXPECT_EQ(pager_.swapped_pages(), 4u);
}

TEST_F(PagerTest, ClockReclaimScansMoreThanItReclaims) {
  ASSERT_TRUE(MapAnon(kMiB, 64 * kPageSize, /*populate=*/true).ok());
  ClockReclaimer clock(&pager_);
  // All pages start referenced (set at install), so the first revolution
  // only clears bits.
  auto stats = clock.Reclaim(8);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 8u);
  EXPECT_GT(stats->scanned, stats->reclaimed);
}

TEST_F(PagerTest, TwoQueuePromotesReferencedPages) {
  ASSERT_TRUE(MapAnon(kMiB, 16 * kPageSize, /*populate=*/true).ok());
  TwoQueueReclaimer two_q(&pager_);
  auto stats = two_q.Reclaim(4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reclaimed, 4u);
  // Referenced-at-install pages were promoted rather than evicted on first
  // encounter.
  EXPECT_FALSE(pager_.active_list().empty());
}

TEST_F(PagerTest, ReclaimThenTouchFaultsBackIn) {
  ASSERT_TRUE(MapAnon(kMiB, 16 * kPageSize, /*populate=*/true).ok());
  for (int i = 0; i < 16; ++i) {
    pager_.TestAndClearReferenced(kMiB + static_cast<Vaddr>(i) * kPageSize);
  }
  ClockReclaimer clock(&pager_);
  ASSERT_TRUE(clock.Reclaim(16).ok());
  EXPECT_EQ(pager_.resident_anon_pages(), 0u);
  ASSERT_TRUE(machine_.mmu().Touch(*as_, kMiB + 5 * kPageSize, 1, AccessType::kRead).ok());
  EXPECT_EQ(pager_.resident_anon_pages(), 1u);
}

TEST_F(PagerTest, OutOfMemoryWhenDramExhausted) {
  // 32 MiB DRAM: populating 64 MiB of anon memory must fail with OOM.
  ASSERT_TRUE(vmas_.Insert(Vma{.start = kMiB, .end = kMiB + 64 * kMiB,
                               .prot = Prot::kReadWrite}).ok());
  Status s = pager_.Populate(*vmas_.Find(kMiB));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
}

}  // namespace
}  // namespace o1mem
