#include "src/mm/buddy_allocator.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/support/rng.h"

namespace o1mem {
namespace {

class BuddyTest : public ::testing::Test {
 protected:
  SimContext ctx_;
  BuddyAllocator buddy_{&ctx_, /*base=*/0, /*bytes=*/16 * kMiB};
};

TEST_F(BuddyTest, StartsFullyFree) {
  EXPECT_EQ(buddy_.free_bytes(), 16 * kMiB);
  EXPECT_GE(buddy_.LargestFreeOrder(), 12);  // 16 MiB = order 12
}

TEST_F(BuddyTest, AllocFrameReturnsAlignedOwnedFrames) {
  auto a = buddy_.AllocFrame();
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(IsAligned(a.value(), kPageSize));
  EXPECT_TRUE(buddy_.Owns(a.value()));
  EXPECT_EQ(buddy_.free_bytes(), 16 * kMiB - kPageSize);
}

TEST_F(BuddyTest, DistinctAllocationsDoNotOverlap) {
  std::set<Paddr> seen;
  for (int i = 0; i < 256; ++i) {
    auto frame = buddy_.AllocFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_TRUE(seen.insert(frame.value()).second);
  }
}

TEST_F(BuddyTest, HigherOrderAlignment) {
  auto block = buddy_.AllocOrder(9);  // 2 MiB
  ASSERT_TRUE(block.ok());
  EXPECT_TRUE(IsAligned(block.value(), kLargePageSize));
  EXPECT_EQ(buddy_.free_bytes(), 16 * kMiB - 2 * kMiB);
}

TEST_F(BuddyTest, ExhaustionReturnsOutOfMemory) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(buddy_.AllocOrder(9).ok());
  }
  EXPECT_EQ(buddy_.free_bytes(), 0u);
  auto r = buddy_.AllocFrame();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(BuddyTest, FreeRestoresAndMerges) {
  std::vector<Paddr> frames;
  for (int i = 0; i < 512; ++i) {  // 2 MiB worth of single frames
    auto f = buddy_.AllocFrame();
    ASSERT_TRUE(f.ok());
    frames.push_back(f.value());
  }
  for (Paddr f : frames) {
    ASSERT_TRUE(buddy_.FreeFrame(f).ok());
  }
  EXPECT_EQ(buddy_.free_bytes(), 16 * kMiB);
  // All singles merged back: a full-size block must be allocatable again.
  EXPECT_TRUE(buddy_.AllocOrder(12).ok());
}

TEST_F(BuddyTest, InvalidFreesRejected) {
  EXPECT_FALSE(buddy_.FreeFrame(16 * kMiB).ok());            // outside
  EXPECT_FALSE(buddy_.FreeOrder(kPageSize, 9).ok());         // misaligned for order
  EXPECT_FALSE(buddy_.FreeOrder(0, -1).ok());
  EXPECT_FALSE(buddy_.FreeOrder(0, BuddyAllocator::kMaxOrder).ok());
}

TEST_F(BuddyTest, FragmentationBlocksLargeAllocations) {
  // Allocate everything as frames, free every other one: no order-1 blocks.
  std::vector<Paddr> frames;
  while (true) {
    auto f = buddy_.AllocFrame();
    if (!f.ok()) {
      break;
    }
    frames.push_back(f.value());
  }
  for (size_t i = 0; i < frames.size(); i += 2) {
    ASSERT_TRUE(buddy_.FreeFrame(frames[i]).ok());
  }
  EXPECT_EQ(buddy_.LargestFreeOrder(), 0);
  EXPECT_FALSE(buddy_.AllocOrder(1).ok());
  EXPECT_TRUE(buddy_.AllocFrame().ok());
}

TEST_F(BuddyTest, ChargesCycles) {
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(buddy_.AllocFrame().ok());
  EXPECT_GT(ctx_.now(), t0);
  EXPECT_EQ(ctx_.counters().frames_allocated, 1u);
}

TEST_F(BuddyTest, NonPowerOfTwoRegionFullyUsable) {
  BuddyAllocator odd(&ctx_, 0, 3 * kMiB + 64 * kPageSize);
  uint64_t allocated = 0;
  while (odd.AllocFrame().ok()) {
    allocated += kPageSize;
  }
  EXPECT_EQ(allocated, 3 * kMiB + 64 * kPageSize);
}

// Property-style randomized check: alloc/free churn preserves the invariant
// that free_bytes matches the outstanding set and never double-allocates.
TEST_F(BuddyTest, RandomChurnPreservesInvariants) {
  Rng rng(1234);
  std::vector<std::pair<Paddr, int>> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      const int order = static_cast<int>(rng.NextBelow(5));
      auto r = buddy_.AllocOrder(order);
      if (r.ok()) {
        // No overlap with any live block.
        for (const auto& [base, o] : live) {
          const bool disjoint = r.value() + (kPageSize << order) <= base ||
                                base + (kPageSize << o) <= r.value();
          ASSERT_TRUE(disjoint);
        }
        live.emplace_back(r.value(), order);
      }
    } else {
      const size_t pick = rng.NextBelow(live.size());
      ASSERT_TRUE(buddy_.FreeOrder(live[pick].first, live[pick].second).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  uint64_t live_bytes = 0;
  for (const auto& [base, o] : live) {
    live_bytes += kPageSize << o;
  }
  EXPECT_EQ(buddy_.free_bytes(), 16 * kMiB - live_bytes);
}

}  // namespace
}  // namespace o1mem
