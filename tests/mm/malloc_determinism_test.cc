// Determinism of the per-CPU malloc frontend: the same seed and the same
// worker count must reproduce the simulation bit-identically -- final clock,
// every event counter, allocator stats, and the full trace-event stream.
// The workload deliberately crosses the bin refill/flush boundaries
// (kCacheBatch/kCacheCap) on every CPU so the batch machinery itself is
// under the comparison, and one case re-runs with the host fast path
// disabled (O1MEM_NO_HOST_FASTPATH) to pin the fast path's charge-identity
// invariant.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/observer.h"
#include "src/os/malloc.h"
#include "src/support/rng.h"

namespace o1mem {
namespace {

struct RunFingerprint {
  uint64_t final_cycles = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  MallocStats stats;
  std::vector<TraceEvent> trace;
};

bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.start_cycles == b.start_cycles && a.duration_cycles == b.duration_cycles &&
         a.operand_bytes == b.operand_bytes && a.kind == b.kind && a.cpu == b.cpu &&
         a.instant == b.instant && a.size_class == b.size_class;
}

SystemConfig DeterminismConfig(int workers) {
  SystemConfig config;
  config.machine.dram_bytes = 256 * kMiB;
  config.machine.nvm_bytes = 512 * kMiB;
  config.machine.smp.num_cpus = workers;
  config.machine.obs.trace = true;  // capture the event stream too
  return config;
}

// One deterministic churn: mixed size classes, per-CPU round-robin, with a
// ladder segment (kCacheCap + 1 pushes then pops) that forces at least one
// flush and one refill per CPU per wave.
RunFingerprint RunWorkload(uint64_t seed, int workers, Backend backend) {
  SystemConfig config = DeterminismConfig(workers);
  System sys(config);
  auto proc = sys.Launch(backend);
  O1_CHECK(proc.ok());
  SizeClassAllocator alloc(&sys, *proc);

  Rng rng(seed);
  std::vector<std::vector<Vaddr>> live(static_cast<size_t>(workers));
  for (int step = 0; step < 2000; ++step) {
    const int cpu = step % workers;
    sys.ctx().SetCurrentCpu(cpu);
    auto& mine = live[static_cast<size_t>(cpu)];
    if (step % 97 == 0) {
      // Ladder: overfill one bin past kCacheCap, then drain it, so the
      // flush/refill batches run under the determinism comparison.
      std::vector<Vaddr> wave;
      for (int i = 0; i < SizeClassAllocator::kCacheCap + 1; ++i) {
        auto p = alloc.Malloc(16);
        O1_CHECK(p.ok());
        wave.push_back(*p);
      }
      for (auto it = wave.rbegin(); it != wave.rend(); ++it) {
        O1_CHECK(alloc.Free(*it).ok());
      }
      continue;
    }
    if (rng.Next() % 100 < 60 || mine.empty()) {
      const uint64_t bytes = 1 + rng.Next() % (8 * kKiB);
      auto p = alloc.Malloc(bytes);
      O1_CHECK(p.ok());
      mine.push_back(*p);
    } else {
      const size_t victim = rng.Next() % mine.size();
      O1_CHECK(alloc.Free(mine[victim]).ok());
      mine[victim] = mine.back();
      mine.pop_back();
    }
  }
  for (int cpu = 0; cpu < workers; ++cpu) {
    sys.ctx().SetCurrentCpu(cpu);
    for (Vaddr p : live[static_cast<size_t>(cpu)]) {
      O1_CHECK(alloc.Free(p).ok());
    }
  }
  sys.ctx().SetCurrentCpu(0);

  RunFingerprint fp;
  fp.final_cycles = sys.ctx().now();
  sys.ctx().counters().ForEachField(
      [&fp](const char* name, uint64_t value) { fp.counters.emplace_back(name, value); });
  fp.stats = alloc.stats();
  if (sys.machine().observer().ring() != nullptr) {
    fp.trace = sys.machine().observer().ring()->Drain();
  }
  return fp;
}

void ExpectIdentical(const RunFingerprint& a, const RunFingerprint& b) {
  EXPECT_EQ(a.final_cycles, b.final_cycles);
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].second, b.counters[i].second)
        << "counter " << a.counters[i].first << " diverged";
  }
  EXPECT_EQ(a.stats.allocations, b.stats.allocations);
  EXPECT_EQ(a.stats.frees, b.stats.frees);
  EXPECT_EQ(a.stats.cache_refills, b.stats.cache_refills);
  EXPECT_EQ(a.stats.cache_flushes, b.stats.cache_flushes);
  EXPECT_EQ(a.stats.chunks_recycled, b.stats.chunks_recycled);
  EXPECT_EQ(a.stats.pool_reuses, b.stats.pool_reuses);
  EXPECT_EQ(a.stats.mmap_bytes, b.stats.mmap_bytes);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_TRUE(a.trace[i] == b.trace[i]) << "trace event " << i << " diverged";
  }
}

class MallocDeterminismTest : public ::testing::TestWithParam<Backend> {};

TEST_P(MallocDeterminismTest, SameSeedSameWorkersIsBitIdentical) {
  for (int workers : {1, 2, 4}) {
    RunFingerprint a = RunWorkload(/*seed=*/42, workers, GetParam());
    RunFingerprint b = RunWorkload(/*seed=*/42, workers, GetParam());
    ExpectIdentical(a, b);
    EXPECT_GT(a.stats.cache_flushes, 0u);  // the ladder crossed kCacheCap
    EXPECT_GT(a.stats.cache_refills, 0u);
  }
}

TEST_P(MallocDeterminismTest, DifferentSeedsDiverge) {
  RunFingerprint a = RunWorkload(/*seed=*/42, /*workers=*/2, GetParam());
  RunFingerprint b = RunWorkload(/*seed=*/43, /*workers=*/2, GetParam());
  // Not a strict requirement, but if different seeds ever collide the
  // fingerprint has lost its discriminating power and the suite is vacuous.
  EXPECT_NE(a.final_cycles, b.final_cycles);
}

TEST_P(MallocDeterminismTest, HostFastpathIsChargeIdentical) {
  RunFingerprint on = RunWorkload(/*seed=*/7, /*workers=*/2, GetParam());
  ASSERT_EQ(setenv("O1MEM_NO_HOST_FASTPATH", "1", 1), 0);
  RunFingerprint off = RunWorkload(/*seed=*/7, /*workers=*/2, GetParam());
  unsetenv("O1MEM_NO_HOST_FASTPATH");
  ExpectIdentical(on, off);
}

INSTANTIATE_TEST_SUITE_P(Backends, MallocDeterminismTest,
                         ::testing::Values(Backend::kBaseline, Backend::kFom),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kBaseline ? "Baseline" : "Fom";
                         });

}  // namespace
}  // namespace o1mem
