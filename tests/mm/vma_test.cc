#include "src/mm/vma.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

class VmaTest : public ::testing::Test {
 protected:
  static Vma Anon(Vaddr start, Vaddr end, Prot prot = Prot::kReadWrite) {
    return Vma{.start = start, .end = end, .prot = prot};
  }

  SimContext ctx_;
  VmaTree tree_{&ctx_};
};

TEST_F(VmaTest, InsertAndFind) {
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB)).ok());
  auto v = tree_.Find(kMiB + 100);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->start, kMiB);
  EXPECT_FALSE(tree_.Find(2 * kMiB).has_value());
  EXPECT_FALSE(tree_.Find(kMiB - 1).has_value());
}

TEST_F(VmaTest, RejectsBadGeometry) {
  EXPECT_FALSE(tree_.Insert(Anon(kMiB, kMiB)).ok());               // empty
  EXPECT_FALSE(tree_.Insert(Anon(2 * kMiB, kMiB)).ok());           // inverted
  EXPECT_FALSE(tree_.Insert(Anon(kMiB + 1, 2 * kMiB)).ok());       // misaligned
}

TEST_F(VmaTest, RejectsOverlap) {
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB)).ok());
  EXPECT_FALSE(tree_.Insert(Anon(kMiB, 2 * kMiB)).ok());
  EXPECT_FALSE(tree_.Insert(Anon(kMiB + kPageSize, kMiB + 2 * kPageSize)).ok());
  EXPECT_FALSE(tree_.Insert(Anon(kMiB / 2, kMiB + kPageSize)).ok());
}

TEST_F(VmaTest, MergesAdjacentAnonymousRegions) {
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB)).ok());
  ASSERT_TRUE(tree_.Insert(Anon(2 * kMiB, 3 * kMiB)).ok());
  EXPECT_EQ(tree_.size(), 1u);
  auto v = tree_.Find(2 * kMiB);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->start, kMiB);
  EXPECT_EQ(v->end, 3 * kMiB);
}

TEST_F(VmaTest, MergeBridgesBothNeighbors) {
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB)).ok());
  ASSERT_TRUE(tree_.Insert(Anon(3 * kMiB, 4 * kMiB)).ok());
  ASSERT_TRUE(tree_.Insert(Anon(2 * kMiB, 3 * kMiB)).ok());
  EXPECT_EQ(tree_.size(), 1u);
}

TEST_F(VmaTest, NoMergeAcrossDifferentProtection) {
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB, Prot::kRead)).ok());
  ASSERT_TRUE(tree_.Insert(Anon(2 * kMiB, 3 * kMiB, Prot::kReadWrite)).ok());
  EXPECT_EQ(tree_.size(), 2u);
}

class FakeBacking : public BackingProvider {
 public:
  Result<Paddr> GetBackingPage(uint64_t offset, bool) override { return Paddr{offset}; }
  uint64_t backing_id() const override { return 99; }
};

TEST_F(VmaTest, NoMergeForFileBackedRegions) {
  FakeBacking backing;
  Vma a = Anon(kMiB, 2 * kMiB);
  a.backing = &backing;
  Vma b = Anon(2 * kMiB, 3 * kMiB);
  b.backing = &backing;
  ASSERT_TRUE(tree_.Insert(a).ok());
  ASSERT_TRUE(tree_.Insert(b).ok());
  EXPECT_EQ(tree_.size(), 2u);
}

TEST_F(VmaTest, RemoveWholeRegion) {
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB)).ok());
  auto removed = tree_.RemoveRange(kMiB, kMiB);
  ASSERT_TRUE(removed.ok());
  ASSERT_EQ(removed->size(), 1u);
  EXPECT_EQ(tree_.size(), 0u);
}

TEST_F(VmaTest, RemoveMiddleSplits) {
  ASSERT_TRUE(tree_.Insert(Anon(0, 10 * kPageSize)).ok());
  auto removed = tree_.RemoveRange(4 * kPageSize, 2 * kPageSize);
  ASSERT_TRUE(removed.ok());
  ASSERT_EQ(removed->size(), 1u);
  EXPECT_EQ((*removed)[0].start, 4 * kPageSize);
  EXPECT_EQ((*removed)[0].end, 6 * kPageSize);
  EXPECT_EQ(tree_.size(), 2u);
  EXPECT_TRUE(tree_.Find(0).has_value());
  EXPECT_FALSE(tree_.Find(4 * kPageSize).has_value());
  EXPECT_TRUE(tree_.Find(6 * kPageSize).has_value());
}

TEST_F(VmaTest, RemoveSpanningMultipleRegions) {
  FakeBacking backing;
  Vma file = Anon(2 * kMiB, 3 * kMiB, Prot::kRead);
  file.backing = &backing;
  file.file_offset = 0;
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB)).ok());
  ASSERT_TRUE(tree_.Insert(file).ok());
  auto removed = tree_.RemoveRange(kMiB + kPageSize, 2 * kMiB - 2 * kPageSize);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->size(), 2u);
  // The file piece keeps a consistent file_offset.
  EXPECT_EQ((*removed)[1].file_offset, 0u);
  EXPECT_EQ((*removed)[1].start, 2 * kMiB);
  // Right remainder of the file VMA has an advanced file offset.
  auto right = tree_.Find(3 * kMiB - kPageSize);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->file_offset, kMiB - kPageSize);
}

TEST_F(VmaTest, FindFreeRegionSkipsOccupied) {
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB)).ok());
  auto free = tree_.FindFreeRegion(kMiB, kMiB, kPageSize, kGiB);
  ASSERT_TRUE(free.ok());
  EXPECT_GE(free.value(), 2 * kMiB);
  ASSERT_TRUE(tree_.Insert(Anon(free.value(), free.value() + kMiB)).ok());
}

TEST_F(VmaTest, FindFreeRegionRespectsAlignmentAndLimit) {
  auto free = tree_.FindFreeRegion(kPageSize, kMiB, kLargePageSize, kGiB);
  ASSERT_TRUE(free.ok());
  EXPECT_TRUE(IsAligned(free.value(), kLargePageSize));
  EXPECT_FALSE(tree_.FindFreeRegion(0, 2 * kGiB, kPageSize, kGiB).ok());
}

TEST_F(VmaTest, FindFreeRegionFillsGapBetweenRegions) {
  ASSERT_TRUE(tree_.Insert(Anon(kMiB, 2 * kMiB, Prot::kRead)).ok());
  ASSERT_TRUE(tree_.Insert(Anon(3 * kMiB, 4 * kMiB, Prot::kRead)).ok());
  auto free = tree_.FindFreeRegion(kMiB, kMiB, kPageSize, kGiB);
  ASSERT_TRUE(free.ok());
  EXPECT_EQ(free.value(), 2 * kMiB);
}

TEST_F(VmaTest, ProtectSplitsRegion) {
  ASSERT_TRUE(tree_.Insert(Anon(0, 8 * kPageSize)).ok());
  ASSERT_TRUE(tree_.Protect(2 * kPageSize, 2 * kPageSize, Prot::kRead).ok());
  EXPECT_EQ(tree_.Find(0)->prot, Prot::kReadWrite);
  EXPECT_EQ(tree_.Find(2 * kPageSize)->prot, Prot::kRead);
  EXPECT_EQ(tree_.Find(4 * kPageSize)->prot, Prot::kReadWrite);
  EXPECT_EQ(tree_.size(), 3u);
}

}  // namespace
}  // namespace o1mem
