#include "src/mm/swap.h"

#include <gtest/gtest.h>

#include "src/support/units.h"

namespace o1mem {
namespace {

class SwapTest : public ::testing::Test {
 protected:
  SimContext ctx_;
  PhysicalMemory phys_{&ctx_, 4 * kMiB, 0};
  SwapDevice swap_{&ctx_, &phys_, /*capacity_pages=*/4};
};

TEST_F(SwapTest, RoundTripPreservesContents) {
  std::vector<uint8_t> data(kPageSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_TRUE(phys_.Write(0, data).ok());
  auto slot = swap_.SwapOut(0);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(phys_.Zero(0, kPageSize).ok());
  ASSERT_TRUE(swap_.SwapIn(slot.value(), 0).ok());
  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(phys_.Read(0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(swap_.used_slots(), 0u);
}

TEST_F(SwapTest, SlotConsumedBySwapIn) {
  auto slot = swap_.SwapOut(0);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(swap_.SwapIn(slot.value(), kPageSize).ok());
  EXPECT_FALSE(swap_.SwapIn(slot.value(), kPageSize).ok());
}

TEST_F(SwapTest, CapacityEnforced) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(swap_.SwapOut(static_cast<Paddr>(i) * kPageSize).ok());
  }
  auto r = swap_.SwapOut(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(SwapTest, DiscardFreesSlot) {
  auto slot = swap_.SwapOut(0);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(swap_.Discard(slot.value()).ok());
  EXPECT_EQ(swap_.used_slots(), 0u);
  EXPECT_FALSE(swap_.Discard(slot.value()).ok());
}

TEST_F(SwapTest, SwapIsSlow) {
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(swap_.SwapOut(0).ok());
  // Swapping one page costs on the order of 100 microseconds, vastly more
  // than any in-memory operation.
  EXPECT_GT(ctx_.now() - t0, 100000u);
}

}  // namespace
}  // namespace o1mem
