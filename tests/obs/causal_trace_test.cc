// Request-scoped causal tracing: the serving stack tags spans with
// (trace id, span id, parent span), stages complete trees per request, and
// keeps tail exemplars in a fixed reservoir -- deterministically (identical
// runs retain byte-identical trees), in O(1) memory, and at zero simulated
// cost (the traced run's clock and counters are bit-identical to the
// untraced run).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/chaos/shard_service.h"
#include "src/obs/exemplar.h"

namespace o1mem {
namespace {

TraceEvent Ev(uint64_t trace_id, uint32_t span, uint32_t parent, uint64_t start) {
  return TraceEvent{.start_cycles = start,
                    .duration_cycles = 10,
                    .operand_bytes = 64,
                    .trace_id = trace_id,
                    .span_id = span,
                    .parent_span = parent,
                    .kind = TraceKind::kServiceOp,
                    .cpu = 0,
                    .instant = 0,
                    .size_class = SizeClass::k4K};
}

TEST(TraceStagerTest, ClaimsAppendsAndReleasesSlots) {
  TraceStager stager(2, 4);
  EXPECT_EQ(stager.capacity(), 2u);
  EXPECT_TRUE(stager.Begin(11));
  EXPECT_TRUE(stager.Begin(22));
  EXPECT_FALSE(stager.Begin(33));  // pool exhausted
  EXPECT_FALSE(stager.Begin(11));  // duplicate id
  EXPECT_EQ(stager.misses(), 2u);

  stager.Append(Ev(11, 2, 1, 100));
  stager.Append(Ev(11, 3, 1, 200));
  stager.Append(Ev(99, 2, 1, 300));  // unstaged trace: dropped silently
  const TraceStager::Slot* slot = stager.Find(11);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->count, 2u);
  EXPECT_EQ(slot->overflow, 0u);

  stager.Release(11);
  EXPECT_EQ(stager.Find(11), nullptr);
  EXPECT_TRUE(stager.Begin(33));  // slot recycled
  EXPECT_EQ(stager.staged(), 2u);
}

TEST(TraceStagerTest, OverflowCountsBeyondSlotCapacity) {
  TraceStager stager(1, 2);
  ASSERT_TRUE(stager.Begin(7));
  for (uint32_t i = 0; i < 5; ++i) {
    stager.Append(Ev(7, 2 + i, 1, i));
  }
  const TraceStager::Slot* slot = stager.Find(7);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->count, 2u);     // first two kept
  EXPECT_EQ(slot->overflow, 3u);  // rest counted, not stored
}

TEST(ExemplarReservoirTest, OverwritesOldestPerBucket) {
  ExemplarReservoir reservoir(/*per_bucket=*/2, /*max_events=*/8);
  TraceStager stager(1, 8);
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(stager.Begin(id));
    stager.Append(Ev(id, 2, 1, id * 100));
    TraceEvent root = Ev(id, 1, 0, id * 100);
    root.kind = TraceKind::kKvGet;
    reservoir.Keep(root, *stager.Find(id));
    stager.Release(id);
  }
  EXPECT_EQ(reservoir.kept_total(), 5u);
  std::vector<uint64_t> ids;
  reservoir.ForEach([&ids](const Exemplar& e) { ids.push_back(e.trace_id); });
  // Bucket holds 2: the two newest, oldest first.
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 4u);
  EXPECT_EQ(ids[1], 5u);

  const std::vector<Exemplar> drained = reservoir.Drain();
  EXPECT_EQ(drained.size(), 2u);
  std::vector<uint64_t> after;
  reservoir.ForEach([&after](const Exemplar& e) { after.push_back(e.trace_id); });
  EXPECT_TRUE(after.empty());
}

TEST(ExemplarReservoirTest, TruncatesWideTreesAndCountsDrops) {
  ExemplarReservoir reservoir(/*per_bucket=*/1, /*max_events=*/2);
  TraceStager stager(1, 4);
  ASSERT_TRUE(stager.Begin(9));
  for (uint32_t i = 0; i < 6; ++i) {
    stager.Append(Ev(9, 2 + i, 1, i));  // 4 staged + 2 overflow
  }
  reservoir.Keep(Ev(9, 1, 0, 0), *stager.Find(9));
  reservoir.ForEach([](const Exemplar& e) {
    EXPECT_EQ(e.events.size(), 2u);       // truncated to max_events
    EXPECT_EQ(e.events_dropped, 2u + 2u);  // slot overflow + truncation
  });
}

// --- service-level: the whole artifact, end to end -------------------------

SystemConfig ServiceMachine(bool traced) {
  SystemConfig config;
  config.machine.dram_bytes = 64 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  config.machine.smp.num_cpus = 2;
  if (traced) {
    config.machine.obs.histograms = true;
    config.machine.obs.trace = true;
    config.machine.obs.exemplars = true;
    config.machine.obs.metrics = true;
  }
  return config;
}

// Bursty open loop over capacity: long admission waits and client retries,
// so the tail has structure worth explaining.
ShardServiceConfig BurstService() {
  ShardServiceConfig config;
  config.shards = 3;
  config.shard_bytes = 64 * kKiB;
  config.record_bytes = 64;
  config.ops = 1500;
  config.arrival.enabled = true;
  config.arrival.kind = ArrivalConfig::Kind::kBurst;
  config.arrival.rate = 24.0;
  config.arrival.burst_ticks = 40;
  config.overload = OverloadConfig::Protected();
  return config;
}

struct TracedRun {
  ShardServiceReport report;
  uint64_t cycles = 0;
  EventCounters counters;
  std::vector<Exemplar> exemplars;
  std::vector<MetricSample> metrics;
  TailSnapshot tail;
};

TracedRun RunTraced(bool traced) {
  System sys(ServiceMachine(traced));
  ShardedKvService service(sys, BurstService());
  TracedRun out;
  out.report = service.Run();
  out.cycles = sys.ctx().now();
  out.counters = sys.ctx().counters();
  Observer& obs = sys.machine().observer();
  if (obs.exemplars() != nullptr) {
    obs.exemplars()->ForEach([&out](const Exemplar& e) { out.exemplars.push_back(e); });
  }
  if (obs.metrics() != nullptr) {
    out.metrics = obs.metrics()->Snapshot();
  }
  out.tail = obs.tail();
  return out;
}

TEST(CausalTraceTest, TracedServiceRunIsCycleNeutral) {
  // The acceptance bar: arming trace + exemplars + metrics + histograms
  // must not move the simulated clock, any event counter, or any report
  // number relative to the all-off run.
  const TracedRun off = RunTraced(false);
  const TracedRun on = RunTraced(true);
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(std::memcmp(&off.counters, &on.counters, sizeof(EventCounters)), 0);
  EXPECT_EQ(off.report.ops_attempted, on.report.ops_attempted);
  EXPECT_EQ(off.report.ops_ok, on.report.ops_ok);
  EXPECT_EQ(off.report.retries, on.report.retries);
  EXPECT_EQ(off.report.overload.served, on.report.overload.served);
  EXPECT_EQ(off.report.overload.sheds, on.report.overload.sheds);
  EXPECT_EQ(off.report.run_us, on.report.run_us);
  EXPECT_EQ(off.report.ticks, on.report.ticks);
  // The tail snapshot is service-side accounting, identical either way.
  EXPECT_EQ(off.report.tail.p999_us, on.report.tail.p999_us);
  EXPECT_EQ(off.report.tail.top_component, on.report.tail.top_component);
  EXPECT_GT(off.cycles, 0u);
  EXPECT_FALSE(on.exemplars.empty());  // and the traced run kept trees
}

TEST(CausalTraceTest, ExemplarTreesAreWellFormed) {
  const TracedRun run = RunTraced(true);
  ASSERT_FALSE(run.exemplars.empty());
  for (const Exemplar& e : run.exemplars) {
    EXPECT_NE(e.trace_id, 0u);
    EXPECT_GT(e.duration_cycles, 0u);
    ASSERT_FALSE(e.events.empty());
    std::set<uint32_t> spans;
    bool saw_root = false;
    for (const TraceEvent& ev : e.events) {
      EXPECT_EQ(ev.trace_id, e.trace_id);  // one tree, one trace
      EXPECT_TRUE(spans.insert(ev.span_id).second) << "duplicate span id";
      if (ev.span_id == 1) {
        saw_root = true;
        EXPECT_EQ(ev.parent_span, 0u);
        EXPECT_EQ(ev.kind, e.kind);
      }
    }
    EXPECT_TRUE(saw_root);
    // Every non-root event parents onto another span of the same tree (the
    // parent completes after its children, so parents may appear later).
    for (const TraceEvent& ev : e.events) {
      if (ev.span_id != 1) {
        EXPECT_TRUE(spans.count(ev.parent_span) != 0)
            << "span " << ev.span_id << " orphaned (parent " << ev.parent_span << ")";
      }
    }
  }
}

TEST(CausalTraceTest, ExemplarsReplayByteIdentically) {
  // Same workload, same seeds => the reservoir retains the same trees in
  // the same order, byte for byte. This is what makes a p999 exemplar a
  // *replayable* artifact rather than a lucky sample.
  const TracedRun a = RunTraced(true);
  const TracedRun b = RunTraced(true);
  ASSERT_EQ(a.exemplars.size(), b.exemplars.size());
  ASSERT_FALSE(a.exemplars.empty());
  for (size_t i = 0; i < a.exemplars.size(); ++i) {
    const Exemplar& ea = a.exemplars[i];
    const Exemplar& eb = b.exemplars[i];
    EXPECT_EQ(ea.trace_id, eb.trace_id);
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.start_cycles, eb.start_cycles);
    EXPECT_EQ(ea.duration_cycles, eb.duration_cycles);
    EXPECT_EQ(ea.events_dropped, eb.events_dropped);
    ASSERT_EQ(ea.events.size(), eb.events.size());
    EXPECT_EQ(std::memcmp(ea.events.data(), eb.events.data(),
                          ea.events.size() * sizeof(TraceEvent)),
              0);
  }
  // The metrics ring replays too.
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  EXPECT_EQ(std::memcmp(a.metrics.data(), b.metrics.data(),
                        a.metrics.size() * sizeof(MetricSample)),
            0);
}

TEST(CausalTraceTest, MetricsRingSamplesEveryTick) {
  const TracedRun run = RunTraced(true);
  ASSERT_FALSE(run.metrics.empty());
  // One sample per supervisor tick, ticks strictly increasing, stamps
  // nondecreasing, and the queue-depth signal actually moved under burst.
  uint64_t max_depth = 0;
  for (size_t i = 0; i < run.metrics.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(run.metrics[i].tick, run.metrics[i - 1].tick);
      EXPECT_GE(run.metrics[i].cycles, run.metrics[i - 1].cycles);
    }
    max_depth = std::max<uint64_t>(max_depth, run.metrics[i].queue_depth);
  }
  EXPECT_GT(max_depth, 0u);
  EXPECT_EQ(run.metrics.size(), static_cast<size_t>(run.report.ticks));
}

TEST(CausalTraceTest, TailSnapshotPublishedToObserver) {
  const TracedRun run = RunTraced(true);
  EXPECT_TRUE(run.tail.valid);
  EXPECT_GT(run.tail.p999_us, 0.0);
  EXPECT_GE(run.tail.blame_coverage, 0.0);
  EXPECT_LE(run.tail.blame_coverage, 1.0);
  EXPECT_FALSE(run.tail.top_component.empty());
  EXPECT_EQ(run.tail.shards.size(), 3u);
  // Report-side copy matches what the observer republishes.
  EXPECT_EQ(run.tail.p999_us, run.report.tail.p999_us);
}

TEST(CausalTraceTest, ProcSnapshotHasTailstatSection) {
  System sys(ServiceMachine(true));
  ShardedKvService service(sys, BurstService());
  (void)service.Run();
  const std::string snap = sys.DumpProcSnapshot();
  EXPECT_NE(snap.find("== tailstat =="), std::string::npos) << snap;
  EXPECT_NE(snap.find("p999_us"), std::string::npos);
  EXPECT_NE(snap.find("top "), std::string::npos);
}

TEST(CausalTraceTest, ReservoirMemoryIsBoundedUnderLongRuns) {
  // Run a longer campaign than the reservoir could ever hold and check the
  // retained state stays within the configured bounds.
  System sys(ServiceMachine(true));
  ShardServiceConfig config = BurstService();
  config.ops = 4000;
  ShardedKvService service(sys, config);
  (void)service.Run();
  Observer& obs = sys.machine().observer();
  ASSERT_NE(obs.exemplars(), nullptr);
  const uint32_t per_bucket = obs.config().exemplar_per_bucket;
  const uint32_t max_events = obs.config().exemplar_max_events;
  size_t total = 0;
  obs.exemplars()->ForEach([&](const Exemplar& e) {
    ++total;
    EXPECT_LE(e.events.size(), max_events);
  });
  EXPECT_LE(total, static_cast<size_t>(kTraceKindCount) * kSizeClassCount * per_bucket);
  EXPECT_GT(obs.exemplars()->kept_total(), total);  // it did overwrite
  // The stager pool drained back to empty: every request released its slot.
  ASSERT_NE(obs.stager(), nullptr);
  EXPECT_EQ(obs.stager()->staged(), 0u);
}

}  // namespace
}  // namespace o1mem
