#include "src/obs/trace_ring.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

TraceEvent Ev(uint64_t start) {
  TraceEvent e;
  e.start_cycles = start;
  e.kind = TraceKind::kMmap;
  return e;
}

TEST(TraceRingTest, FillsThenOverwritesOldest) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    ring.Push(Ev(i));
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_pushed(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, events 0 and 1 overwritten.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].start_cycles, 2 + i);
  }
}

TEST(TraceRingTest, PartialFillSnapshotsInOrder) {
  TraceRing ring(8);
  ring.Push(Ev(10));
  ring.Push(Ev(11));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start_cycles, 10u);
  EXPECT_EQ(events[1].start_cycles, 11u);
}

TEST(TraceRingTest, DrainResetsForReuse) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 9; ++i) {
    ring.Push(Ev(i));
  }
  const auto first = ring.Drain();
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_pushed(), 0u);
  ring.Push(Ev(100));
  const auto second = ring.Snapshot();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].start_cycles, 100u);
}

TEST(TraceRingTest, ZeroCapacityClampsToOneSlot) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Push(Ev(1));
  ring.Push(Ev(2));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].start_cycles, 2u);
}

TEST(TraceRingTest, MemoryIsCapacityTimesSlotSize) {
  // The O(1)-memory contract: the slot is 48 bytes (32 + the causal-trace
  // triple) and the buffer never grows past construction, no matter how
  // much is pushed.
  static_assert(sizeof(TraceEvent) == 48);
  TraceRing ring(16);
  for (uint64_t i = 0; i < 10000; ++i) {
    ring.Push(Ev(i));
  }
  EXPECT_EQ(ring.capacity(), 16u);
  EXPECT_EQ(ring.size(), 16u);
}

}  // namespace
}  // namespace o1mem
