// End-to-end observability: the observer sees the workload, costs it
// nothing, and stays within its fixed memory no matter how long the
// simulation runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/os/system.h"
#include "src/support/check.h"

namespace o1mem {
namespace {

struct RunResult {
  uint64_t cycles = 0;
  EventCounters counters;
};

// A workload touching every instrumented subsystem: syscalls, demand
// faults, PMFS journal commits, a FOM map, and a crash (journal replay).
RunResult RunWorkload(SystemConfig config) {
  System sys(config);
  auto proc = sys.Launch(Backend::kBaseline);
  O1_CHECK(proc.ok());
  auto populated = sys.Mmap(**proc, MmapArgs{.length = kMiB, .populate = true});
  O1_CHECK(populated.ok());
  auto demand = sys.Mmap(**proc, MmapArgs{.length = 64 * kKiB});
  O1_CHECK(demand.ok());
  O1_CHECK(sys.UserTouch(**proc, *demand, 64 * kKiB, AccessType::kWrite).ok());
  auto fd = sys.Creat(**proc, sys.pmfs(), "/obs/file", FileFlags{.persistent = true});
  O1_CHECK(fd.ok());
  O1_CHECK(sys.Ftruncate(**proc, *fd, 256 * kKiB).ok());
  std::vector<uint8_t> buf(4 * kKiB, 7);
  O1_CHECK(sys.Pwrite(**proc, *fd, 0, buf).ok());

  auto fom_proc = sys.Launch(Backend::kFom);
  O1_CHECK(fom_proc.ok());
  auto seg = sys.fom().CreateSegment("/obs/seg", 8 * kMiB);
  O1_CHECK(seg.ok());
  O1_CHECK(sys.fom().Map((*fom_proc)->fom(), *seg, Prot::kReadWrite).ok());

  O1_CHECK(sys.Crash().ok());
  return RunResult{sys.ctx().now(), sys.ctx().counters()};
}

SystemConfig ObsConfigOn() {
  SystemConfig config;
  config.machine.obs.trace = true;
  config.machine.obs.histograms = true;
  return config;
}

TEST(ObsSystemTest, ObserverIsCycleNeutral) {
  // The acceptance bar for the whole subsystem: with tracing and histograms
  // on, the simulated clock and every event counter are bit-identical to
  // the default-off run. Observation cannot perturb what it measures.
  const RunResult off = RunWorkload(SystemConfig());
  const RunResult on = RunWorkload(ObsConfigOn());
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(std::memcmp(&off.counters, &on.counters, sizeof(EventCounters)), 0);
  EXPECT_GT(off.cycles, 0u);
}

TEST(ObsSystemTest, RingCapturesWorkloadKinds) {
  System sys(ObsConfigOn());
  auto proc = sys.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto demand = sys.Mmap(**proc, MmapArgs{.length = 64 * kKiB});
  ASSERT_TRUE(demand.ok());
  ASSERT_TRUE(sys.UserTouch(**proc, *demand, 64 * kKiB, AccessType::kWrite).ok());
  auto fd = sys.Creat(**proc, sys.pmfs(), "/obs/file", FileFlags{.persistent = true});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys.Ftruncate(**proc, *fd, 64 * kKiB).ok());
  auto fom_proc = sys.Launch(Backend::kFom);
  ASSERT_TRUE(fom_proc.ok());
  auto seg = sys.fom().CreateSegment("/obs/seg", 8 * kMiB);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(sys.fom().Map((*fom_proc)->fom(), *seg, Prot::kReadWrite).ok());
  ASSERT_TRUE(sys.Crash().ok());

  const TraceRing* ring = sys.machine().observer().ring();
  ASSERT_NE(ring, nullptr);
  const auto events = ring->Snapshot();
  auto has = [&events](TraceKind kind) {
    return std::any_of(events.begin(), events.end(),
                       [kind](const TraceEvent& e) { return e.kind == kind; });
  };
  EXPECT_TRUE(has(TraceKind::kLaunch));
  EXPECT_TRUE(has(TraceKind::kMmap));
  EXPECT_TRUE(has(TraceKind::kFault));
  EXPECT_TRUE(has(TraceKind::kJournalCommit));
  EXPECT_TRUE(has(TraceKind::kFomMap));
  EXPECT_TRUE(has(TraceKind::kCrash));
  EXPECT_TRUE(has(TraceKind::kJournalReplay));

  // Spans carry the operand and its class; stamps never run backwards.
  const auto mmap_it = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.kind == TraceKind::kMmap;
  });
  ASSERT_NE(mmap_it, events.end());
  EXPECT_EQ(mmap_it->operand_bytes, 64 * kKiB);
  EXPECT_EQ(mmap_it->size_class, SizeClass::k2M);
  EXPECT_EQ(mmap_it->instant, 0);
  // Events land in completion order (a nested fault finishes inside its
  // mmap), so end stamps -- not start stamps -- are nondecreasing.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_cycles + events[i - 1].duration_cycles,
              events[i].start_cycles + events[i].duration_cycles);
  }
}

TEST(ObsSystemTest, CategoryMaskFiltersRing) {
  SystemConfig config;
  config.machine.obs.trace = true;
  config.machine.obs.categories = kCatFault;
  System sys(config);
  auto proc = sys.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  auto demand = sys.Mmap(**proc, MmapArgs{.length = 64 * kKiB});
  ASSERT_TRUE(demand.ok());
  ASSERT_TRUE(sys.UserTouch(**proc, *demand, 64 * kKiB, AccessType::kWrite).ok());

  const auto events = sys.machine().observer().ring()->Snapshot();
  ASSERT_FALSE(events.empty());
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.kind, TraceKind::kFault);
  }
}

TEST(ObsSystemTest, RingStaysBoundedUnderLongRuns) {
  SystemConfig config;
  config.machine.obs.trace = true;
  config.machine.obs.ring_capacity = 8;
  System sys(config);
  auto proc = sys.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  for (int i = 0; i < 100; ++i) {
    auto addr = sys.Mmap(**proc, MmapArgs{.length = 4 * kKiB});
    ASSERT_TRUE(addr.ok());
    ASSERT_TRUE(sys.Munmap(**proc, *addr, 4 * kKiB).ok());
  }
  const TraceRing* ring = sys.machine().observer().ring();
  EXPECT_EQ(ring->capacity(), 8u);
  EXPECT_EQ(ring->size(), 8u);
  EXPECT_GT(ring->total_pushed(), 200u);
  EXPECT_EQ(ring->dropped(), ring->total_pushed() - 8u);
}

TEST(ObsSystemTest, HistogramsKeyOnKindAndSizeClass) {
  SystemConfig config;
  config.machine.obs.histograms = true;
  System sys(config);
  auto proc = sys.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(sys.Mmap(**proc, MmapArgs{.length = 4 * kKiB}).ok());
  ASSERT_TRUE(sys.Mmap(**proc, MmapArgs{.length = 16 * kMiB}).ok());

  const HistogramRegistry* hist = sys.machine().observer().hist();
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->At(TraceKind::kMmap, SizeClass::k4K).count(), 1u);
  EXPECT_EQ(hist->At(TraceKind::kMmap, SizeClass::k1G).count(), 1u);
  EXPECT_EQ(hist->At(TraceKind::kMmap, SizeClass::k2M).count(), 0u);
  EXPECT_GT(hist->At(TraceKind::kLaunch, SizeClass::k2M).count() +
                hist->At(TraceKind::kLaunch, SizeClass::k1G).count(),
            0u);
}

TEST(ObsSystemTest, ProcSnapshotHasAllSections) {
  System sys(ObsConfigOn());
  auto proc = sys.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(sys.Mmap(**proc, MmapArgs{.length = kMiB, .populate = true}).ok());

  const std::string snap = sys.DumpProcSnapshot();
  for (const char* section :
       {"== meminfo ==", "== vmstat ==", "== tierstat ==", "== pmfs ==", "== trace ==",
        "== latency =="}) {
    EXPECT_NE(snap.find(section), std::string::npos) << "missing " << section << "\n" << snap;
  }
  // vmstat rows come from the X-macro visitor, so every counter is present.
  EXPECT_NE(snap.find("minor_faults"), std::string::npos);
  EXPECT_NE(snap.find("tier_migrated_bytes"), std::string::npos);
  // The latency section names the op and its class.
  EXPECT_NE(snap.find("mmap"), std::string::npos);
}

TEST(ObsSystemTest, WriteTraceEmitsChromeJson) {
  System sys(ObsConfigOn());
  auto proc = sys.Launch(Backend::kBaseline);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(sys.Mmap(**proc, MmapArgs{.length = kMiB, .populate = true}).ok());

  const std::string path = testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(sys.WriteTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  const std::string json = body.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mmap\""), std::string::npos);
  EXPECT_NE(json.find("\"size_class\":\"2M\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsSystemTest, WriteTraceUnsupportedWhenOff) {
  System sys;
  const Status status = sys.WriteTrace(testing::TempDir() + "/never_written.json");
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace o1mem
