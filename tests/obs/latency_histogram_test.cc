#include "src/obs/latency_histogram.h"

#include <gtest/gtest.h>

#include "src/obs/trace_event.h"
#include "src/support/units.h"

namespace o1mem {
namespace {

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(LatencyHistogramTest, BucketsByBitWidth) {
  LatencyHistogram h;
  h.Record(0);    // bucket 0
  h.Record(1);    // bucket 1
  h.Record(5);    // bucket 3: [4, 7]
  h.Record(7);    // bucket 3
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 13.0 / 4.0);
}

TEST(LatencyHistogramTest, PercentileIsBucketUpperBound) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) {
    h.Record(3);  // bucket 2: [2, 3]
  }
  h.Record(1000);  // bucket 10: [512, 1023]
  EXPECT_EQ(h.Percentile(50), 3u);
  // Rank ceil(0.99 * 100) = 99 still lands in the small bucket...
  EXPECT_EQ(h.Percentile(99), 3u);
  // ...and only p100 reaches the outlier's bucket.
  EXPECT_EQ(h.Percentile(100), 1023u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(LatencyHistogramTest, PercentileZeroIsSmallestBucket) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(100000);
  EXPECT_EQ(h.Percentile(0), 127u);  // bucket 7: [64, 127]
}

TEST(LatencyHistogramTest, MergeAddsCountsAndMax) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(3);
  b.Record(3);
  b.Record(400);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(2), 2u);
  EXPECT_EQ(a.max(), 400u);
}

TEST(HistogramRegistryTest, RecordsPerKindAndClass) {
  HistogramRegistry reg;
  reg.Record(TraceKind::kMmap, SizeClass::k4K, 10);
  reg.Record(TraceKind::kMmap, SizeClass::k1G, 50);
  reg.Record(TraceKind::kFault, SizeClass::k4K, 20);
  EXPECT_EQ(reg.At(TraceKind::kMmap, SizeClass::k4K).count(), 1u);
  EXPECT_EQ(reg.At(TraceKind::kMmap, SizeClass::k1G).count(), 1u);
  EXPECT_EQ(reg.At(TraceKind::kMmap, SizeClass::k2M).count(), 0u);

  int slots = 0;
  reg.ForEachNonEmpty([&](TraceKind kind, SizeClass size_class, const LatencyHistogram& h) {
    ++slots;
    EXPECT_EQ(h.count(), 1u);
    if (kind == TraceKind::kFault) {
      EXPECT_EQ(size_class, SizeClass::k4K);
    }
  });
  EXPECT_EQ(slots, 3);
}

TEST(HistogramRegistryTest, MergeAndReset) {
  HistogramRegistry a;
  HistogramRegistry b;
  a.Record(TraceKind::kRead, SizeClass::k4K, 5);
  b.Record(TraceKind::kRead, SizeClass::k4K, 9);
  a.Merge(b);
  EXPECT_EQ(a.At(TraceKind::kRead, SizeClass::k4K).count(), 2u);
  a.Reset();
  EXPECT_EQ(a.At(TraceKind::kRead, SizeClass::k4K).count(), 0u);
}

TEST(SizeClassTest, BoundariesAreInclusive) {
  EXPECT_EQ(SizeClassOf(0), SizeClass::kNone);
  EXPECT_EQ(SizeClassOf(1), SizeClass::k4K);
  EXPECT_EQ(SizeClassOf(4 * kKiB), SizeClass::k4K);
  EXPECT_EQ(SizeClassOf(4 * kKiB + 1), SizeClass::k2M);
  EXPECT_EQ(SizeClassOf(2 * kMiB), SizeClass::k2M);
  EXPECT_EQ(SizeClassOf(kGiB), SizeClass::k1G);
  EXPECT_EQ(SizeClassOf(kGiB + 1), SizeClass::kHuge);
}

}  // namespace
}  // namespace o1mem
