// AccessMonitor: DAMON-style region sampling. The invariants under test:
// cost is O(regions) and never O(pages), the region count stays inside
// [min_regions (when the file is large enough), max_regions], regions adapt
// (split under heat, merge when uniform), and everything is deterministic.
#include "src/tier/access_monitor.h"

#include <gtest/gtest.h>

#include "src/sim/context.h"

namespace o1mem {
namespace {

TierConfig SmallConfig() {
  TierConfig c;
  c.enabled = true;
  c.aggregation_ticks = 2;
  c.min_regions = 4;
  c.max_regions = 16;
  c.min_region_bytes = 4 * kPageSize;
  return c;
}

constexpr InodeId kInode = 7;

class AccessMonitorTest : public ::testing::Test {
 protected:
  // Drives one full aggregation window with `hot` bytes accessed from the
  // start of the file every tick (len 0 = idle window).
  void Window(AccessMonitor& m, uint64_t hot_len) {
    for (int t = 0; t < config_.aggregation_ticks; ++t) {
      if (hot_len > 0) {
        m.NoteAccess(kInode, 0, hot_len);
      }
      m.Tick();
    }
  }

  SimContext ctx_;
  TierConfig config_ = SmallConfig();
};

TEST_F(AccessMonitorTest, WatchSplitsIntoMinRegionsCoveringFile) {
  AccessMonitor m(&ctx_, config_);
  const uint64_t bytes = 64 * kPageSize;
  m.Watch(kInode, bytes);
  const auto& regions = m.RegionsOf(kInode);
  ASSERT_EQ(regions.size(), 4u);
  EXPECT_EQ(regions.front().lo, 0u);
  EXPECT_EQ(regions.back().hi, bytes);
  for (size_t i = 0; i + 1 < regions.size(); ++i) {
    EXPECT_EQ(regions[i].hi, regions[i + 1].lo) << "gap after region " << i;
  }
}

TEST_F(AccessMonitorTest, SmallFileGetsFewerRegions) {
  AccessMonitor m(&ctx_, config_);
  m.Watch(kInode, config_.min_region_bytes);  // room for exactly one
  EXPECT_EQ(m.RegionsOf(kInode).size(), 1u);
}

TEST_F(AccessMonitorTest, NonBoundaryTickChargesExactlyPerRegion) {
  AccessMonitor m(&ctx_, config_);
  m.Watch(kInode, 64 * kPageSize);
  const uint64_t t0 = ctx_.now();
  EXPECT_FALSE(m.Tick());  // tick 1 of 2: sampling only, no aggregation
  EXPECT_EQ(ctx_.now() - t0, m.TotalRegions() * ctx_.cost().tier_sample_cycles);
  EXPECT_EQ(m.monitor_cycles(), ctx_.now() - t0);
}

TEST_F(AccessMonitorTest, ChargeIsPerRegionNotPerPage) {
  // A 64k-page file under constant full-file heat: the per-tick cost must
  // track the region count and stay bounded by the region budget, never the
  // page count -- the O(1)-memory claim.
  AccessMonitor big(&ctx_, config_);
  const uint64_t bytes = 64 * 1024 * kPageSize;
  big.Watch(kInode, bytes);
  for (int w = 0; w < 20; ++w) {
    Window(big, bytes);
  }
  const uint64_t t0 = ctx_.now();
  EXPECT_FALSE(big.Tick());  // non-boundary tick: sampling only
  const uint64_t per_tick = ctx_.now() - t0;
  EXPECT_EQ(per_tick, big.TotalRegions() * ctx_.cost().tier_sample_cycles);
  EXPECT_LE(per_tick,
            static_cast<uint64_t>(config_.max_regions) * ctx_.cost().tier_sample_cycles);
}

TEST_F(AccessMonitorTest, SampledAccessIncrementsAtAggregation) {
  AccessMonitor m(&ctx_, config_);
  m.Watch(kInode, 64 * kPageSize);
  // Touch the whole file every tick: every region's sampling page is hit.
  for (int w = 0; w < 3; ++w) {
    Window(m, 64 * kPageSize);
  }
  for (const TierRegion& r : m.RegionsOf(kInode)) {
    EXPECT_GE(r.hot_streak, 1) << "region [" << r.lo << "," << r.hi << ")";
    EXPECT_GT(r.heat, 0u);
  }
}

TEST_F(AccessMonitorTest, IdleFileGoesColdAndMergesToFloor) {
  AccessMonitor m(&ctx_, config_);
  m.Watch(kInode, 64 * kPageSize);
  for (int w = 0; w < 6; ++w) {
    Window(m, 64 * kPageSize);  // heat up => splits
  }
  const size_t hot_regions = m.TotalRegions();
  EXPECT_GT(hot_regions, 4u);
  EXPECT_GT(ctx_.counters().tier_region_splits, 0u);
  for (int w = 0; w < 12; ++w) {
    Window(m, 0);  // idle => heat decays, uniform regions merge
  }
  EXPECT_GT(ctx_.counters().tier_region_merges, 0u);
  EXPECT_LT(m.TotalRegions(), hot_regions);
  EXPECT_GE(m.TotalRegions(), 4u);
  for (const TierRegion& r : m.RegionsOf(kInode)) {
    EXPECT_EQ(r.hot_streak, 0);
    EXPECT_GE(r.cold_streak, 1);
  }
}

TEST_F(AccessMonitorTest, RegionBudgetIsNeverExceeded) {
  config_.max_regions = 8;
  AccessMonitor m(&ctx_, config_);
  m.Watch(kInode, 4096 * kPageSize);
  for (int w = 0; w < 30; ++w) {
    Window(m, 4096 * kPageSize);
    EXPECT_LE(m.TotalRegions(), 8u);
  }
  // Uniform heat equilibrates below the cap (equal-heat neighbors re-merge);
  // the budget bound is the invariant, splits prove adaptation ran.
  EXPECT_GE(m.TotalRegions(), 4u);
  EXPECT_GT(ctx_.counters().tier_region_splits, 0u);
}

TEST_F(AccessMonitorTest, SplitBoundariesConvergeTowardHotSubrange) {
  // Only the first 8 pages of a 256-page file are hot. After enough windows
  // the hot streaks must be concentrated in regions overlapping that prefix.
  AccessMonitor m(&ctx_, config_);
  const uint64_t bytes = 256 * kPageSize;
  const uint64_t hot = 8 * kPageSize;
  m.Watch(kInode, bytes);
  for (int w = 0; w < 16; ++w) {
    Window(m, hot);
  }
  int hot_streak_cold_half = 0;
  bool saw_hot_region = false;
  for (const TierRegion& r : m.RegionsOf(kInode)) {
    if (r.lo >= bytes / 2) {
      hot_streak_cold_half += r.hot_streak;
    }
    if (r.lo < hot && r.hot_streak >= 2) {
      saw_hot_region = true;
    }
  }
  EXPECT_TRUE(saw_hot_region);
  EXPECT_EQ(hot_streak_cold_half, 0);
}

TEST_F(AccessMonitorTest, DeterministicAcrossInstances) {
  SimContext ctx2;
  AccessMonitor a(&ctx_, config_);
  AccessMonitor b(&ctx2, config_);
  a.Watch(kInode, 128 * kPageSize);
  b.Watch(kInode, 128 * kPageSize);
  for (int w = 0; w < 8; ++w) {
    Window(a, 16 * kPageSize);
    for (int t = 0; t < config_.aggregation_ticks; ++t) {
      b.NoteAccess(kInode, 0, 16 * kPageSize);
      b.Tick();
    }
  }
  const auto& ra = a.RegionsOf(kInode);
  const auto& rb = b.RegionsOf(kInode);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].lo, rb[i].lo);
    EXPECT_EQ(ra[i].hi, rb[i].hi);
    EXPECT_EQ(ra[i].heat, rb[i].heat);
    EXPECT_EQ(ra[i].hot_streak, rb[i].hot_streak);
  }
  EXPECT_EQ(ctx_.now(), ctx2.now());
}

TEST_F(AccessMonitorTest, UnwatchStopsChargingImmediately) {
  AccessMonitor m(&ctx_, config_);
  m.Watch(kInode, 64 * kPageSize);
  m.Unwatch(kInode);
  EXPECT_FALSE(m.IsWatched(kInode));
  EXPECT_EQ(m.TotalRegions(), 0u);
  const uint64_t t0 = ctx_.now();
  m.Tick();
  m.Tick();
  EXPECT_EQ(ctx_.now(), t0);
}

}  // namespace
}  // namespace o1mem
