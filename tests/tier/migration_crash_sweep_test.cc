// Exhaustive crash-point sweep over the tier migration paths: a persistent
// FOM segment is promoted into the DRAM cache, dirtied through the mapping,
// and written back three different ways (UserFlush on a promoted span,
// madvise(kCold) demotion, and demote-on-Unmap). The golden run counts every
// NVM line-write and flush the migration phase generates; the workload is
// then re-run once per event index with the fault injector armed to cut
// power exactly there. After each crash + recovery the segment must hold
// exactly one of the two patterns the interrupted transition was between --
// never a mix -- because writeback stages the new bytes in a journaled
// side file and publishes them with an atomic rename before touching the
// home extent (copy-then-publish; see MigrationEngine).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/os/system.h"

namespace o1mem {
namespace {

constexpr uint64_t kSegBytes = 16 * kKiB;
constexpr char kSegPath[] = "/t/mig";

ProcessImage TinyImage() {
  return ProcessImage{.code_bytes = kPageSize, .stack_bytes = kPageSize,
                      .heap_bytes = kPageSize};
}

SystemConfig SweepConfig(PersistenceModel persistence) {
  SystemConfig config;
  config.machine.dram_bytes = 16 * kMiB;
  config.machine.nvm_bytes = 32 * kMiB;
  config.machine.persistence = persistence;
  config.machine.tier.enabled = true;
  config.machine.tier.dram_cache_bytes = kMiB;
  config.machine.tier.min_region_bytes = 4 * kPageSize;
  // Two CPUs with batched shootdowns: the sweep's crash points then also cut
  // inside shootdown-batch flush windows (migrations defer their IPIs to one
  // FlushPending at batch end), not just between whole migrations. The sweep
  // is self-calibrating, so the extra events are swept automatically.
  config.machine.smp.num_cpus = 2;
  config.machine.smp.batched_shootdowns = true;
  config.swap_pages = 1024;
  return config;
}

std::vector<uint8_t> Pattern(uint8_t salt) {
  std::vector<uint8_t> data(kSegBytes);
  for (uint64_t i = 0; i < kSegBytes; ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + salt);
  }
  return data;
}

// One step of the migration workload: `run` transitions the durable segment
// contents from the previous op's `after` to this op's `after`. A crash
// mid-op must leave the segment wholly in one of the two.
struct Op {
  std::vector<uint8_t> after;
  std::function<void()> run;
};

struct Driver {
  System& sys;
  Process* proc = nullptr;
  InodeId inode = kInvalidInode;
  Vaddr va = 0;

  // Creates + maps the segment holding Pattern(0), durably flushed. Runs
  // before the swept window, so it is never interrupted.
  void Setup() {
    auto launched = sys.Launch(Backend::kFom, TinyImage());
    O1_CHECK(launched.ok());
    proc = *launched;
    auto seg = sys.fom().CreateSegment(kSegPath, kSegBytes,
                                       SegmentOptions{.flags = {.persistent = true}});
    O1_CHECK(seg.ok());
    inode = *seg;
    auto mapped = sys.fom().Map(proc->fom(), inode, Prot::kReadWrite);
    O1_CHECK(mapped.ok());
    va = *mapped;
    auto data = Pattern(0);
    O1_CHECK(sys.UserWrite(*proc, va, data).ok());
    O1_CHECK(sys.UserFlush(*proc, va, kSegBytes).ok());
  }

  std::vector<Op> MigrationOps() {
    std::vector<Op> ops;
    // Promote, dirty with pattern 1, then flush: the staged writeback is
    // the A -> B transition under test.
    ops.push_back({Pattern(1), [this] {
                     O1_CHECK(sys.MadviseTier(*proc, va, kSegBytes, TierHint::kHot).ok());
                     O1_CHECK(sys.tier()->promoted_bytes() == kSegBytes);
                     auto data = Pattern(1);
                     O1_CHECK(sys.UserWrite(*proc, va, data).ok());
                     O1_CHECK(sys.UserFlush(*proc, va, kSegBytes).ok());
                   }});
    // Dirty again and demote via the madvise path.
    ops.push_back({Pattern(2), [this] {
                     auto data = Pattern(2);
                     O1_CHECK(sys.UserWrite(*proc, va, data).ok());
                     O1_CHECK(sys.MadviseTier(*proc, va, kSegBytes, TierHint::kCold).ok());
                   }});
    // Promote + dirty once more, then Unmap: demote-on-unmap writeback.
    ops.push_back({Pattern(3), [this] {
                     O1_CHECK(sys.MadviseTier(*proc, va, kSegBytes, TierHint::kHot).ok());
                     auto data = Pattern(3);
                     O1_CHECK(sys.UserWrite(*proc, va, data).ok());
                     O1_CHECK(sys.fom().Unmap(proc->fom(), va).ok());
                   }});
    return ops;
  }
};

// The recovered segment must hold exactly `before` or `after` -- any mix is
// torn data, any other bytes are lost data.
void VerifyRecovered(System& sys, const std::vector<uint8_t>& before,
                     const std::vector<uint8_t>& after) {
  ASSERT_TRUE(sys.pmfs().VerifyIntegrity().ok());
  auto scrub = sys.pmfs().Scrub();
  ASSERT_TRUE(scrub.ok());
  ASSERT_EQ(scrub->files_quarantined, 0u);
  ASSERT_EQ(scrub->media_errors_found, 0u);

  auto inode = sys.pmfs().LookupPath(kSegPath);
  ASSERT_TRUE(inode.ok()) << "segment lost";
  std::vector<uint8_t> out(kSegBytes);
  auto read = sys.pmfs().ReadAt(*inode, 0, out);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(*read, kSegBytes);
  ASSERT_TRUE(out == before || out == after)
      << "segment is neither wholly the old nor wholly the new pattern "
      << "(old salt " << int(before[0] & 0xff) << ", new salt " << int(after[0] & 0xff)
      << ", got first byte " << int(out[0]) << ")";

  // The mapped view must agree with the fd view after recovery.
  auto launched = sys.Launch(Backend::kFom, TinyImage());
  ASSERT_TRUE(launched.ok());
  auto va = sys.fom().Map((*launched)->fom(), *inode, Prot::kRead);
  ASSERT_TRUE(va.ok());
  std::vector<uint8_t> mapped(kSegBytes);
  ASSERT_TRUE(sys.UserRead(**launched, *va, mapped).ok());
  ASSERT_EQ(mapped, out);
  ASSERT_TRUE(sys.fom().Unmap((*launched)->fom(), *va).ok());
  ASSERT_TRUE(sys.Exit(*launched).ok());

  // Recovery must drain the writeback staging area: no stranded staging or
  // commit files.
  auto wb = sys.pmfs().List("/.tier/wb");
  if (wb.ok()) {
    for (const DirEntry& e : *wb) {
      ASSERT_TRUE(e.is_dir) << "stranded staging file " << e.name;
    }
  }
}

enum class SweepEvent { kWrite, kFlush };

// Each (persistence, event) pair is split into kShards ctest cases so the
// sweep parallelizes; shard s takes indices s, s+kShards, ...
constexpr int kShards = 4;

struct Param {
  PersistenceModel persistence;
  SweepEvent event;
  int shard = 0;
};

class MigrationCrashSweep : public ::testing::TestWithParam<Param> {};

TEST_P(MigrationCrashSweep, EveryMigrationCrashPointRecovers) {
  const PersistenceModel persistence = GetParam().persistence;
  const SweepEvent event = GetParam().event;
  const auto shard = static_cast<uint64_t>(GetParam().shard);

  // Golden run: bound the migration phase's event window and sanity-check
  // the clean end state.
  uint64_t first = 0;
  uint64_t last = 0;
  {
    System sys(SweepConfig(persistence));
    Driver d{sys};
    d.Setup();
    FaultInjector& fi = sys.machine().fault_injector();
    first = event == SweepEvent::kWrite ? fi.nvm_line_writes() : fi.nvm_flushes();
    auto ops = d.MigrationOps();
    for (Op& op : ops) {
      op.run();
    }
    last = event == SweepEvent::kWrite ? fi.nvm_line_writes() : fi.nvm_flushes();
    // The three staged writebacks of a 16 KiB extent must produce a
    // substantial event window or the sweep is vacuous.
    ASSERT_GT(last - first, event == SweepEvent::kWrite ? 300u : 6u);
    ASSERT_TRUE(sys.Crash().ok());
    VerifyRecovered(sys, Pattern(3), Pattern(3));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  SCOPED_TRACE("sweeping shard " + std::to_string(shard) + " of " +
               std::to_string(last - first) + " migration crash points");

  for (uint64_t index = first + shard; index < last; index += kShards) {
    System sys(SweepConfig(persistence));
    Driver d{sys};
    d.Setup();

    FaultInjector& fi = sys.machine().fault_injector();
    if (persistence == PersistenceModel::kExplicitFlush) {
      // Unflushed lines land partially, not all-revert: the harshest model
      // for a writeback that bypassed the staging protocol.
      fi.EnableTornPersists(/*seed=*/index * 2654435761ull + 1, /*persist_percent=*/50);
    }
    if (event == SweepEvent::kWrite) {
      fi.ArmCrashAtNvmWrite(index);
    } else {
      fi.ArmCrashAtFlush(index);
    }

    std::vector<uint8_t> before = Pattern(0);
    std::vector<uint8_t> after = Pattern(0);
    for (Op& op : d.MigrationOps()) {
      before = after;
      after = op.after;
      op.run();
      if (fi.triggered()) {
        break;
      }
    }
    ASSERT_TRUE(fi.triggered()) << "index " << index << " never fired";
    ASSERT_TRUE(sys.Crash().ok()) << "index " << index;
    {
      SCOPED_TRACE("crash index " + std::to_string(index));
      VerifyRecovered(sys, before, after);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = info.param.persistence == PersistenceModel::kAutoDurable
                         ? "Auto"
                         : "Strict";
  name += info.param.event == SweepEvent::kWrite ? "Writes" : "Flushes";
  name += "Shard" + std::to_string(info.param.shard);
  return name;
}

std::vector<Param> SweepParams() {
  std::vector<Param> params;
  for (PersistenceModel persistence :
       {PersistenceModel::kAutoDurable, PersistenceModel::kExplicitFlush}) {
    for (SweepEvent event : {SweepEvent::kWrite, SweepEvent::kFlush}) {
      for (int shard = 0; shard < kShards; ++shard) {
        params.push_back(Param{persistence, event, shard});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MigrationCrashSweep, ::testing::ValuesIn(SweepParams()),
                         ParamName);

}  // namespace
}  // namespace o1mem
