// TierEngine end to end, through the System syscall surface: promotion after
// sustained heat, madvise-style hints, dirty writeback on UserFlush, demotion
// with durable writeback, fd-I/O coherence, canonical-layout restoration on
// Unmap/Protect, the DRAM watermark, untierable mechanisms, and crash
// recovery of the staging area.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/os/system.h"

namespace o1mem {
namespace {

SystemConfig TierOn(uint64_t cache_bytes = 8 * kMiB) {
  SystemConfig config;
  config.machine.dram_bytes = 64 * kMiB;
  config.machine.nvm_bytes = 128 * kMiB;
  config.machine.tier.enabled = true;
  config.machine.tier.dram_cache_bytes = cache_bytes;
  config.machine.tier.aggregation_ticks = 2;
  config.machine.tier.min_region_bytes = 16 * kPageSize;
  config.machine.tier.promote_after = 1;
  config.machine.tier.demote_after = 2;
  return config;
}

ProcessImage TinyImage() {
  return ProcessImage{.code_bytes = kPageSize, .stack_bytes = kPageSize,
                      .heap_bytes = kPageSize};
}

std::vector<uint8_t> Pattern(uint64_t n, uint8_t salt) {
  std::vector<uint8_t> data(n);
  for (uint64_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(i * 13 + salt);
  }
  return data;
}

class TierEngineTest : public ::testing::Test {
 protected:
  void Boot(const SystemConfig& config) {
    sys_ = std::make_unique<System>(config);
    auto launched = sys_->Launch(Backend::kFom, TinyImage());
    ASSERT_TRUE(launched.ok());
    proc_ = *launched;
  }

  // Creates a persistent segment holding Pattern(bytes, salt), durably
  // flushed, and maps it read-write.
  void MakeSegment(const std::string& path, uint64_t bytes, uint8_t salt,
                   std::optional<MapMechanism> mech = std::nullopt) {
    auto seg = sys_->fom().CreateSegment(path, bytes,
                                         SegmentOptions{.flags = {.persistent = true}});
    ASSERT_TRUE(seg.ok());
    inode_ = *seg;
    auto va = sys_->fom().Map(proc_->fom(), *seg, Prot::kReadWrite,
                              MapOptions{.mechanism = mech});
    ASSERT_TRUE(va.ok());
    va_ = *va;
    bytes_ = bytes;
    auto data = Pattern(bytes, salt);
    ASSERT_TRUE(sys_->UserWrite(*proc_, va_, data).ok());
    ASSERT_TRUE(sys_->UserFlush(*proc_, va_, bytes).ok());
  }

  std::vector<uint8_t> ReadMapped(uint64_t off, uint64_t len) {
    std::vector<uint8_t> out(len);
    O1_CHECK(sys_->UserRead(*proc_, va_ + off, out).ok());
    return out;
  }

  std::vector<uint8_t> ReadHome(uint64_t off, uint64_t len) {
    std::vector<uint8_t> out(len);
    auto read = sys_->pmfs().ReadAt(inode_, off, out);
    O1_CHECK(read.ok() && *read == len);
    return out;
  }

  std::unique_ptr<System> sys_;
  Process* proc_ = nullptr;
  InodeId inode_ = kInvalidInode;
  Vaddr va_ = 0;
  uint64_t bytes_ = 0;
};

TEST_F(TierEngineTest, DisabledSystemHasNoEngine) {
  System sys;  // all defaults: tier off
  EXPECT_EQ(sys.tier(), nullptr);
  EXPECT_EQ(sys.TierTick().code(), StatusCode::kUnsupported);
  EXPECT_EQ(sys.phys_manager().dram_cache_bytes(), 0u);
}

TEST_F(TierEngineTest, CacheZoneIsCarvedWhenEnabled) {
  Boot(TierOn());
  ASSERT_NE(sys_->tier(), nullptr);
  EXPECT_EQ(sys_->phys_manager().dram_cache_bytes(), 8 * kMiB);
  EXPECT_EQ(sys_->phys_manager().dram_cache_used(), 0u);
}

TEST_F(TierEngineTest, SustainedHeatPromotesViaTicks) {
  Boot(TierOn());
  MakeSegment("/t/hot", 4 * kMiB, /*salt=*/1);
  const uint64_t hot_len = 64 * kPageSize;
  // Touch the hot prefix every tick until the policy promotes it.
  for (int t = 0; t < 64 && sys_->ctx().counters().tier_promotions == 0; ++t) {
    ASSERT_TRUE(sys_->UserTouch(*proc_, va_, hot_len, AccessType::kRead).ok());
    ASSERT_TRUE(sys_->TierTick().ok());
  }
  EXPECT_GT(sys_->ctx().counters().tier_promotions, 0u);
  EXPECT_GT(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_GT(sys_->phys_manager().dram_cache_used(), 0u);
  // A promoted extent must overlap the hot prefix, and reads still see the
  // original bytes.
  bool overlaps_hot = false;
  for (const PromotedExtent& e : sys_->tier()->PromotedOf(inode_)) {
    if (e.off < hot_len) {
      overlaps_hot = true;
    }
  }
  EXPECT_TRUE(overlaps_hot);
  EXPECT_EQ(ReadMapped(0, hot_len), Pattern(hot_len, 1));
  const uint64_t hits0 = sys_->ctx().counters().tier_hot_hits_dram;
  ASSERT_TRUE(sys_->UserTouch(*proc_, va_, kPageSize, AccessType::kRead).ok());
  EXPECT_GT(sys_->ctx().counters().tier_hot_hits_dram, hits0);
}

TEST_F(TierEngineTest, ColdPromotedExtentIsDemotedViaTicks) {
  Boot(TierOn());
  MakeSegment("/t/cool", 2 * kMiB, /*salt=*/2);
  ASSERT_TRUE(sys_->tier()->Advise(proc_->fom(), va_, bytes_, TierHint::kHot).ok());
  ASSERT_GT(sys_->tier()->promoted_bytes(), 0u);
  // No accesses at all: cold streaks build and the extents come back home.
  for (int t = 0; t < 64 && sys_->tier()->promoted_bytes() > 0; ++t) {
    ASSERT_TRUE(sys_->TierTick().ok());
  }
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_GT(sys_->ctx().counters().tier_demotions, 0u);
  EXPECT_EQ(sys_->phys_manager().dram_cache_used(), 0u);
  EXPECT_EQ(ReadMapped(0, bytes_), Pattern(bytes_, 2));
}

TEST_F(TierEngineTest, AdviseHotPromotesAndColdWritesBack) {
  Boot(TierOn());
  MakeSegment("/t/adv", 1 * kMiB, /*salt=*/3);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), bytes_);
  // Dirty the promoted copy, then demote: the new bytes must be written back
  // to the NVM home durably.
  auto fresh = Pattern(bytes_, 4);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, fresh).ok());
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kCold).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_GT(sys_->ctx().counters().tier_writeback_bytes, 0u);
  EXPECT_EQ(ReadHome(0, bytes_), fresh);
  EXPECT_EQ(ReadMapped(0, bytes_), fresh);
}

TEST_F(TierEngineTest, UserFlushWritesBackDirtySpanAndStaysPromoted) {
  Boot(TierOn());
  MakeSegment("/t/flush", 1 * kMiB, /*salt=*/5);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  auto fresh = Pattern(bytes_, 6);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, fresh).ok());
  // Home still holds the old bytes; the dirty data lives in the DRAM cache.
  EXPECT_EQ(ReadHome(0, bytes_), Pattern(bytes_, 5));
  ASSERT_TRUE(sys_->UserFlush(*proc_, va_, bytes_).ok());
  EXPECT_EQ(ReadHome(0, bytes_), fresh);
  auto promoted = sys_->tier()->PromotedOf(inode_);
  ASSERT_FALSE(promoted.empty());
  for (const PromotedExtent& e : promoted) {
    EXPECT_FALSE(e.dirty);
  }
  EXPECT_EQ(ReadMapped(0, bytes_), fresh);
}

TEST_F(TierEngineTest, FdWriteDemotesOverlappingExtents) {
  Boot(TierOn());
  MakeSegment("/t/fdio", 1 * kMiB, /*salt=*/7);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  ASSERT_GT(sys_->tier()->promoted_bytes(), 0u);
  auto fd = sys_->Open(*proc_, "/t/fdio");
  ASSERT_TRUE(fd.ok());
  auto patch = Pattern(2 * kPageSize, 8);
  ASSERT_TRUE(sys_->Pwrite(*proc_, *fd, kPageSize, patch).ok());
  // The write went to the home copy, so the promoted extent had to go first.
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_EQ(ReadMapped(kPageSize, 2 * kPageSize), patch);
  ASSERT_TRUE(sys_->Close(*proc_, *fd).ok());
}

TEST_F(TierEngineTest, FdReadOfDirtySpanSeesFreshBytes) {
  Boot(TierOn());
  MakeSegment("/t/fdrd", 1 * kMiB, /*salt=*/9);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  auto fresh = Pattern(bytes_, 10);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, fresh).ok());
  auto fd = sys_->Open(*proc_, "/t/fdrd");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> out(bytes_);
  auto read = sys_->Pread(*proc_, *fd, 0, out);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(*read, bytes_);
  EXPECT_EQ(out, fresh);
  ASSERT_TRUE(sys_->Close(*proc_, *fd).ok());
}

TEST_F(TierEngineTest, UnmapWithPromotedExtentsRestoresCanonicalLayout) {
  Boot(TierOn());
  MakeSegment("/t/unmap", 1 * kMiB, /*salt=*/11);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  auto fresh = Pattern(bytes_, 12);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, fresh).ok());
  ASSERT_TRUE(sys_->fom().Unmap(proc_->fom(), va_).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_EQ(sys_->phys_manager().dram_cache_used(), 0u);
  // Remap: the dirty cache copy was written back on demote, so the segment
  // still holds the freshest bytes.
  auto va = sys_->fom().Map(proc_->fom(), inode_, Prot::kRead);
  ASSERT_TRUE(va.ok());
  va_ = *va;
  EXPECT_EQ(ReadMapped(0, bytes_), fresh);
}

TEST_F(TierEngineTest, ProtectWithPromotedExtentsRestoresThenApplies) {
  Boot(TierOn());
  MakeSegment("/t/prot", 1 * kMiB, /*salt=*/13);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  ASSERT_TRUE(sys_->fom().Protect(proc_->fom(), va_, Prot::kRead).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_EQ(ReadMapped(0, bytes_), Pattern(bytes_, 13));
  std::vector<uint8_t> byte(1, 0xaa);
  EXPECT_FALSE(sys_->UserWrite(*proc_, va_, byte).ok());
}

TEST_F(TierEngineTest, PtSpliceMappingPromotesWholeWindows) {
  SystemConfig config = TierOn();
  config.fom.default_mechanism = MapMechanism::kPtSplice;
  Boot(config);
  MakeSegment("/t/splice", 4 * kMiB, /*salt=*/14);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, 2 * kMiB, TierHint::kHot).ok());
  auto promoted = sys_->tier()->PromotedOf(inode_);
  ASSERT_FALSE(promoted.empty());
  for (const PromotedExtent& e : promoted) {
    EXPECT_TRUE(IsAligned(e.off, kLargePageSize));
    EXPECT_EQ(e.bytes, kLargePageSize);
  }
  auto fresh = Pattern(kLargePageSize, 15);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, fresh).ok());
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, 2 * kMiB, TierHint::kCold).ok());
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_EQ(ReadMapped(0, kLargePageSize), fresh);
  EXPECT_EQ(ReadHome(0, kLargePageSize), fresh);
}

TEST_F(TierEngineTest, PerPageMappingIsUntierable) {
  Boot(TierOn());
  MakeSegment("/t/pp", 1 * kMiB, /*salt=*/16, MapMechanism::kPerPage);
  EXPECT_EQ(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(sys_->tier()->promoted_bytes(), 0u);
}

TEST_F(TierEngineTest, WatermarkBoundsPromotion) {
  SystemConfig config = TierOn(/*cache_bytes=*/2 * kMiB);
  config.machine.tier.dram_watermark = 0.5;
  Boot(config);
  MakeSegment("/t/wm", 4 * kMiB, /*salt=*/17);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  EXPECT_LE(sys_->tier()->promoted_bytes(), kMiB);
  EXPECT_LE(sys_->phys_manager().dram_cache_used(), kMiB);
  EXPECT_EQ(ReadMapped(0, bytes_), Pattern(bytes_, 17));
}

TEST_F(TierEngineTest, MadviseRejectsUnmappedAndBaselineTargets) {
  Boot(TierOn());
  EXPECT_EQ(sys_->MadviseTier(*proc_, 0xdead000, kPageSize, TierHint::kHot).code(),
            StatusCode::kNotFound);
  auto base = sys_->Launch(Backend::kBaseline, TinyImage());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(sys_->MadviseTier(**base, 0, kPageSize, TierHint::kHot).code(),
            StatusCode::kUnsupported);
}

TEST_F(TierEngineTest, CrashDropsPromotedStateAndRecovers) {
  Boot(TierOn());
  MakeSegment("/t/crash", 1 * kMiB, /*salt=*/18);
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  auto fresh = Pattern(bytes_, 19);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, fresh).ok());
  ASSERT_TRUE(sys_->UserFlush(*proc_, va_, bytes_).ok());  // durable point
  ASSERT_TRUE(sys_->Crash().ok());
  ASSERT_TRUE(sys_->pmfs().VerifyIntegrity().ok());
  // The engine was rebuilt, the cache is empty, and the flushed bytes are
  // exactly what the file holds.
  ASSERT_NE(sys_->tier(), nullptr);
  EXPECT_EQ(sys_->phys_manager().dram_cache_used(), 0u);
  auto found = sys_->pmfs().LookupPath("/t/crash");
  ASSERT_TRUE(found.ok());
  inode_ = *found;
  EXPECT_EQ(ReadHome(0, bytes_), fresh);
  // And the rebuilt engine still promotes.
  auto launched = sys_->Launch(Backend::kFom, TinyImage());
  ASSERT_TRUE(launched.ok());
  proc_ = *launched;
  auto va = sys_->fom().Map(proc_->fom(), inode_, Prot::kReadWrite);
  ASSERT_TRUE(va.ok());
  va_ = *va;
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  EXPECT_GT(sys_->tier()->promoted_bytes(), 0u);
  EXPECT_EQ(ReadMapped(0, bytes_), fresh);
}

TEST_F(TierEngineTest, DisabledTierIsCycleIdenticalToSeed) {
  // Same workload on a default machine and on one with the tier struct
  // explicitly defaulted: identical clocks and counters.
  auto run = [](const SystemConfig& config) {
    System sys(config);
    auto launched = sys.Launch(Backend::kFom, TinyImage());
    O1_CHECK(launched.ok());
    Process* proc = *launched;
    auto seg = sys.fom().CreateSegment("/t/seed", kMiB,
                                       SegmentOptions{.flags = {.persistent = true}});
    O1_CHECK(seg.ok());
    auto va = sys.fom().Map(proc->fom(), *seg, Prot::kReadWrite);
    O1_CHECK(va.ok());
    auto data = Pattern(kMiB, 20);
    O1_CHECK(sys.UserWrite(*proc, *va, data).ok());
    O1_CHECK(sys.UserFlush(*proc, *va, kMiB).ok());
    std::vector<uint8_t> out(kMiB);
    O1_CHECK(sys.UserRead(*proc, *va, out).ok());
    O1_CHECK(sys.fom().Unmap(proc->fom(), *va).ok());
    return sys.ctx().now();
  };
  SystemConfig defaulted;
  SystemConfig explicit_off;
  explicit_off.machine.tier = TierConfig{};
  EXPECT_EQ(run(defaulted), run(explicit_off));
}

}  // namespace
}  // namespace o1mem
