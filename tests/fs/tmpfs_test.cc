#include "src/fs/tmpfs.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

class TmpfsTest : public ::testing::Test {
 protected:
  TmpfsTest()
      : machine_(MachineConfig{.dram_bytes = 64 * kMiB, .nvm_bytes = 0}),
        phys_mgr_(&machine_),
        fs_(&machine_, &phys_mgr_, /*quota_bytes=*/16 * kMiB) {}

  Machine machine_;
  PhysManager phys_mgr_;
  Tmpfs fs_;
};

TEST_F(TmpfsTest, CreateLookupUnlink) {
  auto id = fs_.Create("/tmp/a", FileFlags{});
  ASSERT_TRUE(id.ok());
  auto found = fs_.LookupPath("/tmp/a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), id.value());
  ASSERT_TRUE(fs_.Unlink("/tmp/a").ok());
  EXPECT_FALSE(fs_.LookupPath("/tmp/a").ok());
  EXPECT_FALSE(fs_.Unlink("/tmp/a").ok());
}

TEST_F(TmpfsTest, RejectsDuplicatesAndPersistentFiles) {
  ASSERT_TRUE(fs_.Create("/x", FileFlags{}).ok());
  EXPECT_FALSE(fs_.Create("/x", FileFlags{}).ok());
  EXPECT_FALSE(fs_.Create("/p", FileFlags{.persistent = true}).ok());
  EXPECT_FALSE(fs_.Create("", FileFlags{}).ok());
}

TEST_F(TmpfsTest, WriteReadRoundTrip) {
  auto id = fs_.Create("/data", FileFlags{});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i % 255);
  }
  auto wrote = fs_.WriteAt(*id, 100, data);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), data.size());
  std::vector<uint8_t> out(data.size());
  auto read = fs_.ReadAt(*id, 100, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data.size());
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs_.Stat(*id)->size, 100 + data.size());
}

TEST_F(TmpfsTest, ReadPastEofTruncated) {
  auto id = fs_.Create("/f", FileFlags{});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(100, 7);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());
  std::vector<uint8_t> out(200, 0xff);
  auto read = fs_.ReadAt(*id, 50, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 50u);
  auto nothing = fs_.ReadAt(*id, 100, out);
  ASSERT_TRUE(nothing.ok());
  EXPECT_EQ(nothing.value(), 0u);
}

TEST_F(TmpfsTest, HolesReadAsZero) {
  auto id = fs_.Create("/sparse", FileFlags{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.Resize(*id, kMiB).ok());
  // Nothing allocated yet (lazy).
  EXPECT_EQ(fs_.Stat(*id)->allocated_bytes, 0u);
  std::vector<uint8_t> out(64, 0xff);
  ASSERT_TRUE(fs_.ReadAt(*id, kMiB / 2, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST_F(TmpfsTest, BackingAllocatedPerPageOnDemand) {
  auto id = fs_.Create("/lazy", FileFlags{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.Resize(*id, 8 * kPageSize).ok());
  auto p0 = fs_.GetOrAllocPage(*id, 0);
  auto p1 = fs_.GetOrAllocPage(*id, kPageSize);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(fs_.Stat(*id)->allocated_bytes, 2 * kPageSize);
  // Idempotent: same page returned.
  EXPECT_EQ(fs_.GetOrAllocPage(*id, 0).value(), p0.value());
  EXPECT_FALSE(fs_.GetOrAllocPage(*id, 8 * kPageSize).ok());
}

TEST_F(TmpfsTest, TruncateFreesPages) {
  auto id = fs_.Create("/t", FileFlags{});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(8 * kPageSize, 1);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());
  const uint64_t free_before = phys_mgr_.free_bytes();
  ASSERT_TRUE(fs_.Resize(*id, 2 * kPageSize).ok());
  EXPECT_EQ(phys_mgr_.free_bytes(), free_before + 6 * kPageSize);
  EXPECT_EQ(fs_.Stat(*id)->allocated_bytes, 2 * kPageSize);
}

TEST_F(TmpfsTest, QuotaEnforced) {
  auto id = fs_.Create("/big", FileFlags{});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> chunk(kMiB, 1);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(fs_.WriteAt(*id, static_cast<uint64_t>(i) * kMiB, chunk).ok()) << i;
  }
  auto over = fs_.WriteAt(*id, 16 * kMiB, chunk);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kQuotaExceeded);
  EXPECT_EQ(fs_.free_bytes(), 0u);
}

TEST_F(TmpfsTest, UnlinkedButOpenFileSurvivesUntilClose) {
  auto id = fs_.Create("/held", FileFlags{});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(100, 9);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());
  ASSERT_TRUE(fs_.AddOpenRef(*id).ok());
  ASSERT_TRUE(fs_.Unlink("/held").ok());
  // Still readable through the open ref (classic POSIX behaviour; also the
  // paper's whole-file reference counting).
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(fs_.ReadAt(*id, 0, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(fs_.DropOpenRef(*id).ok());
  EXPECT_FALSE(fs_.ReadAt(*id, 0, out).ok());
}

TEST_F(TmpfsTest, MapRefKeepsFileAlive) {
  auto id = fs_.Create("/mapped", FileFlags{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.AddMapRef(*id).ok());
  ASSERT_TRUE(fs_.Unlink("/mapped").ok());
  EXPECT_TRUE(fs_.Stat(*id).ok());
  ASSERT_TRUE(fs_.DropMapRef(*id).ok());
  EXPECT_FALSE(fs_.Stat(*id).ok());
}

TEST_F(TmpfsTest, RefcountUnderflowRejected) {
  auto id = fs_.Create("/r", FileFlags{});
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(fs_.DropOpenRef(*id).ok());
  EXPECT_FALSE(fs_.DropMapRef(*id).ok());
}

TEST_F(TmpfsTest, ReclaimDiscardableFreesOldestFirst) {
  auto old_file = fs_.Create("/cache/old", FileFlags{.discardable = true});
  ASSERT_TRUE(old_file.ok());
  std::vector<uint8_t> mb(kMiB, 1);
  ASSERT_TRUE(fs_.WriteAt(*old_file, 0, mb).ok());
  machine_.ctx().Charge(1000000);  // time passes
  auto new_file = fs_.Create("/cache/new", FileFlags{.discardable = true});
  ASSERT_TRUE(new_file.ok());
  ASSERT_TRUE(fs_.WriteAt(*new_file, 0, mb).ok());
  auto pinned = fs_.Create("/cache/pinned", FileFlags{.discardable = true});
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(fs_.WriteAt(*pinned, 0, mb).ok());
  ASSERT_TRUE(fs_.AddMapRef(*pinned).ok());  // mapped: not reclaimable

  auto released = fs_.ReclaimDiscardable(kMiB / 2);
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(released.value(), kMiB);
  EXPECT_FALSE(fs_.LookupPath("/cache/old").ok());   // oldest went first
  EXPECT_TRUE(fs_.LookupPath("/cache/new").ok());
  EXPECT_TRUE(fs_.LookupPath("/cache/pinned").ok());
  EXPECT_EQ(machine_.ctx().counters().files_reclaimed, 1u);
}

TEST_F(TmpfsTest, ExtentsViewCoalescesAdjacentFrames) {
  auto id = fs_.Create("/e", FileFlags{});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(4 * kPageSize, 1);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());
  auto extents = fs_.Extents(*id);
  ASSERT_TRUE(extents.ok());
  uint64_t total = 0;
  for (const auto& e : extents.value()) {
    total += e.bytes;
  }
  EXPECT_EQ(total, 4 * kPageSize);
}

TEST_F(TmpfsTest, CrashDropsEverything) {
  auto id = fs_.Create("/gone", FileFlags{});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(100, 1);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_FALSE(fs_.LookupPath("/gone").ok());
  EXPECT_TRUE(fs_.ListPaths().empty());
}

}  // namespace
}  // namespace o1mem
