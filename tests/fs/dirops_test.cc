// Directory operations, hard links, and rename through the two file systems
// and the System syscall layer.
#include <gtest/gtest.h>

#include "src/os/system.h"

namespace o1mem {
namespace {

SystemConfig DirConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 128 * kMiB;
  return config;
}

class DirOpsTest : public ::testing::Test {
 protected:
  DirOpsTest() : sys_(DirConfig()) {
    auto proc = sys_.Launch(Backend::kBaseline);
    O1_CHECK(proc.ok());
    proc_ = *proc;
  }

  System sys_;
  Process* proc_ = nullptr;
};

TEST_F(DirOpsTest, MkdirListRmdirThroughSyscalls) {
  ASSERT_TRUE(sys_.Mkdir(sys_.pmfs(), "/projects").ok());
  ASSERT_TRUE(sys_.Mkdir(sys_.pmfs(), "/projects/alpha").ok());
  ASSERT_TRUE(sys_.Creat(*proc_, sys_.pmfs(), "/projects/alpha/data", FileFlags{}).ok());
  auto entries = sys_.List(sys_.pmfs(), "/projects");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "alpha");
  EXPECT_TRUE((*entries)[0].is_dir);
  EXPECT_EQ(sys_.Rmdir(sys_.pmfs(), "/projects/alpha").code(), StatusCode::kBusy);
  ASSERT_TRUE(sys_.Unlink("/projects/alpha/data").ok());
  EXPECT_TRUE(sys_.Rmdir(sys_.pmfs(), "/projects/alpha").ok());
}

TEST_F(DirOpsTest, RenamePreservesFileContents) {
  auto fd = sys_.Creat(*proc_, sys_.pmfs(), "/logs/app.log", FileFlags{.persistent = true});
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(100, 0x2f);
  ASSERT_TRUE(sys_.Write(*proc_, *fd, data).ok());
  ASSERT_TRUE(sys_.Close(*proc_, *fd).ok());
  ASSERT_TRUE(sys_.Rename("/logs/app.log", "/logs/app.log.1").ok());
  EXPECT_FALSE(sys_.Open(*proc_, "/logs/app.log").ok());
  auto fd2 = sys_.Open(*proc_, "/logs/app.log.1");
  ASSERT_TRUE(fd2.ok());
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(sys_.Pread(*proc_, *fd2, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(DirOpsTest, RenameDirectoryOfSegments) {
  ASSERT_TRUE(sys_.fom().CreateSegment("/app/v1/code", kMiB).ok());
  ASSERT_TRUE(sys_.fom().CreateSegment("/app/v1/data", kMiB).ok());
  ASSERT_TRUE(sys_.Rename("/app/v1", "/app/v2").ok());
  EXPECT_TRUE(sys_.fom().OpenSegment("/app/v2/code").ok());
  EXPECT_TRUE(sys_.fom().OpenSegment("/app/v2/data").ok());
  EXPECT_FALSE(sys_.fom().OpenSegment("/app/v1/code").ok());
}

TEST_F(DirOpsTest, HardLinksShareStorageUntilLastUnlink) {
  auto fd = sys_.Creat(*proc_, sys_.tmpfs(), "/a/orig", FileFlags{});
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(kPageSize, 0x44);
  ASSERT_TRUE(sys_.Write(*proc_, *fd, data).ok());
  ASSERT_TRUE(sys_.Close(*proc_, *fd).ok());
  ASSERT_TRUE(sys_.Link(sys_.tmpfs(), "/a/orig", "/a/alias").ok());
  // One inode, two names.
  EXPECT_EQ(sys_.tmpfs().LookupPath("/a/orig").value(),
            sys_.tmpfs().LookupPath("/a/alias").value());
  EXPECT_EQ(sys_.tmpfs().Stat(*sys_.tmpfs().LookupPath("/a/orig"))->link_count, 2u);
  ASSERT_TRUE(sys_.Unlink("/a/orig").ok());
  // Still readable through the alias.
  auto fd2 = sys_.Open(*proc_, "/a/alias");
  ASSERT_TRUE(fd2.ok());
  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(sys_.Pread(*proc_, *fd2, 0, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(sys_.Close(*proc_, *fd2).ok());
  const uint64_t free_before = sys_.phys_manager().free_bytes();
  ASSERT_TRUE(sys_.Unlink("/a/alias").ok());
  EXPECT_EQ(sys_.phys_manager().free_bytes(), free_before + kPageSize);
}

TEST_F(DirOpsTest, LinkedSegmentSurvivesEitherName) {
  auto seg = sys_.fom().CreateSegment(
      "/segs/primary", 2 * kMiB, SegmentOptions{.flags = FileFlags{.persistent = true}});
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(sys_.Link(sys_.pmfs(), "/segs/primary", "/segs/backup-name").ok());
  ASSERT_TRUE(sys_.Unlink("/segs/primary").ok());
  auto found = sys_.fom().OpenSegment("/segs/backup-name");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *seg);
}

TEST_F(DirOpsTest, PersistentDirectoryStructureSurvivesCrash) {
  ASSERT_TRUE(sys_.Mkdir(sys_.pmfs(), "/db").ok());
  ASSERT_TRUE(sys_.fom()
                  .CreateSegment("/db/tables/users", kMiB,
                                 SegmentOptions{.flags = FileFlags{.persistent = true}})
                  .ok());
  ASSERT_TRUE(sys_.Crash().ok());
  auto entries = sys_.List(sys_.pmfs(), "/db/tables");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "users");
}

TEST_F(DirOpsTest, ListTmpfsRoot) {
  ASSERT_TRUE(sys_.Creat(*proc_, sys_.tmpfs(), "/one", FileFlags{}).ok());
  ASSERT_TRUE(sys_.Mkdir(sys_.tmpfs(), "/two").ok());
  auto entries = sys_.List(sys_.tmpfs(), "/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

}  // namespace
}  // namespace o1mem
