#include "src/fs/block_bitmap.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

class BitmapTest : public ::testing::Test {
 protected:
  SimContext ctx_;
  BlockBitmap bitmap_{&ctx_, 1024};
};

TEST_F(BitmapTest, StartsEmpty) {
  EXPECT_EQ(bitmap_.free_blocks(), 1024u);
  EXPECT_EQ(bitmap_.LargestFreeRun(), 1024u);
  EXPECT_FALSE(bitmap_.IsAllocated(0));
}

TEST_F(BitmapTest, AllocMarksBlocks) {
  auto e = bitmap_.AllocExtent(16);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->count, 16u);
  for (uint64_t b = e->start; b < e->start + 16; ++b) {
    EXPECT_TRUE(bitmap_.IsAllocated(b));
  }
  EXPECT_EQ(bitmap_.free_blocks(), 1024u - 16);
}

TEST_F(BitmapTest, SequentialAllocationsAreContiguousWhenEmpty) {
  auto a = bitmap_.AllocExtent(8);
  auto b = bitmap_.AllocExtent(8);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->start, a->start + 8);  // next-fit packs forward
}

TEST_F(BitmapTest, FreeRestores) {
  auto e = bitmap_.AllocExtent(100);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(bitmap_.FreeExtent(*e).ok());
  EXPECT_EQ(bitmap_.free_blocks(), 1024u);
  EXPECT_FALSE(bitmap_.IsAllocated(e->start));
}

TEST_F(BitmapTest, DoubleFreeRejected) {
  auto e = bitmap_.AllocExtent(4);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(bitmap_.FreeExtent(*e).ok());
  EXPECT_FALSE(bitmap_.FreeExtent(*e).ok());
}

TEST_F(BitmapTest, WrapAroundFindsFreedSpace) {
  // Fill nearly everything, free a hole at the start, then allocate: the
  // next-fit pointer must wrap and find it.
  auto big = bitmap_.AllocExtent(1000);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(bitmap_.FreeExtent(BlockExtent{.start = big->start, .count = 50}).ok());
  ASSERT_TRUE(bitmap_.AllocExtent(24).ok());  // consumes the tail
  auto wrapped = bitmap_.AllocExtent(50);
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped->start, big->start);
}

TEST_F(BitmapTest, FragmentedRequestFails) {
  // Allocate all, free every other block: max run = 1.
  auto all = bitmap_.AllocExtent(1024);
  ASSERT_TRUE(all.ok());
  for (uint64_t b = 0; b < 1024; b += 2) {
    ASSERT_TRUE(bitmap_.FreeExtent(BlockExtent{.start = b, .count = 1}).ok());
  }
  EXPECT_EQ(bitmap_.LargestFreeRun(), 1u);
  EXPECT_FALSE(bitmap_.AllocExtent(2).ok());
  EXPECT_TRUE(bitmap_.AllocExtent(1).ok());
}

TEST_F(BitmapTest, AllocAtMostReturnsBestRun) {
  auto all = bitmap_.AllocExtent(1024);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(bitmap_.FreeExtent(BlockExtent{.start = 100, .count = 10}).ok());
  ASSERT_TRUE(bitmap_.FreeExtent(BlockExtent{.start = 300, .count = 30}).ok());
  auto best = bitmap_.AllocExtentAtMost(100, 1);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->start, 300u);
  EXPECT_EQ(best->count, 30u);
}

TEST_F(BitmapTest, AllocAtMostHonorsMinimum) {
  auto all = bitmap_.AllocExtent(1024);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(bitmap_.FreeExtent(BlockExtent{.start = 0, .count = 3}).ok());
  EXPECT_FALSE(bitmap_.AllocExtentAtMost(100, 4).ok());
  EXPECT_TRUE(bitmap_.AllocExtentAtMost(100, 3).ok());
}

TEST_F(BitmapTest, InvalidRequestsRejected) {
  EXPECT_FALSE(bitmap_.AllocExtent(0).ok());
  EXPECT_FALSE(bitmap_.AllocExtent(4096).ok());
  EXPECT_FALSE(bitmap_.FreeExtent(BlockExtent{.start = 1020, .count = 10}).ok());
  EXPECT_FALSE(bitmap_.AllocExtentAtMost(10, 20).ok());
}

TEST_F(BitmapTest, ResetRebuildsState) {
  ASSERT_TRUE(bitmap_.AllocExtent(500).ok());
  std::vector<bool> rebuilt(1024, false);
  rebuilt[7] = true;
  ASSERT_TRUE(bitmap_.Reset(rebuilt).ok());
  EXPECT_EQ(bitmap_.free_blocks(), 1023u);
  EXPECT_TRUE(bitmap_.IsAllocated(7));
  EXPECT_FALSE(bitmap_.IsAllocated(100));
  EXPECT_FALSE(bitmap_.Reset(std::vector<bool>(10)).ok());
}

TEST_F(BitmapTest, AllocationChargesCycles) {
  const uint64_t t0 = ctx_.now();
  ASSERT_TRUE(bitmap_.AllocExtent(512).ok());
  const uint64_t one_big = ctx_.now() - t0;
  // The same space as 512 singles costs far more than one extent.
  BlockBitmap other(&ctx_, 1024);
  const uint64_t t1 = ctx_.now();
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(other.AllocExtent(1).ok());
  }
  const uint64_t many_small = ctx_.now() - t1;
  EXPECT_GT(many_small, 100 * one_big);
}

}  // namespace
}  // namespace o1mem
