#include "src/fs/extent_tree.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

class ExtentTreeTest : public ::testing::Test {
 protected:
  SimContext ctx_;
  ExtentTree tree_{&ctx_};
};

TEST_F(ExtentTreeTest, InsertAndLookup) {
  ASSERT_TRUE(tree_.Insert(0, 0x10000, 8 * kPageSize).ok());
  auto e = tree_.Lookup(3 * kPageSize + 5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->paddr + (3 * kPageSize + 5 - e->file_offset), 0x10000u + 3 * kPageSize + 5);
  EXPECT_FALSE(tree_.Lookup(8 * kPageSize).has_value());
}

TEST_F(ExtentTreeTest, RejectsOverlap) {
  ASSERT_TRUE(tree_.Insert(kPageSize, 0, kPageSize).ok());
  EXPECT_FALSE(tree_.Insert(0, 0x100000, 2 * kPageSize).ok());
  EXPECT_FALSE(tree_.Insert(kPageSize, 0x100000, kPageSize).ok());
  EXPECT_FALSE(tree_.Insert(0, 0, 0).ok());
}

TEST_F(ExtentTreeTest, MergesContiguousRuns) {
  // Logically and physically adjacent: one extent results.
  ASSERT_TRUE(tree_.Insert(0, 0x10000, kPageSize).ok());
  ASSERT_TRUE(tree_.Insert(kPageSize, 0x10000 + kPageSize, kPageSize).ok());
  EXPECT_EQ(tree_.extent_count(), 1u);
  EXPECT_EQ(tree_.mapped_bytes(), 2 * kPageSize);
}

TEST_F(ExtentTreeTest, NoMergeAcrossPhysicalDiscontinuity) {
  ASSERT_TRUE(tree_.Insert(0, 0x10000, kPageSize).ok());
  ASSERT_TRUE(tree_.Insert(kPageSize, 0x90000, kPageSize).ok());
  EXPECT_EQ(tree_.extent_count(), 2u);
}

TEST_F(ExtentTreeTest, MergeBridgesBothSides) {
  ASSERT_TRUE(tree_.Insert(0, 0x10000, kPageSize).ok());
  ASSERT_TRUE(tree_.Insert(2 * kPageSize, 0x10000 + 2 * kPageSize, kPageSize).ok());
  ASSERT_TRUE(tree_.Insert(kPageSize, 0x10000 + kPageSize, kPageSize).ok());
  EXPECT_EQ(tree_.extent_count(), 1u);
  auto e = tree_.Lookup(0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->bytes, 3 * kPageSize);
}

TEST_F(ExtentTreeTest, TruncateRemovesTail) {
  ASSERT_TRUE(tree_.Insert(0, 0x10000, 4 * kPageSize).ok());
  ASSERT_TRUE(tree_.Insert(4 * kPageSize, 0x90000, 4 * kPageSize).ok());
  auto released = tree_.TruncateFrom(6 * kPageSize);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].paddr, 0x90000u + 2 * kPageSize);
  EXPECT_EQ(released[0].bytes, 2 * kPageSize);
  EXPECT_EQ(tree_.mapped_bytes(), 6 * kPageSize);
  EXPECT_TRUE(tree_.Lookup(5 * kPageSize).has_value());
  EXPECT_FALSE(tree_.Lookup(6 * kPageSize).has_value());
}

TEST_F(ExtentTreeTest, TruncateToZeroReleasesEverything) {
  ASSERT_TRUE(tree_.Insert(0, 0x10000, 4 * kPageSize).ok());
  ASSERT_TRUE(tree_.Insert(4 * kPageSize, 0x90000, kPageSize).ok());
  auto released = tree_.TruncateFrom(0);
  EXPECT_EQ(released.size(), 2u);
  EXPECT_EQ(tree_.extent_count(), 0u);
  EXPECT_EQ(tree_.mapped_bytes(), 0u);
}

TEST_F(ExtentTreeTest, ExtentsReturnedInFileOrder) {
  ASSERT_TRUE(tree_.Insert(8 * kPageSize, 0x40000, kPageSize).ok());
  ASSERT_TRUE(tree_.Insert(0, 0x90000, kPageSize).ok());
  auto extents = tree_.Extents();
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].file_offset, 0u);
  EXPECT_EQ(extents[1].file_offset, 8 * kPageSize);
}

TEST_F(ExtentTreeTest, WellAllocatedFileStaysOneExtentRegardlessOfSize) {
  // The property FOM relies on for O(1) mapping.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree_.Insert(static_cast<uint64_t>(i) * kMiB,
                             0x100000 + static_cast<uint64_t>(i) * kMiB, kMiB)
                    .ok());
  }
  EXPECT_EQ(tree_.extent_count(), 1u);
  EXPECT_EQ(tree_.mapped_bytes(), 64 * kMiB);
}

}  // namespace
}  // namespace o1mem
