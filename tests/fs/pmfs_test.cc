#include "src/fs/pmfs.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

class PmfsTest : public ::testing::Test {
 protected:
  PmfsTest()
      : machine_(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 64 * kMiB}),
        fs_(&machine_, machine_.phys().nvm_base(), 64 * kMiB) {}

  Machine machine_;
  Pmfs fs_;
};

TEST_F(PmfsTest, CreateResizeAllocatesExtentsEagerly) {
  auto id = fs_.Create("/data", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.Resize(*id, 4 * kMiB).ok());
  auto st = fs_.Stat(*id);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 4 * kMiB);
  EXPECT_EQ(st->allocated_bytes, 4 * kMiB);
  // Fresh fs: one contiguous extent.
  EXPECT_EQ(st->extent_count, 1u);
}

TEST_F(PmfsTest, WriteReadRoundTripInNvm) {
  auto id = fs_.Create("/rt", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(3 * kPageSize + 17);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>((i * 31) % 255);
  }
  ASSERT_TRUE(fs_.WriteAt(*id, 1000, data).ok());
  std::vector<uint8_t> out(data.size());
  auto read = fs_.ReadAt(*id, 1000, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
  // Backing is in the NVM tier.
  auto extents = fs_.Extents(*id);
  ASSERT_TRUE(extents.ok());
  ASSERT_FALSE(extents->empty());
  EXPECT_EQ(machine_.phys().TierOf(extents->front().paddr), MemTier::kNvm);
}

TEST_F(PmfsTest, EagerZeroClearsRecycledBlocks) {
  auto a = fs_.Create("/a", FileFlags{});
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> junk(kMiB, 0xAB);
  ASSERT_TRUE(fs_.WriteAt(*a, 0, junk).ok());
  ASSERT_TRUE(fs_.Unlink("/a").ok());
  // New file reuses the same blocks; must read zero.
  auto b = fs_.Create("/b", FileFlags{});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fs_.Resize(*b, kMiB).ok());
  std::vector<uint8_t> out(4096, 0xff);
  ASSERT_TRUE(fs_.ReadAt(*b, 0, out).ok());
  for (uint8_t byte : out) {
    EXPECT_EQ(byte, 0);
  }
}

TEST_F(PmfsTest, TruncateShrinksAndFreesBlocks) {
  auto id = fs_.Create("/t", FileFlags{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.Resize(*id, 2 * kMiB).ok());
  const uint64_t free_before = fs_.free_bytes();
  ASSERT_TRUE(fs_.Resize(*id, kMiB).ok());
  EXPECT_EQ(fs_.free_bytes(), free_before + kMiB);
  EXPECT_EQ(fs_.Stat(*id)->size, kMiB);
}

TEST_F(PmfsTest, FragmentedFsBuildsMultiExtentFiles) {
  // Carve holes: alloc a, b, c, free b, then grow d beyond hole size.
  auto a = fs_.Create("/a", FileFlags{});
  auto b = fs_.Create("/b", FileFlags{});
  auto c = fs_.Create("/c", FileFlags{});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(fs_.Resize(*a, 15 * kMiB).ok());
  ASSERT_TRUE(fs_.Resize(*b, 15 * kMiB).ok());
  // c is sized so the free tail after it (~17.9 MiB of the ~63.9 MiB
  // quota) cannot hold d contiguously; d must span the hole and the tail.
  ASSERT_TRUE(fs_.Resize(*c, 16 * kMiB).ok());
  ASSERT_TRUE(fs_.Unlink("/b").ok());
  auto d = fs_.Create("/d", FileFlags{});
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(fs_.Resize(*d, 18 * kMiB).ok());  // 15 MiB hole + 3 MiB tail
  auto st = fs_.Stat(*d);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->allocated_bytes, 18 * kMiB);
  EXPECT_GE(st->extent_count, 2u);
  // Data still round-trips across the extent seam.
  std::vector<uint8_t> data(kMiB, 0x5c);
  ASSERT_TRUE(fs_.WriteAt(*d, 15 * kMiB - kMiB / 2, data).ok());
  std::vector<uint8_t> out(kMiB);
  ASSERT_TRUE(fs_.ReadAt(*d, 15 * kMiB - kMiB / 2, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(PmfsTest, OutOfSpaceReported) {
  auto id = fs_.Create("/huge", FileFlags{});
  ASSERT_TRUE(id.ok());
  auto s = fs_.Resize(*id, 100 * kMiB);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
}

TEST_F(PmfsTest, PersistentFileSurvivesCrash) {
  auto id = fs_.Create("/keep", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(2 * kPageSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i % 100);
  }
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  auto found = fs_.LookupPath("/keep");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_.ReadAt(*found, 0, out).ok());
  EXPECT_EQ(out, data);  // NVM contents survived the crash
}

TEST_F(PmfsTest, VolatileFileDroppedAtRecovery) {
  auto keep = fs_.Create("/keep", FileFlags{.persistent = true});
  auto temp = fs_.Create("/temp", FileFlags{.persistent = false});
  ASSERT_TRUE(keep.ok() && temp.ok());
  ASSERT_TRUE(fs_.Resize(*temp, 8 * kMiB).ok());
  const uint64_t free_before_crash = fs_.free_bytes();
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_TRUE(fs_.LookupPath("/keep").ok());
  EXPECT_FALSE(fs_.LookupPath("/temp").ok());
  EXPECT_EQ(fs_.free_bytes(), free_before_crash + 8 * kMiB);
}

TEST_F(PmfsTest, SetPersistentFlipsSurvival) {
  auto id = fs_.Create("/flip", FileFlags{.persistent = false});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.WriteAt(*id, 0, std::vector<uint8_t>(10, 3)).ok());
  ASSERT_TRUE(fs_.SetPersistent(*id, true).ok());
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_TRUE(fs_.LookupPath("/flip").ok());
}

TEST_F(PmfsTest, OpenAndMapRefsClearedByCrash) {
  auto id = fs_.Create("/refs", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.AddOpenRef(*id).ok());
  ASSERT_TRUE(fs_.AddMapRef(*id).ok());
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  auto st = fs_.Stat(*fs_.LookupPath("/refs"));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->open_count, 0u);
  EXPECT_EQ(st->map_count, 0u);
}

TEST_F(PmfsTest, TornAllocationReclaimedAtRecovery) {
  const uint64_t free_before = fs_.free_bytes();
  ASSERT_TRUE(fs_.LeakBlocksForTest(100).ok());
  EXPECT_EQ(fs_.free_bytes(), free_before - 100 * kPageSize);
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_EQ(fs_.free_bytes(), free_before);
  EXPECT_TRUE(fs_.VerifyIntegrity().ok());
}

TEST_F(PmfsTest, JournalGrowsWithMetadataOpsAndResetsAtRecovery) {
  const uint64_t before = fs_.journal_records();
  auto id = fs_.Create("/j", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.Resize(*id, kMiB).ok());
  EXPECT_GT(fs_.journal_records(), before);
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_EQ(fs_.journal_records(), 0u);
}

TEST_F(PmfsTest, IntegrityVerificationPasses) {
  auto a = fs_.Create("/a", FileFlags{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(fs_.Resize(*a, 3 * kMiB).ok());
  EXPECT_TRUE(fs_.VerifyIntegrity().ok());
}

TEST_F(PmfsTest, DaxBackingPageInsideExtent) {
  auto id = fs_.Create("/dax", FileFlags{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.Resize(*id, kMiB).ok());
  auto p0 = fs_.GetBackingPage(*id, 0, false);
  auto p1 = fs_.GetBackingPage(*id, 5 * kPageSize, false);
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(p1.value() - p0.value(), 5 * kPageSize);  // contiguous extent
  EXPECT_FALSE(fs_.GetBackingPage(*id, 2 * kMiB, false).ok());
}

class PmfsZeroEpochTest : public ::testing::Test {
 protected:
  PmfsZeroEpochTest()
      : machine_(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 64 * kMiB}),
        fs_(&machine_, machine_.phys().nvm_base(), 64 * kMiB, ZeroPolicy::kZeroEpoch) {}

  Machine machine_;
  Pmfs fs_;
};

TEST_F(PmfsZeroEpochTest, RecycledBlocksStillReadZero) {
  auto a = fs_.Create("/a", FileFlags{});
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> junk(kMiB, 0xAB);
  ASSERT_TRUE(fs_.WriteAt(*a, 0, junk).ok());
  ASSERT_TRUE(fs_.Unlink("/a").ok());
  auto b = fs_.Create("/b", FileFlags{});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fs_.Resize(*b, kMiB).ok());
  std::vector<uint8_t> out(kPageSize, 0xff);
  ASSERT_TRUE(fs_.ReadAt(*b, kPageSize * 3, out).ok());
  for (uint8_t byte : out) {
    EXPECT_EQ(byte, 0);
  }
}

TEST_F(PmfsZeroEpochTest, AllocationIsMuchCheaperThanEagerZero) {
  Machine eager_machine(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 64 * kMiB});
  Pmfs eager(&eager_machine, eager_machine.phys().nvm_base(), 64 * kMiB,
             ZeroPolicy::kEagerZero);
  auto e = eager.Create("/e", FileFlags{});
  ASSERT_TRUE(e.ok());
  const uint64_t t0 = eager_machine.ctx().now();
  ASSERT_TRUE(eager.Resize(*e, 32 * kMiB).ok());
  const uint64_t eager_cost = eager_machine.ctx().now() - t0;

  auto z = fs_.Create("/z", FileFlags{});
  ASSERT_TRUE(z.ok());
  const uint64_t t1 = machine_.ctx().now();
  ASSERT_TRUE(fs_.Resize(*z, 32 * kMiB).ok());
  const uint64_t epoch_cost = machine_.ctx().now() - t1;
  EXPECT_GT(eager_cost, 50 * epoch_cost);
}

// --- Volatile (O_TMPFILE-style) inodes -----------------------------------

TEST_F(PmfsTest, VolatileInodeLivesByRefsAndDiesWithLast) {
  const uint64_t free_before = fs_.free_bytes();
  auto id = fs_.CreateVolatile(FileFlags{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.AddMapRef(*id).ok());
  ASSERT_TRUE(fs_.Resize(*id, 2 * kMiB).ok());
  EXPECT_LT(fs_.free_bytes(), free_before);
  std::vector<uint8_t> data(4096, 0xAB);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());
  ASSERT_TRUE(fs_.DropMapRef(*id).ok());
  // Last reference gone: blocks return to the bitmap.
  EXPECT_EQ(fs_.free_bytes(), free_before);
  EXPECT_FALSE(fs_.Stat(*id).ok());
}

TEST_F(PmfsTest, VolatileInodeCannotBecomePersistent) {
  auto id = fs_.CreateVolatile(FileFlags{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.AddMapRef(*id).ok());
  EXPECT_EQ(fs_.SetPersistent(*id, true).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(fs_.DropMapRef(*id).ok());
}

TEST_F(PmfsTest, VolatileInodeVanishesOnCrashAndFreesBlocks) {
  const uint64_t free_before = fs_.free_bytes();
  auto id = fs_.CreateVolatile(FileFlags{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.AddMapRef(*id).ok());
  ASSERT_TRUE(fs_.Resize(*id, 4 * kMiB).ok());
  // A persistent neighbor proves the bitmap rebuild keeps owned blocks.
  auto keeper = fs_.Create("/keeper", FileFlags{.persistent = true});
  ASSERT_TRUE(keeper.ok());
  ASSERT_TRUE(fs_.Resize(*keeper, kMiB).ok());
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  // The volatile inode is gone; its blocks are free again; the persistent
  // file survived with its allocation intact.
  EXPECT_FALSE(fs_.Stat(*id).ok());
  auto kept = fs_.LookupPath("/keeper");
  ASSERT_TRUE(kept.ok());
  auto st = fs_.Stat(*kept);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->allocated_bytes, kMiB);
  EXPECT_EQ(fs_.free_bytes(), free_before - kMiB);
}

TEST_F(PmfsZeroEpochTest, WritesLandAfterLazyZero) {
  auto id = fs_.Create("/w", FileFlags{});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(100, 0x11);
  ASSERT_TRUE(fs_.WriteAt(*id, 50, data).ok());
  std::vector<uint8_t> out(200);
  ASSERT_TRUE(fs_.ReadAt(*id, 0, out).ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out[i], 0) << i;  // lazily zeroed prefix
  }
  for (size_t i = 50; i < 150; ++i) {
    EXPECT_EQ(out[i], 0x11) << i;
  }
}

}  // namespace
}  // namespace o1mem
