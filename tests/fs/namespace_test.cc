#include "src/fs/namespace.h"

#include <gtest/gtest.h>

namespace o1mem {
namespace {

TEST(NamespaceTest, NormalizeAcceptsAndRejects) {
  EXPECT_EQ(Namespace::Normalize("/a/b").value(), "/a/b");
  EXPECT_EQ(Namespace::Normalize("/a/b/").value(), "/a/b");
  EXPECT_EQ(Namespace::Normalize("/").value(), "/");
  EXPECT_FALSE(Namespace::Normalize("").ok());
  EXPECT_FALSE(Namespace::Normalize("relative").ok());
  EXPECT_FALSE(Namespace::Normalize("/a//b").ok());
  EXPECT_FALSE(Namespace::Normalize("/a/./b").ok());
  EXPECT_FALSE(Namespace::Normalize("/a/../b").ok());
}

TEST(NamespaceTest, AddFileAutoCreatesParents) {
  Namespace ns;
  ASSERT_TRUE(ns.AddFile("/proc/42/heap", 7).ok());
  EXPECT_TRUE(ns.DirExists("/proc"));
  EXPECT_TRUE(ns.DirExists("/proc/42"));
  EXPECT_EQ(ns.LookupFile("/proc/42/heap").value(), 7u);
  EXPECT_FALSE(ns.LookupFile("/proc/42").ok());  // a directory, not a file
}

TEST(NamespaceTest, FileCannotBePathComponent) {
  Namespace ns;
  ASSERT_TRUE(ns.AddFile("/data", 1).ok());
  EXPECT_FALSE(ns.AddFile("/data/child", 2).ok());
  EXPECT_FALSE(ns.Mkdir("/data").ok());
}

TEST(NamespaceTest, MkdirRequiresParentRmdirRequiresEmpty) {
  Namespace ns;
  EXPECT_FALSE(ns.Mkdir("/a/b").ok());  // parent missing
  ASSERT_TRUE(ns.Mkdir("/a").ok());
  ASSERT_TRUE(ns.Mkdir("/a/b").ok());
  EXPECT_FALSE(ns.Mkdir("/a/b").ok());  // exists
  ASSERT_TRUE(ns.AddFile("/a/b/f", 1).ok());
  EXPECT_EQ(ns.Rmdir("/a/b").code(), StatusCode::kBusy);
  ASSERT_TRUE(ns.RemoveFile("/a/b/f").ok());
  EXPECT_TRUE(ns.Rmdir("/a/b").ok());
  EXPECT_FALSE(ns.DirExists("/a/b"));
}

TEST(NamespaceTest, ListOneLevel) {
  Namespace ns;
  ASSERT_TRUE(ns.AddFile("/d/one", 1).ok());
  ASSERT_TRUE(ns.AddFile("/d/two", 2).ok());
  ASSERT_TRUE(ns.AddFile("/d/sub/deep", 3).ok());
  auto entries = ns.List("/d").value();
  ASSERT_EQ(entries.size(), 3u);  // one, sub, two (sorted)
  EXPECT_EQ(entries[0].name, "one");
  EXPECT_FALSE(entries[0].is_dir);
  EXPECT_EQ(entries[1].name, "sub");
  EXPECT_TRUE(entries[1].is_dir);
  EXPECT_EQ(entries[2].name, "two");
  auto root = ns.List("/").value();
  ASSERT_EQ(root.size(), 1u);
  EXPECT_EQ(root[0].name, "d");
  EXPECT_FALSE(ns.List("/missing").ok());
}

TEST(NamespaceTest, RenameFile) {
  Namespace ns;
  ASSERT_TRUE(ns.AddFile("/a/f", 9).ok());
  ASSERT_TRUE(ns.Mkdir("/b").ok());
  ASSERT_TRUE(ns.Rename("/a/f", "/b/g").ok());
  EXPECT_FALSE(ns.LookupFile("/a/f").ok());
  EXPECT_EQ(ns.LookupFile("/b/g").value(), 9u);
  // Destination parent must exist.
  EXPECT_FALSE(ns.Rename("/b/g", "/nope/x").ok());
  // Destination must not exist.
  ASSERT_TRUE(ns.AddFile("/b/h", 10).ok());
  EXPECT_FALSE(ns.Rename("/b/g", "/b/h").ok());
}

TEST(NamespaceTest, RenameDirectoryMovesSubtree) {
  Namespace ns;
  ASSERT_TRUE(ns.AddFile("/old/x/one", 1).ok());
  ASSERT_TRUE(ns.AddFile("/old/x/two", 2).ok());
  ASSERT_TRUE(ns.AddFile("/old/top", 3).ok());
  ASSERT_TRUE(ns.Rename("/old", "/new").ok());
  EXPECT_EQ(ns.LookupFile("/new/x/one").value(), 1u);
  EXPECT_EQ(ns.LookupFile("/new/x/two").value(), 2u);
  EXPECT_EQ(ns.LookupFile("/new/top").value(), 3u);
  EXPECT_FALSE(ns.DirExists("/old"));
  // Cannot move a directory into its own subtree.
  EXPECT_FALSE(ns.Rename("/new", "/new/x/inside").ok());
}

TEST(NamespaceTest, AllFilesAndCount) {
  Namespace ns;
  ASSERT_TRUE(ns.AddFile("/z", 1).ok());
  ASSERT_TRUE(ns.AddFile("/a/b", 2).ok());
  ASSERT_TRUE(ns.Mkdir("/empty").ok());
  auto files = ns.AllFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].first, "/a/b");  // sorted
  EXPECT_EQ(files[1].first, "/z");
  EXPECT_EQ(ns.file_count(), 2u);
}

TEST(NamespaceTest, DuplicateBindingsRejected) {
  Namespace ns;
  ASSERT_TRUE(ns.AddFile("/f", 1).ok());
  EXPECT_FALSE(ns.AddFile("/f", 2).ok());
  EXPECT_FALSE(ns.Mkdir("/f").ok());
  EXPECT_FALSE(ns.AddFile("/", 3).ok());
}

}  // namespace
}  // namespace o1mem
