// Scrub() and degraded-mount behaviour under injected media faults: healing
// transient poison, retiring worn-out lines, quarantining damaged files,
// and degrading (then repairing) the mount when the journal area itself is
// hit. The overarching invariant: media errors surface as kMediaError
// statuses, never as aborts.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "src/fs/pmfs.h"

namespace o1mem {
namespace {

class ScrubTest : public ::testing::Test {
 protected:
  ScrubTest()
      : machine_(MachineConfig{.dram_bytes = 16 * kMiB, .nvm_bytes = 64 * kMiB}),
        fs_(&machine_, machine_.phys().nvm_base(), 64 * kMiB) {}

  FaultInjector& fi() { return machine_.fault_injector(); }
  Paddr region_base() { return machine_.phys().nvm_base(); }

  // First data-area paddr (past superblock + both journal slots).
  Paddr DataBase() {
    const uint64_t meta_bytes = 64 * kMiB - fs_.quota_bytes();
    return region_base() + meta_bytes;
  }

  // Paddr of the file's first data byte.
  Paddr FirstExtent(InodeId id) {
    auto extents = fs_.Extents(id);
    O1_CHECK(extents.ok() && !extents->empty());
    return extents->front().paddr;
  }

  Machine machine_;
  Pmfs fs_;
};

TEST_F(ScrubTest, CleanFilesystemScrubsClean) {
  auto id = fs_.Create("/a", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.WriteAt(*id, 0, std::vector<uint8_t>(kPageSize, 1)).ok());
  auto report = fs_.Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->degraded);
  EXPECT_EQ(report->files_quarantined, 0u);
  EXPECT_EQ(report->media_errors_found, 0u);
  EXPECT_EQ(report->bad_blocks_retired, 0u);
  EXPECT_GT(report->journal_records_checked, 0u);
  EXPECT_TRUE(fs_.VerifyIntegrity().ok());
  EXPECT_EQ(fs_.mount_mode(), MountMode::kReadWrite);
}

TEST_F(ScrubTest, MediaErrorReadsReturnStatusNotAbort) {
  auto id = fs_.Create("/f", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(2 * kPageSize, 0xCD);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());

  fi().MarkUnreadable(FirstExtent(*id) + 128, /*sticky=*/false);
  std::vector<uint8_t> out(2 * kPageSize);
  auto read = fs_.ReadAt(*id, 0, out);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kMediaError);
  // A read that misses the poisoned page still succeeds.
  EXPECT_TRUE(fs_.ReadAt(*id, kPageSize, std::span(out).subspan(0, kPageSize)).ok());
}

TEST_F(ScrubTest, TransientPoisonInFreeSpaceIsHealed) {
  fi().MarkUnreadable(DataBase() + 4 * kPageSize + 64, /*sticky=*/false);
  const uint64_t free_before = fs_.free_bytes();
  auto report = fs_.Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->media_errors_found, 1u);
  EXPECT_EQ(report->blocks_repaired, 1u);
  EXPECT_EQ(report->bad_blocks_retired, 0u);
  EXPECT_FALSE(report->degraded);
  EXPECT_FALSE(fi().has_poison());           // the rewrite healed the line
  EXPECT_EQ(fs_.free_bytes(), free_before);  // no capacity lost
}

TEST_F(ScrubTest, StickyPoisonInFreeSpaceIsRetired) {
  fi().MarkUnreadable(DataBase() + 4 * kPageSize, /*sticky=*/true);
  const uint64_t free_before = fs_.free_bytes();
  auto report = fs_.Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->media_errors_found, 1u);
  EXPECT_EQ(report->bad_blocks_retired, 1u);
  EXPECT_FALSE(report->degraded);
  // The worn-out block is fenced off: capacity shrinks by one block and the
  // bitmap never hands it out again.
  EXPECT_EQ(fs_.free_bytes(), free_before - kPageSize);
  EXPECT_TRUE(fs_.VerifyIntegrity().ok());

  // Retirement is remembered by later scrubs and recoveries.
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_EQ(fs_.free_bytes(), free_before - kPageSize);
}

TEST_F(ScrubTest, StickyPoisonInFileDataQuarantinesTheFile) {
  auto bad = fs_.Create("/bad", FileFlags{.persistent = true});
  auto good = fs_.Create("/good", FileFlags{.persistent = true});
  ASSERT_TRUE(bad.ok() && good.ok());
  ASSERT_TRUE(fs_.WriteAt(*bad, 0, std::vector<uint8_t>(kPageSize, 0xAA)).ok());
  std::vector<uint8_t> good_data(kPageSize, 0xBB);
  ASSERT_TRUE(fs_.WriteAt(*good, 0, good_data).ok());

  fi().MarkUnreadable(FirstExtent(*bad) + 512, /*sticky=*/true);
  auto report = fs_.Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->files_quarantined, 1u);
  EXPECT_FALSE(report->degraded);

  // The damaged file is isolated: stat says so, reads and writes fail with
  // kMediaError, and nothing aborts.
  auto st = fs_.Stat(*bad);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->quarantined);
  std::vector<uint8_t> out(64);
  EXPECT_EQ(fs_.ReadAt(*bad, 0, out).status().code(), StatusCode::kMediaError);
  EXPECT_FALSE(fs_.WriteAt(*bad, 0, out).ok());

  // The healthy neighbour is untouched and the fs stays writable.
  std::vector<uint8_t> good_out(kPageSize);
  ASSERT_TRUE(fs_.ReadAt(*good, 0, good_out).ok());
  EXPECT_EQ(good_out, good_data);
  EXPECT_TRUE(fs_.VerifyIntegrity().ok());
  EXPECT_EQ(fs_.mount_mode(), MountMode::kReadWrite);

  // Quarantine survives a crash (it is journaled with the file).
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  auto found = fs_.LookupPath("/bad");
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(fs_.Stat(*found)->quarantined);
  EXPECT_TRUE(fs_.LookupPath("/good").ok());
}

TEST_F(ScrubTest, StickyJournalFaultDegradesThenRepairs) {
  auto id = fs_.Create("/keep", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(kPageSize, 0x5A);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());

  // Wear out a line in the journal area: metadata can no longer be
  // committed reliably, so the scrub must fail the mount down to read-only
  // -- not CHECK-fail.
  const Paddr journal_line = region_base() + kPageSize + 64;
  fi().MarkUnreadable(journal_line, /*sticky=*/true);
  auto report = fs_.Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(fs_.mount_mode(), MountMode::kDegraded);
  EXPECT_FALSE(fs_.degrade_reason().empty());

  // Reads still work; every mutation is refused with kReadOnly.
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_.ReadAt(*id, 0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs_.Create("/nope", FileFlags{}).status().code(), StatusCode::kReadOnly);
  EXPECT_EQ(fs_.WriteAt(*id, 0, data).status().code(), StatusCode::kReadOnly);
  EXPECT_EQ(fs_.Unlink("/keep").code(), StatusCode::kReadOnly);
  EXPECT_EQ(fs_.Resize(*id, 2 * kPageSize).code(), StatusCode::kReadOnly);

  // "Replace the DIMM" and scrub again: the mount comes back read-write.
  fi().ClearUnreadable(journal_line);
  auto repaired = fs_.Scrub();
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->degraded);
  EXPECT_EQ(fs_.mount_mode(), MountMode::kReadWrite);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());
}

TEST_F(ScrubTest, TransientJournalPoisonIsHealedInPlace) {
  auto id = fs_.Create("/keep", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  // Transient poison past the journal tail: scrub rewrites the line and the
  // mount stays healthy.
  fi().MarkUnreadable(region_base() + kPageSize + fs_.journal_slot_bytes() - 64,
                      /*sticky=*/false);
  auto report = fs_.Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->degraded);
  EXPECT_GE(report->media_errors_found, 1u);
  EXPECT_FALSE(fi().has_poison());
  EXPECT_EQ(fs_.mount_mode(), MountMode::kReadWrite);
  ASSERT_TRUE(fs_.Create("/more", FileFlags{}).ok());
}

TEST_F(ScrubTest, SuperblockBitFlipRecoveredOnCrash) {
  auto id = fs_.Create("/keep", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(1000, 0x7E);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());

  // Corrupt the superblock's generation field. The CRC catches it at the
  // next recovery, which falls back to probing both journal slots, then
  // rewrites a fresh superblock.
  fi().FlipBit(region_base() + 16, /*bit=*/3);
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_EQ(fs_.mount_mode(), MountMode::kReadWrite);
  auto found = fs_.LookupPath("/keep");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_.ReadAt(*found, 0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(fs_.VerifyIntegrity().ok());
}

TEST_F(ScrubTest, JournalBitFlipTruncatesTornTailOnCrash) {
  // Two persistent files; corrupt the journal record bytes of the second.
  auto a = fs_.Create("/a", FileFlags{.persistent = true});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(fs_.WriteAt(*a, 0, std::vector<uint8_t>(100, 1)).ok());
  const uint64_t tail_before = fs_.journal_tail_bytes();
  auto b = fs_.Create("/b", FileFlags{.persistent = true});
  ASSERT_TRUE(b.ok());

  // Flip a bit inside /b's create record: its CRC now fails, so recovery
  // must treat the journal as ending before it.
  fi().FlipBit(region_base() + kPageSize + tail_before + 20, /*bit=*/0);
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_TRUE(fs_.LookupPath("/a").ok());   // before the torn tail: intact
  EXPECT_FALSE(fs_.LookupPath("/b").ok());  // inside it: dropped cleanly
  EXPECT_TRUE(fs_.VerifyIntegrity().ok());
  EXPECT_EQ(fs_.mount_mode(), MountMode::kReadWrite);

  // The fs keeps working after the truncated recovery.
  auto c = fs_.Create("/c", FileFlags{.persistent = true});
  ASSERT_TRUE(c.ok());
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  EXPECT_TRUE(fs_.LookupPath("/c").ok());
}

TEST_F(ScrubTest, StickyJournalFaultAtRecoveryMovesToOtherSlot) {
  // A sticky fault in the ACTIVE slot's tail at crash time: replay stops at
  // the fault, and the closing checkpoint compacts into the other slot, so
  // the mount comes back read-write with the durable prefix applied.
  auto a = fs_.Create("/a", FileFlags{.persistent = true});
  ASSERT_TRUE(a.ok());
  const uint64_t tail = fs_.journal_tail_bytes();
  auto b = fs_.Create("/b", FileFlags{.persistent = true});
  ASSERT_TRUE(b.ok());

  // Poison granularity is a 64 B line; the line holding `tail` may also
  // hold the end of /a's last record, so target the first line boundary at
  // or after tail -- still inside /b's record, clear of /a's.
  const uint64_t fault_off = AlignUp(tail, 64);
  ASSERT_LT(fault_off, fs_.journal_tail_bytes());  // within /b's record
  fi().MarkUnreadable(region_base() + kPageSize + fault_off, /*sticky=*/true);
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());  // never aborts
  EXPECT_TRUE(fs_.LookupPath("/a").ok());
  EXPECT_FALSE(fs_.LookupPath("/b").ok());  // beyond the unreadable line
  EXPECT_TRUE(fs_.VerifyIntegrity().ok());
  EXPECT_EQ(fs_.mount_mode(), MountMode::kReadWrite);
  ASSERT_TRUE(fs_.Create("/after", FileFlags{.persistent = true}).ok());
}

TEST_F(ScrubTest, DegradedMountStillRecoversAcrossCrash) {
  auto id = fs_.Create("/keep", FileFlags{.persistent = true});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(256, 0x99);
  ASSERT_TRUE(fs_.WriteAt(*id, 0, data).ok());

  // Wear out the INACTIVE slot: the active journal is still intact, but a
  // checkpoint can no longer land anywhere durable, so the mount degrades.
  const Paddr journal_line = region_base() + kPageSize + fs_.journal_slot_bytes();
  fi().MarkUnreadable(journal_line, /*sticky=*/true);
  ASSERT_TRUE(fs_.Scrub().ok());
  ASSERT_EQ(fs_.mount_mode(), MountMode::kDegraded);

  // Crash while degraded: replay of the healthy active slot recovers the
  // data; the recovery checkpoint lands on the worn slot and fails its
  // readback, so the mount comes back up degraded -- but readable, and
  // without aborting.
  machine_.Crash();
  ASSERT_TRUE(fs_.OnCrash().ok());
  auto found = fs_.LookupPath("/keep");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_.ReadAt(*found, 0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs_.mount_mode(), MountMode::kDegraded);
}

}  // namespace
}  // namespace o1mem
