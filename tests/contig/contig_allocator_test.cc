// ContigAllocator unit tests: lend/claim bookkeeping, deterministic victim
// selection, the clean guarantee-exhaustion failure (never a partial grant),
// and the CMA-baseline contrast (linear scans, per-page migration, failures
// under unmovable pinning).
#include "src/contig/contig_allocator.h"

#include <gtest/gtest.h>

#include <vector>

namespace o1mem {
namespace {

constexpr uint64_t kArea = 16 * kMiB;

ContigConfig Gcma(uint64_t guarantee = 0) {
  ContigConfig config;
  config.enabled = true;
  config.area_bytes = kArea;
  config.guarantee_bytes = guarantee;
  return config;
}

ContigConfig Cma(uint32_t unmovable_permille = 200) {
  ContigConfig config = Gcma();
  config.cma_baseline = true;
  config.cma_granule_bytes = kMiB;
  config.cma_unmovable_permille = unmovable_permille;
  return config;
}

class ContigAllocatorTest : public ::testing::Test {
 protected:
  // Wires recording revokers for both lender classes; tests assert against
  // `revoked_` to pin exactly which extents a claim evicted.
  void Wire(ContigAllocator& a) {
    for (LenderClass cls : {LenderClass::kDiscardableFile, LenderClass::kTierCleanCopy}) {
      a.SetRevoker(cls, [this, cls](Paddr base, uint64_t bytes, uint64_t cookie) {
        revoked_.push_back(ContigVictim{base, bytes, cls, cookie});
        return OkStatus();
      });
    }
  }

  SimContext ctx_;
  std::vector<ContigVictim> revoked_;
};

TEST_F(ContigAllocatorTest, GaugesAtBoot) {
  ContigAllocator a(&ctx_, 0, kArea, Gcma());
  EXPECT_EQ(a.area_bytes(), kArea);
  EXPECT_EQ(a.guarantee_bytes(), kArea);  // 0 = whole area
  EXPECT_EQ(a.claimed_bytes(), 0u);
  EXPECT_EQ(a.lent_bytes_total(), 0u);
  EXPECT_EQ(a.free_bytes(), kArea);
  EXPECT_FALSE(a.cma_baseline());
  EXPECT_TRUE(a.Owns(0) && a.Owns(kArea - 1) && !a.Owns(kArea));
}

TEST_F(ContigAllocatorTest, GuaranteeClampsToArea) {
  ContigAllocator a(&ctx_, 0, kArea, Gcma(/*guarantee=*/2 * kArea));
  EXPECT_EQ(a.guarantee_bytes(), kArea);
}

TEST_F(ContigAllocatorTest, BorrowReturnBookkeeping) {
  ContigAllocator a(&ctx_, 0, kArea, Gcma());
  auto b1 = a.Borrow(1 * kMiB, LenderClass::kDiscardableFile, 7);
  auto b2 = a.Borrow(2 * kMiB, LenderClass::kTierCleanCopy, 8);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_NE(*b1, *b2);
  EXPECT_EQ(a.lent_bytes(LenderClass::kDiscardableFile), 1 * kMiB);
  EXPECT_EQ(a.lent_bytes(LenderClass::kTierCleanCopy), 2 * kMiB);
  EXPECT_EQ(a.lent_regions(), 2u);
  EXPECT_EQ(a.free_bytes(), kArea - 3 * kMiB);
  EXPECT_TRUE(a.Return(*b1).ok());
  EXPECT_EQ(a.lent_bytes_total(), 2 * kMiB);
  EXPECT_EQ(a.Return(*b1).code(), StatusCode::kInvalidArgument);  // double return
  EXPECT_EQ(ctx_.counters().contig_lends, 2u);
  EXPECT_EQ(ctx_.counters().contig_returns, 1u);
}

TEST_F(ContigAllocatorTest, BorrowFailsCleanWhenNothingFits) {
  ContigAllocator a(&ctx_, 0, kArea, Gcma());
  ASSERT_TRUE(a.Borrow(kArea, LenderClass::kDiscardableFile, 1).ok());
  auto b = a.Borrow(kPageSize, LenderClass::kDiscardableFile, 2);
  EXPECT_EQ(b.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(ContigAllocatorTest, ClaimRevokesExactlyOverlappingExtents) {
  ContigAllocator a(&ctx_, 0, kArea, Gcma());
  Wire(a);
  // Three 4 MiB borrows fill [0, 12M); the claim window [0, 8M) overlaps the
  // first two only.
  auto b1 = a.Borrow(4 * kMiB, LenderClass::kDiscardableFile, 1);
  auto b2 = a.Borrow(4 * kMiB, LenderClass::kDiscardableFile, 2);
  auto b3 = a.Borrow(4 * kMiB, LenderClass::kDiscardableFile, 3);
  ASSERT_TRUE(b1.ok() && b2.ok() && b3.ok());
  std::vector<ContigVictim> victims;
  auto claim = a.Claim(8 * kMiB, &victims);
  ASSERT_TRUE(claim.ok());
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0].cookie, 1u);
  EXPECT_EQ(victims[1].cookie, 2u);
  ASSERT_EQ(revoked_.size(), 2u);
  EXPECT_EQ(revoked_[0].base, *b1);
  EXPECT_EQ(revoked_[1].base, *b2);
  // The third borrow is untouched and the claim is accounted.
  EXPECT_EQ(a.lent_bytes_total(), 4 * kMiB);
  EXPECT_EQ(a.claimed_bytes(), 8 * kMiB);
  EXPECT_EQ(ctx_.counters().lender_evictions, 2u);
}

TEST_F(ContigAllocatorTest, PartialOverlapEvictsWholeExtentRemainderStaysLendable) {
  ContigAllocator a(&ctx_, 0, kArea, Gcma());
  Wire(a);
  // One big borrow covers the whole area; a 1 MiB claim still revokes the
  // whole extent (lenders cannot keep half a borrow), but the out-of-window
  // remainder is immediately lendable again.
  ASSERT_TRUE(a.Borrow(kArea, LenderClass::kDiscardableFile, 1).ok());
  auto claim = a.Claim(1 * kMiB);
  ASSERT_TRUE(claim.ok());
  EXPECT_EQ(revoked_.size(), 1u);
  EXPECT_EQ(a.lent_bytes_total(), 0u);
  auto again = a.Borrow(kArea - 1 * kMiB, LenderClass::kDiscardableFile, 2);
  EXPECT_TRUE(again.ok());
}

TEST_F(ContigAllocatorTest, VictimSelectionIsDeterministic) {
  // Two allocators, same seed/boot/sequence: identical claim bases and
  // identical victim lists, element for element.
  std::vector<ContigVictim> v1, v2;
  std::vector<Paddr> c1, c2;
  for (int run = 0; run < 2; ++run) {
    SimContext ctx;
    ContigAllocator a(&ctx, 0, kArea, Gcma());
    a.SetRevoker(LenderClass::kDiscardableFile,
                 [](Paddr, uint64_t, uint64_t) { return OkStatus(); });
    std::vector<Paddr> borrows;
    for (uint64_t i = 0; i < 6; ++i) {
      auto b = a.Borrow((1 + i % 3) * kMiB, LenderClass::kDiscardableFile, i);
      ASSERT_TRUE(b.ok());
      borrows.push_back(*b);
    }
    ASSERT_TRUE(a.Return(borrows[1]).ok());
    ASSERT_TRUE(a.Return(borrows[4]).ok());
    std::vector<ContigVictim>& victims = run == 0 ? v1 : v2;
    std::vector<Paddr>& claims = run == 0 ? c1 : c2;
    for (uint64_t bytes : {3 * kMiB, 5 * kMiB}) {
      auto claim = a.Claim(bytes, &victims);
      ASSERT_TRUE(claim.ok());
      claims.push_back(*claim);
    }
  }
  EXPECT_EQ(c1, c2);
  ASSERT_EQ(v1.size(), v2.size());
  for (size_t i = 0; i < v1.size(); ++i) {
    EXPECT_EQ(v1[i].base, v2[i].base) << i;
    EXPECT_EQ(v1[i].bytes, v2[i].bytes) << i;
    EXPECT_EQ(v1[i].cookie, v2[i].cookie) << i;
  }
}

TEST_F(ContigAllocatorTest, GuaranteeExhaustionFailsCleanNeverPartial) {
  ContigAllocator a(&ctx_, 0, kArea, Gcma(/*guarantee=*/4 * kMiB));
  Wire(a);
  ASSERT_TRUE(a.Borrow(kArea, LenderClass::kDiscardableFile, 1).ok());
  auto c1 = a.Claim(3 * kMiB);
  ASSERT_TRUE(c1.ok());
  revoked_.clear();
  // 3 MiB claimed of a 4 MiB guarantee: a 2 MiB claim must fail cleanly --
  // no partial grant, no revocation side effects, lenders untouched.
  const uint64_t lent_before = a.lent_bytes_total();
  std::vector<ContigVictim> victims;
  auto c2 = a.Claim(2 * kMiB, &victims);
  EXPECT_EQ(c2.status().code(), StatusCode::kOutOfMemory);
  EXPECT_TRUE(victims.empty());
  EXPECT_TRUE(revoked_.empty());
  EXPECT_EQ(a.lent_bytes_total(), lent_before);
  EXPECT_EQ(a.claimed_bytes(), 3 * kMiB);
  EXPECT_EQ(ctx_.counters().contig_fail, 1u);
  // Releasing restores headroom: the same claim then succeeds.
  EXPECT_TRUE(a.Release(*c1).ok());
  EXPECT_TRUE(a.Claim(2 * kMiB).ok());
}

TEST_F(ContigAllocatorTest, ReleaseMakesWindowLendableAgain) {
  ContigAllocator a(&ctx_, 0, kArea, Gcma());
  Wire(a);
  auto claim = a.Claim(kArea);
  ASSERT_TRUE(claim.ok());
  EXPECT_EQ(a.Borrow(kPageSize, LenderClass::kDiscardableFile, 1).status().code(),
            StatusCode::kOutOfMemory);
  ASSERT_TRUE(a.Release(*claim).ok());
  EXPECT_EQ(a.claimed_bytes(), 0u);
  EXPECT_TRUE(a.Borrow(kArea, LenderClass::kDiscardableFile, 2).ok());
  EXPECT_EQ(a.Release(*claim).code(), StatusCode::kInvalidArgument);
}

TEST_F(ContigAllocatorTest, ClaimCostScalesWithVictimExtentsNotBytes) {
  // Same claim size, different victim counts: the cycle cost difference per
  // extra extent is a constant, independent of the bytes moved.
  auto claim_cycles = [](int extents) {
    SimContext ctx;
    ContigAllocator a(&ctx, 0, kArea, Gcma());
    a.SetRevoker(LenderClass::kDiscardableFile,
                 [](Paddr, uint64_t, uint64_t) { return OkStatus(); });
    const uint64_t per = (8 * kMiB) / static_cast<uint64_t>(extents);
    for (int i = 0; i < extents; ++i) {
      O1_CHECK(a.Borrow(per, LenderClass::kDiscardableFile, static_cast<uint64_t>(i)).ok());
    }
    const uint64_t t0 = ctx.now();
    O1_CHECK(a.Claim(8 * kMiB).ok());
    return ctx.now() - t0;
  };
  const uint64_t c1 = claim_cycles(1);
  const uint64_t c8 = claim_cycles(8);
  EXPECT_GT(c8, c1);
  SimContext probe;
  EXPECT_EQ(c8 - c1, 7 * probe.cost().contig_revoke_extent_cycles);
}

TEST_F(ContigAllocatorTest, CmaUnmovablePinningFailsLargeClaims) {
  ContigAllocator a(&ctx_, 0, kArea, Cma(/*unmovable_permille=*/200));
  Wire(a);
  EXPECT_TRUE(a.cma_baseline());
  // With ~20% of 1 MiB granules unmovable, a 16-granule run cannot exist in
  // a 16-granule area (seeded placement pins several), so the big claim
  // fails -- after paying the full scan.
  const uint64_t t0 = ctx_.now();
  auto big = a.Claim(kArea);
  EXPECT_EQ(big.status().code(), StatusCode::kOutOfMemory);
  const uint64_t fail_cycles = ctx_.now() - t0;
  EXPECT_GE(fail_cycles, (kArea / kPageSize) * ctx_.cost().reclaim_scan_page_cycles);
  EXPECT_EQ(ctx_.counters().contig_fail, 1u);
  // A single-granule claim still finds a hole.
  EXPECT_TRUE(a.Claim(kPageSize).ok());
}

TEST_F(ContigAllocatorTest, CmaClaimMigratesLenderPagesPerPage) {
  ContigAllocator a(&ctx_, 0, kArea, Cma(/*unmovable_permille=*/0));
  Wire(a);
  auto b = a.Borrow(2 * kMiB, LenderClass::kDiscardableFile, 9);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(IsAligned(*b, kMiB));  // granule-granular in the baseline
  auto claim = a.Claim(kArea);
  ASSERT_TRUE(claim.ok());
  // The occupied movable pages were "migrated" one page copy at a time.
  EXPECT_EQ(ctx_.counters().cma_migrated_pages, (2 * kMiB) / kPageSize);
  EXPECT_EQ(revoked_.size(), 1u);
  EXPECT_EQ(a.lent_bytes_total(), 0u);
}

TEST_F(ContigAllocatorTest, CmaSeedIsDeterministic) {
  ContigConfig config = Cma(/*unmovable_permille=*/300);
  for (uint64_t seed : {0x1ull, 0x2ull}) {
    config.rng_seed = seed;
    SimContext ca, cb;
    ContigAllocator a(&ca, 0, kArea, config);
    ContigAllocator b(&cb, 0, kArea, config);
    // Same seed: identical claim outcomes at every size.
    for (uint64_t bytes : {kMiB, 2 * kMiB, 4 * kMiB}) {
      auto ra = a.Claim(bytes);
      auto rb = b.Claim(bytes);
      ASSERT_EQ(ra.ok(), rb.ok());
      if (ra.ok()) {
        EXPECT_EQ(*ra, *rb);
      }
    }
  }
}

}  // namespace
}  // namespace o1mem
