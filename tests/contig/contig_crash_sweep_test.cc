// Crash-point sweep over the revoke-with-writeback path: a persistent FOM
// segment is promoted onto a *borrowed* contiguous-area extent (the tier
// carve is pre-filled so the promotion must borrow), dirtied through the
// mapping, and then a Claim() takes the window -- forcing the surrender's
// durable writeback. The golden run counts the NVM line-writes the claim
// generates; the workload is re-run once per index with the fault injector
// cutting power exactly there. After crash + recovery the segment must hold
// wholly the old or wholly the new pattern -- never a mix -- because the
// surrender rides the same journaled copy-then-publish writeback as any
// demotion (DESIGN.md Sec. 14 durability invariant).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/os/system.h"

namespace o1mem {
namespace {

constexpr uint64_t kSegBytes = 16 * kKiB;
constexpr uint64_t kAreaBytes = 4 * kMiB;
constexpr char kSegPath[] = "/c/sweep";

ProcessImage TinyImage() {
  return ProcessImage{.code_bytes = kPageSize, .stack_bytes = kPageSize,
                      .heap_bytes = kPageSize};
}

SystemConfig SweepConfig(PersistenceModel persistence) {
  SystemConfig config;
  config.machine.dram_bytes = 16 * kMiB;
  config.machine.nvm_bytes = 32 * kMiB;
  config.machine.persistence = persistence;
  config.machine.tier.enabled = true;
  // One promotion unit of carve: the filler segment exhausts it, so the
  // swept segment's promotion lands on a borrowed area extent.
  config.machine.tier.dram_cache_bytes = 4 * kPageSize;
  config.machine.tier.min_region_bytes = 4 * kPageSize;
  config.machine.contig.enabled = true;
  config.machine.contig.area_bytes = kAreaBytes;
  config.machine.smp.num_cpus = 2;
  config.machine.smp.batched_shootdowns = true;
  config.swap_pages = 1024;
  return config;
}

std::vector<uint8_t> Pattern(uint8_t salt) {
  std::vector<uint8_t> data(kSegBytes);
  for (uint64_t i = 0; i < kSegBytes; ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + salt);
  }
  return data;
}

struct Driver {
  System& sys;
  Process* proc = nullptr;
  InodeId inode = kInvalidInode;
  Vaddr va = 0;

  // Creates + maps the swept segment (Pattern(0), durably flushed) and a
  // filler segment whose promotion consumes the whole tier carve. Runs
  // before the swept window, so it is never interrupted.
  void Setup() {
    auto launched = sys.Launch(Backend::kFom, TinyImage());
    O1_CHECK(launched.ok());
    proc = *launched;
    auto fill = sys.fom().CreateSegment("/c/fill", 4 * kPageSize,
                                        SegmentOptions{.flags = {.persistent = true}});
    O1_CHECK(fill.ok());
    auto fill_va = sys.fom().Map(proc->fom(), *fill, Prot::kReadWrite);
    O1_CHECK(fill_va.ok());
    O1_CHECK(sys.MadviseTier(*proc, *fill_va, 4 * kPageSize, TierHint::kHot).ok());
    auto filler = sys.tier()->PromotedOf(*fill);
    O1_CHECK(filler.size() == 1 && !filler[0].borrowed);  // carve now full

    auto seg = sys.fom().CreateSegment(kSegPath, kSegBytes,
                                       SegmentOptions{.flags = {.persistent = true}});
    O1_CHECK(seg.ok());
    inode = *seg;
    auto mapped = sys.fom().Map(proc->fom(), inode, Prot::kReadWrite);
    O1_CHECK(mapped.ok());
    va = *mapped;
    auto data = Pattern(0);
    O1_CHECK(sys.UserWrite(*proc, va, data).ok());
    O1_CHECK(sys.UserFlush(*proc, va, kSegBytes).ok());
  }

  // The swept transition: promote onto a borrowed extent, dirty it with
  // Pattern(1), then claim the window -- the revoke's journaled writeback is
  // the A -> B transition under test.
  void Run() {
    O1_CHECK(sys.MadviseTier(*proc, va, kSegBytes, TierHint::kHot).ok());
    auto promoted = sys.tier()->PromotedOf(inode);
    O1_CHECK(promoted.size() == 1 && promoted[0].borrowed);
    auto data = Pattern(1);
    O1_CHECK(sys.UserWrite(*proc, va, data).ok());
    std::vector<ContigVictim> victims;
    auto claim = sys.contig()->Claim(kAreaBytes, &victims);
    O1_CHECK(claim.ok());
    O1_CHECK(victims.size() == 1 &&
             victims[0].cls == LenderClass::kTierCleanCopy);
    O1_CHECK(sys.tier()->PromotedOf(inode).empty());
  }
};

// The recovered segment must hold exactly Pattern(0) or Pattern(1).
void VerifyRecovered(System& sys) {
  ASSERT_TRUE(sys.pmfs().VerifyIntegrity().ok());
  auto scrub = sys.pmfs().Scrub();
  ASSERT_TRUE(scrub.ok());
  ASSERT_EQ(scrub->files_quarantined, 0u);

  auto inode = sys.pmfs().LookupPath(kSegPath);
  ASSERT_TRUE(inode.ok()) << "segment lost";
  std::vector<uint8_t> out(kSegBytes);
  auto read = sys.pmfs().ReadAt(*inode, 0, out);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(*read, kSegBytes);
  const std::vector<uint8_t> before = Pattern(0);
  const std::vector<uint8_t> after = Pattern(1);
  ASSERT_TRUE(out == before || out == after)
      << "segment is neither wholly the old nor wholly the new pattern "
      << "(got first byte " << int(out[0]) << ")";

  // Recovery must drain the writeback staging area.
  auto wb = sys.pmfs().List("/.tier/wb");
  if (wb.ok()) {
    for (const DirEntry& e : *wb) {
      ASSERT_TRUE(e.is_dir) << "stranded staging file " << e.name;
    }
  }
}

constexpr int kShards = 4;

struct Param {
  PersistenceModel persistence;
  int shard = 0;
};

class ContigCrashSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ContigCrashSweep, EveryRevokeCrashPointRecovers) {
  const PersistenceModel persistence = GetParam().persistence;
  const auto shard = static_cast<uint64_t>(GetParam().shard);

  // Golden run: bound the claim's NVM write window, check the clean end
  // state (the dirty pattern written back, then survives an ordinary crash).
  uint64_t first = 0;
  uint64_t last = 0;
  {
    System sys(SweepConfig(persistence));
    Driver d{sys};
    d.Setup();
    FaultInjector& fi = sys.machine().fault_injector();
    first = fi.nvm_line_writes();
    d.Run();
    last = fi.nvm_line_writes();
    // A journaled 16 KiB writeback must produce a substantial window or the
    // sweep is vacuous.
    ASSERT_GT(last - first, 300u);
    ASSERT_TRUE(sys.Crash().ok());
    VerifyRecovered(sys);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  SCOPED_TRACE("sweeping shard " + std::to_string(shard) + " of " +
               std::to_string(last - first) + " revoke crash points");

  for (uint64_t index = first + shard; index < last; index += kShards) {
    System sys(SweepConfig(persistence));
    Driver d{sys};
    d.Setup();

    FaultInjector& fi = sys.machine().fault_injector();
    if (persistence == PersistenceModel::kExplicitFlush) {
      fi.EnableTornPersists(/*seed=*/index * 2654435761ull + 1, /*persist_percent=*/50);
    }
    fi.ArmCrashAtNvmWrite(index);
    d.Run();
    ASSERT_TRUE(fi.triggered()) << "index " << index << " never fired";
    ASSERT_TRUE(sys.Crash().ok()) << "index " << index;
    {
      SCOPED_TRACE("crash index " + std::to_string(index));
      VerifyRecovered(sys);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = info.param.persistence == PersistenceModel::kAutoDurable
                         ? "Auto"
                         : "Strict";
  name += "Shard" + std::to_string(info.param.shard);
  return name;
}

std::vector<Param> SweepParams() {
  std::vector<Param> params;
  for (PersistenceModel persistence :
       {PersistenceModel::kAutoDurable, PersistenceModel::kExplicitFlush}) {
    for (int shard = 0; shard < kShards; ++shard) {
      params.push_back(Param{persistence, shard});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ContigCrashSweep, ::testing::ValuesIn(SweepParams()),
                         ParamName);

}  // namespace
}  // namespace o1mem
