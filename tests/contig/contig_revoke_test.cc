// Lender revocation end to end, through the System surface: discardable
// tmpfs files borrow second-class extents and lose their contents (holes)
// when a claim takes the window; mapped files promote their borrowed pages
// to first-class frames *before* the map lands, so a revoke can never yank
// memory under live PTEs; tier clean-copy borrows are surrendered by
// repointing home -- after a durable writeback when dirty -- and a poisoned
// dirty copy quarantines instead of failing the claim.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/os/system.h"

namespace o1mem {
namespace {

constexpr uint64_t kAreaBytes = 16 * kMiB;

SystemConfig ContigOn() {
  SystemConfig config;
  config.machine.dram_bytes = 64 * kMiB;
  config.machine.nvm_bytes = 128 * kMiB;
  config.machine.contig.enabled = true;
  config.machine.contig.area_bytes = kAreaBytes;
  return config;
}

// Tier cache of one 64 KiB unit: the first promotion of anything larger
// exhausts AllocCache, so promotions land on borrowed area extents.
SystemConfig ContigTierOn() {
  SystemConfig config = ContigOn();
  config.machine.tier.enabled = true;
  config.machine.tier.dram_cache_bytes = 16 * kPageSize;
  config.machine.tier.aggregation_ticks = 2;
  config.machine.tier.min_region_bytes = 16 * kPageSize;
  config.machine.tier.promote_after = 1;
  config.machine.tier.demote_after = 2;
  return config;
}

ProcessImage TinyImage() {
  return ProcessImage{.code_bytes = kPageSize, .stack_bytes = kPageSize,
                      .heap_bytes = kPageSize};
}

std::vector<uint8_t> Pattern(uint64_t n, uint8_t salt) {
  std::vector<uint8_t> data(n);
  for (uint64_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(i * 13 + salt);
  }
  return data;
}

class ContigRevokeTest : public ::testing::Test {
 protected:
  void Boot(const SystemConfig& config) {
    sys_ = std::make_unique<System>(config);
    auto launched = sys_->Launch(Backend::kFom, TinyImage());
    ASSERT_TRUE(launched.ok());
    proc_ = *launched;
  }

  // Discardable tmpfs file of `bytes` with Pattern(touch, salt) written at
  // offset 0 -- the first touch borrows the whole extent from the area.
  InodeId MakeDiscardable(const std::string& path, uint64_t bytes, uint64_t touch,
                          uint8_t salt) {
    auto fd = sys_->Creat(*proc_, sys_->tmpfs(), path, FileFlags{.discardable = true});
    O1_CHECK(fd.ok());
    O1_CHECK(sys_->Ftruncate(*proc_, *fd, bytes).ok());
    auto data = Pattern(touch, salt);
    auto wrote = sys_->Pwrite(*proc_, *fd, 0, data);
    O1_CHECK(wrote.ok() && *wrote == touch);
    O1_CHECK(sys_->Close(*proc_, *fd).ok());
    auto id = sys_->tmpfs().LookupPath(path);
    O1_CHECK(id.ok());
    return *id;
  }

  std::vector<uint8_t> FileRead(InodeId id, uint64_t off, uint64_t len) {
    std::vector<uint8_t> out(len);
    auto read = sys_->tmpfs().ReadAt(id, off, out);
    O1_CHECK(read.ok() && *read == len);
    return out;
  }

  // --- tier-side helpers (persistent FOM segment, as in tier tests) ------
  void MakeSegment(const std::string& path, uint64_t bytes, uint8_t salt) {
    auto seg = sys_->fom().CreateSegment(path, bytes,
                                         SegmentOptions{.flags = {.persistent = true}});
    ASSERT_TRUE(seg.ok());
    inode_ = *seg;
    auto va = sys_->fom().Map(proc_->fom(), *seg, Prot::kReadWrite);
    ASSERT_TRUE(va.ok());
    va_ = *va;
    bytes_ = bytes;
    auto data = Pattern(bytes, salt);
    ASSERT_TRUE(sys_->UserWrite(*proc_, va_, data).ok());
    ASSERT_TRUE(sys_->UserFlush(*proc_, va_, bytes).ok());
  }

  std::vector<uint8_t> ReadMapped(uint64_t off, uint64_t len) {
    std::vector<uint8_t> out(len);
    O1_CHECK(sys_->UserRead(*proc_, va_ + off, out).ok());
    return out;
  }

  std::vector<uint8_t> ReadHome(uint64_t off, uint64_t len) {
    std::vector<uint8_t> out(len);
    auto read = sys_->pmfs().ReadAt(inode_, off, out);
    O1_CHECK(read.ok() && *read == len);
    return out;
  }

  // Promotes the mapped segment onto a borrowed area extent and returns it.
  PromotedExtent PromoteBorrowed() {
    O1_CHECK(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
    auto promoted = sys_->tier()->PromotedOf(inode_);
    O1_CHECK(promoted.size() == 1 && promoted[0].borrowed);
    O1_CHECK(sys_->contig()->lent_bytes(LenderClass::kTierCleanCopy) == bytes_);
    return promoted[0];
  }

  std::unique_ptr<System> sys_;
  Process* proc_ = nullptr;
  InodeId inode_ = kInvalidInode;
  Vaddr va_ = 0;
  uint64_t bytes_ = 0;
};

TEST_F(ContigRevokeTest, DisabledSystemHasNoArea) {
  System sys;  // all defaults: contig off
  EXPECT_EQ(sys.contig(), nullptr);
  const TierOccupancy o = sys.Occupancy();
  EXPECT_EQ(o.contig_area_bytes, 0u);
}

TEST_F(ContigRevokeTest, DiscardableFileBorrowsSecondClassBacking) {
  Boot(ContigOn());
  const InodeId id = MakeDiscardable("/c/f", 1 * kMiB, 2 * kPageSize, /*salt=*/1);
  EXPECT_EQ(sys_->contig()->lent_bytes(LenderClass::kDiscardableFile), 1 * kMiB);
  EXPECT_EQ(sys_->tmpfs().borrowed_used_bytes(), 2 * kPageSize);
  EXPECT_EQ(FileRead(id, 0, 2 * kPageSize), Pattern(2 * kPageSize, 1));
  // Unlinking returns the borrow voluntarily.
  ASSERT_TRUE(sys_->Unlink("/c/f").ok());
  EXPECT_EQ(sys_->contig()->lent_bytes_total(), 0u);
  EXPECT_EQ(sys_->tmpfs().borrowed_used_bytes(), 0u);
  EXPECT_GE(sys_->ctx().counters().contig_returns, 1u);
}

TEST_F(ContigRevokeTest, ClaimDropsDiscardableContentsToHoles) {
  Boot(ContigOn());
  const InodeId id = MakeDiscardable("/c/drop", 1 * kMiB, 2 * kPageSize, /*salt=*/2);
  std::vector<ContigVictim> victims;
  auto claim = sys_->contig()->Claim(kAreaBytes, &victims);
  ASSERT_TRUE(claim.ok());
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].cls, LenderClass::kDiscardableFile);
  EXPECT_EQ(victims[0].cookie, static_cast<uint64_t>(id));
  // The file survives -- size intact, contents now holes (zeros): exactly
  // what "discardable" licenses.
  auto st = sys_->tmpfs().Stat(id);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1 * kMiB);
  EXPECT_EQ(FileRead(id, 0, 2 * kPageSize), std::vector<uint8_t>(2 * kPageSize, 0));
  EXPECT_EQ(sys_->tmpfs().borrowed_used_bytes(), 0u);
  EXPECT_EQ(sys_->ctx().counters().discard_bytes, 2 * kPageSize);
  EXPECT_EQ(sys_->ctx().counters().lender_evictions, 1u);
  // After the claim is released, the next touch borrows again.
  ASSERT_TRUE(sys_->contig()->Release(*claim).ok());
  uint8_t byte = 9;
  ASSERT_TRUE(sys_->tmpfs().WriteAt(id, 0, std::span<const uint8_t>(&byte, 1)).ok());
  EXPECT_EQ(sys_->contig()->lent_bytes(LenderClass::kDiscardableFile), 1 * kMiB);
}

TEST_F(ContigRevokeTest, MappingPromotesBorrowedPagesToFirstClass) {
  Boot(ContigOn());
  const InodeId id = MakeDiscardable("/c/map", 64 * kPageSize, 3 * kPageSize, /*salt=*/3);
  ASSERT_GT(sys_->tmpfs().borrowed_used_bytes(), 0u);
  // The map reference promotes every borrowed page to a first-class frame
  // (quota-charged copy) and returns the extent -- contents preserved, and
  // no future claim can touch a mapped page.
  ASSERT_TRUE(sys_->tmpfs().AddMapRef(id).ok());
  EXPECT_EQ(sys_->tmpfs().borrowed_used_bytes(), 0u);
  EXPECT_EQ(sys_->contig()->lent_bytes_total(), 0u);
  EXPECT_EQ(FileRead(id, 0, 3 * kPageSize), Pattern(3 * kPageSize, 3));
  std::vector<ContigVictim> victims;
  ASSERT_TRUE(sys_->contig()->Claim(kAreaBytes, &victims).ok());
  EXPECT_TRUE(victims.empty());
  EXPECT_EQ(FileRead(id, 0, 3 * kPageSize), Pattern(3 * kPageSize, 3));
  ASSERT_TRUE(sys_->tmpfs().DropMapRef(id).ok());
}

TEST_F(ContigRevokeTest, CleanTierCopyRevokeRepointsToHome) {
  Boot(ContigTierOn());
  MakeSegment("/c/tier", 2 * kMiB, /*salt=*/4);
  PromoteBorrowed();
  const uint64_t demotions0 = sys_->ctx().counters().tier_demotions;
  std::vector<ContigVictim> victims;
  auto claim = sys_->contig()->Claim(kAreaBytes, &victims);
  ASSERT_TRUE(claim.ok());
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].cls, LenderClass::kTierCleanCopy);
  EXPECT_EQ(victims[0].cookie, static_cast<uint64_t>(inode_));
  // The copy was clean: no writeback needed, the mappings now resolve to the
  // intact NVM home and reads see the original bytes.
  EXPECT_TRUE(sys_->tier()->PromotedOf(inode_).empty());
  EXPECT_GT(sys_->ctx().counters().tier_demotions, demotions0);
  EXPECT_EQ(ReadMapped(0, kPageSize), Pattern(kPageSize, 4));
  EXPECT_EQ(ReadHome(0, kPageSize), Pattern(kPageSize, 4));
}

TEST_F(ContigRevokeTest, DirtyTierCopyWritesBackBeforeRevoke) {
  Boot(ContigTierOn());
  MakeSegment("/c/dirty", 2 * kMiB, /*salt=*/5);
  PromoteBorrowed();
  auto dirty = Pattern(bytes_, /*salt=*/6);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, dirty).ok());
  // The durability invariant: the dirty delta lands durably in the NVM home
  // *before* the claim reuses the window.
  auto claim = sys_->contig()->Claim(kAreaBytes);
  ASSERT_TRUE(claim.ok());
  EXPECT_TRUE(sys_->tier()->PromotedOf(inode_).empty());
  EXPECT_EQ(ReadHome(0, bytes_), Pattern(bytes_, 6));
  EXPECT_EQ(ReadMapped(0, kPageSize), Pattern(kPageSize, 6));
}

TEST_F(ContigRevokeTest, PoisonedDirtyCopyQuarantinesClaimStillSucceeds) {
  Boot(ContigTierOn());
  MakeSegment("/c/poison", 2 * kMiB, /*salt=*/7);
  const PromotedExtent e = PromoteBorrowed();
  auto dirty = Pattern(bytes_, /*salt=*/8);
  ASSERT_TRUE(sys_->UserWrite(*proc_, va_, dirty).ok());
  // Poison a cache line: the surrender's writeback read fails. The claim
  // must still succeed -- the range quarantines and the dirty delta is
  // forfeited (same contract as any degraded demotion).
  sys_->machine().fault_injector().MarkUnreadable(e.cache + 64, /*sticky=*/false);
  auto claim = sys_->contig()->Claim(kAreaBytes);
  ASSERT_TRUE(claim.ok());
  EXPECT_TRUE(sys_->tier()->PromotedOf(inode_).empty());
  EXPECT_EQ(sys_->tier()->quarantined_bytes(), bytes_);
  EXPECT_GE(sys_->ctx().counters().poison_quarantines, 1u);
  // Home still holds the pre-dirty bytes; mapped reads serve them degraded.
  EXPECT_EQ(ReadHome(0, kPageSize), Pattern(kPageSize, 7));
  const uint64_t degraded0 = sys_->ctx().counters().degraded_reads;
  EXPECT_EQ(ReadMapped(0, kPageSize), Pattern(kPageSize, 7));
  EXPECT_GT(sys_->ctx().counters().degraded_reads, degraded0);
  // The fence holds: the range never re-promotes into the reclaimed window.
  ASSERT_TRUE(sys_->MadviseTier(*proc_, va_, bytes_, TierHint::kHot).ok());
  EXPECT_TRUE(sys_->tier()->PromotedOf(inode_).empty());
}

TEST_F(ContigRevokeTest, OccupancyAndProcSnapshotExposeAreaState) {
  Boot(ContigOn());
  MakeDiscardable("/c/gauge", 1 * kMiB, kPageSize, /*salt=*/9);
  const TierOccupancy o = sys_->Occupancy();
  EXPECT_EQ(o.contig_area_bytes, kAreaBytes);
  EXPECT_EQ(o.contig_lent_file_bytes, 1 * kMiB);
  EXPECT_EQ(o.contig_free_bytes, kAreaBytes - 1 * kMiB);
  const std::string snapshot = sys_->DumpProcSnapshot();
  EXPECT_NE(snapshot.find("== contigstat =="), std::string::npos);
  EXPECT_NE(snapshot.find("mode gcma"), std::string::npos);
  EXPECT_NE(snapshot.find("lent_file_bytes 1048576"), std::string::npos);
}

TEST_F(ContigRevokeTest, LendingSurvivesCrashRewire) {
  Boot(ContigOn());
  MakeDiscardable("/c/precrash", 1 * kMiB, kPageSize, /*salt=*/10);
  ASSERT_TRUE(sys_->Crash().ok());
  // Tmpfs is empty after the crash and the rebuilt area starts fresh; the
  // rewired revokers must serve a whole new lend/claim cycle.
  ASSERT_EQ(sys_->contig()->lent_bytes_total(), 0u);
  auto launched = sys_->Launch(Backend::kFom, TinyImage());
  ASSERT_TRUE(launched.ok());
  proc_ = *launched;
  const InodeId id = MakeDiscardable("/c/postcrash", 1 * kMiB, kPageSize, /*salt=*/11);
  EXPECT_EQ(sys_->contig()->lent_bytes(LenderClass::kDiscardableFile), 1 * kMiB);
  std::vector<ContigVictim> victims;
  ASSERT_TRUE(sys_->contig()->Claim(kAreaBytes, &victims).ok());
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].cookie, static_cast<uint64_t>(id));
  EXPECT_EQ(FileRead(id, 0, kPageSize), std::vector<uint8_t>(kPageSize, 0));
}

}  // namespace
}  // namespace o1mem
