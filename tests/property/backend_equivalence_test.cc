// Property test: the two memory backends are observationally equivalent.
//
// The same random workload -- mmap, user writes, user reads, munmap -- runs
// on a baseline process and on a FOM process. Every read must return the
// same bytes on both; afterwards, FOM must have taken zero demand faults
// while the baseline took at least one per touched page, and exits must
// return both systems to their initial free-memory levels.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/os/system.h"
#include "src/support/rng.h"

namespace o1mem {
namespace {

SystemConfig EquivConfig() {
  SystemConfig config;
  config.machine.dram_bytes = 256 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  return config;
}

// Applies one scripted workload to a process; appends every byte observed by
// reads (the observable behaviour) to *observed. Void so gtest ASSERTs work.
void RunWorkload(System& sys, Process* proc, uint64_t seed, std::vector<uint8_t>* observed_out) {
  Rng rng(seed);
  std::vector<uint8_t>& observed = *observed_out;
  struct Region {
    Vaddr base;
    uint64_t bytes;
  };
  std::vector<Region> regions;

  for (int step = 0; step < 200; ++step) {
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 25 && regions.size() < 12) {
      const uint64_t bytes = rng.NextInRange(1, 64) * kPageSize;
      auto vaddr = sys.Mmap(*proc, MmapArgs{.length = bytes});
      ASSERT_TRUE(vaddr.ok()) << vaddr.status().ToString();
      regions.push_back(Region{.base = *vaddr, .bytes = bytes});
    } else if (dice < 60 && !regions.empty()) {
      const Region& r = regions[rng.NextBelow(regions.size())];
      std::vector<uint8_t> data(rng.NextInRange(1, 4096));
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      const uint64_t off = rng.NextBelow(r.bytes - data.size() + 1);
      ASSERT_TRUE(sys.UserWrite(*proc, r.base + off, data).ok());
    } else if (dice < 90 && !regions.empty()) {
      const Region& r = regions[rng.NextBelow(regions.size())];
      std::vector<uint8_t> out(rng.NextInRange(1, 4096));
      const uint64_t off = rng.NextBelow(r.bytes - out.size() + 1);
      ASSERT_TRUE(sys.UserRead(*proc, r.base + off, out).ok());
      observed.insert(observed.end(), out.begin(), out.end());
    } else if (!regions.empty()) {
      const size_t pick = rng.NextBelow(regions.size());
      ASSERT_TRUE(sys.Munmap(*proc, regions[pick].base, regions[pick].bytes).ok());
      regions.erase(regions.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
}

class BackendEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendEquivalence, SameObservableBytes) {
  System baseline_sys(EquivConfig());
  System fom_sys(EquivConfig());
  const uint64_t baseline_free = baseline_sys.phys_manager().free_bytes();
  const uint64_t fom_free = fom_sys.pmfs().free_bytes();
  auto baseline_proc = baseline_sys.Launch(Backend::kBaseline);
  auto fom_proc = fom_sys.Launch(Backend::kFom);
  ASSERT_TRUE(baseline_proc.ok());
  ASSERT_TRUE(fom_proc.ok());

  std::vector<uint8_t> baseline_observed;
  std::vector<uint8_t> fom_observed;
  RunWorkload(baseline_sys, *baseline_proc, GetParam(), &baseline_observed);
  RunWorkload(fom_sys, *fom_proc, GetParam(), &fom_observed);

  // Identical observable behaviour.
  ASSERT_EQ(baseline_observed.size(), fom_observed.size());
  EXPECT_EQ(baseline_observed, fom_observed);

  // Backend-characteristic invariants.
  EXPECT_GT(baseline_sys.ctx().counters().minor_faults, 0u);
  EXPECT_EQ(fom_sys.ctx().counters().minor_faults, 0u);

  // Exit returns both to their starting free levels.
  ASSERT_TRUE(baseline_sys.Exit(*baseline_proc).ok());
  ASSERT_TRUE(fom_sys.Exit(*fom_proc).ok());
  EXPECT_EQ(baseline_sys.phys_manager().free_bytes(), baseline_free);
  EXPECT_EQ(fom_sys.pmfs().free_bytes(), fom_free);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace o1mem
