// Exhaustive crash-point sweep: a fixed ~56-op PMFS + FOM workload is first
// run to completion once (the golden run) to count every NVM line-write and
// flush event it generates. The workload is then re-run once per event
// index with the fault injector armed to cut power exactly there. After
// each crash + recovery the test asserts:
//   * Pmfs::VerifyIntegrity() and an online Scrub() both pass;
//   * every persistent file and FOM segment whose state was settled before
//     the interrupted operation has exactly the model's contents (the
//     syscall write path is durable-on-return; segments are durable after
//     UserFlush);
//   * paths touched by the operation the crash interrupted may be in either
//     the old or the new state, but nothing else may have changed;
//   * no volatile file survives.
// The strict (explicit-flush) machine additionally runs with torn persists
// enabled, so unflushed multi-line persists land partially instead of
// taking the kindest all-revert outcome.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/os/system.h"
#include "src/support/rng.h"

namespace o1mem {
namespace {

constexpr uint64_t kSweepSeed = 0x5eedull;

// Small segments keep the total event count (= sweep iterations) tractable.
ProcessImage TinyImage() {
  return ProcessImage{.code_bytes = kPageSize, .stack_bytes = kPageSize,
                      .heap_bytes = kPageSize};
}

SystemConfig SweepConfig(PersistenceModel persistence) {
  SystemConfig config;
  config.machine.dram_bytes = 16 * kMiB;
  config.machine.nvm_bytes = 32 * kMiB;
  config.machine.persistence = persistence;
  config.swap_pages = 1024;
  return config;
}

struct Model {
  // Path -> exact expected contents.
  std::map<std::string, std::vector<uint8_t>> files;  // PMFS persistent files
  std::map<std::string, std::vector<uint8_t>> segs;   // persistent FOM segments
};

struct Op {
  std::vector<std::string> touched;  // paths left indeterminate by a mid-op crash
  std::function<void()> run;
};

// Shared workload helpers. Lives in the test body so the ops (which capture
// it by reference) never outlive it.
struct Driver {
  System& sys;
  Process*& proc;
  Rng& rng;
  Model& m;

  std::vector<uint8_t> Fill(uint64_t n) {
    std::vector<uint8_t> data(n);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.Next());
    }
    return data;
  }

  void Pwrite(const std::string& path, uint64_t offset, uint64_t len) {
    auto fd = sys.Open(*proc, path);
    O1_CHECK(fd.ok());
    auto data = Fill(len);
    O1_CHECK(sys.Pwrite(*proc, *fd, offset, data).ok());
    O1_CHECK(sys.Close(*proc, *fd).ok());
    auto& bytes = m.files[path];
    if (bytes.size() < offset + data.size()) {
      bytes.resize(offset + data.size(), 0);
    }
    std::copy(data.begin(), data.end(),
              bytes.begin() + static_cast<std::ptrdiff_t>(offset));
  }

  void SegWrite(const std::string& path, bool create) {
    const uint64_t bytes = create ? rng.NextInRange(1, 2) * kPageSize
                                  : m.segs.at(path).size();
    Result<InodeId> seg =
        create ? sys.fom().CreateSegment(path, bytes,
                                         SegmentOptions{.flags = {.persistent = true}})
               : sys.fom().OpenSegment(path);
    O1_CHECK(seg.ok());
    auto va = sys.fom().Map(proc->fom(), *seg, Prot::kReadWrite);
    O1_CHECK(va.ok());
    auto data = Fill(bytes);
    O1_CHECK(sys.UserWrite(*proc, *va, data).ok());
    O1_CHECK(sys.UserFlush(*proc, *va, bytes).ok());
    O1_CHECK(sys.fom().Unmap(proc->fom(), *va).ok());
    m.segs[path] = std::move(data);
  }
};

// Builds the deterministic workload. `d.rng` is drawn only inside op bodies,
// in order, so any prefix of the op list consumes an identical prefix of the
// random stream on every run.
std::vector<Op> BuildWorkload(Driver& d) {
  std::vector<Op> ops;
  // Phase 1: create eight small persistent files.
  for (int i = 0; i < 8; ++i) {
    const std::string path = "/d/f" + std::to_string(i);
    ops.push_back({{path}, [&d, path, i] {
                     auto fd = d.sys.Creat(*d.proc, d.sys.pmfs(), path,
                                           FileFlags{.persistent = true});
                     O1_CHECK(fd.ok());
                     O1_CHECK(d.sys.Close(*d.proc, *fd).ok());
                     d.m.files[path] = {};
                     d.Pwrite(path, 0, 256 + 64 * static_cast<uint64_t>(i));
                   }});
  }
  // Phase 2: overwrite and extend them.
  for (int i = 0; i < 8; ++i) {
    const std::string path = "/d/f" + std::to_string(i);
    ops.push_back({{path}, [&d, path, i] {
                     d.Pwrite(path, static_cast<uint64_t>(i) * 128, 512);
                   }});
  }
  // Phase 3: volatile noise files -- must all vanish at every crash point.
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/d/v" + std::to_string(i);
    ops.push_back({{path}, [&d, path] {
                     auto fd = d.sys.Creat(*d.proc, d.sys.pmfs(), path,
                                           FileFlags{.persistent = false});
                     O1_CHECK(fd.ok());
                     auto data = d.Fill(300);
                     O1_CHECK(d.sys.Pwrite(*d.proc, *fd, 0, data).ok());
                     O1_CHECK(d.sys.Close(*d.proc, *fd).ok());
                   }});
  }
  // Phase 4: persistent FOM segments written through the DAX mapping.
  for (int i = 0; i < 4; ++i) {
    const std::string path = "/d/s" + std::to_string(i);
    ops.push_back({{path}, [&d, path] { d.SegWrite(path, /*create=*/true); }});
  }
  // Phase 5: namespace churn -- renames and unlinks.
  for (int i = 0; i < 2; ++i) {
    const std::string from = "/d/f" + std::to_string(i);
    const std::string to = "/d/r" + std::to_string(i);
    ops.push_back({{from, to}, [&d, from, to] {
                     O1_CHECK(d.sys.Rename(from, to).ok());
                     auto node = d.m.files.extract(from);
                     node.key() = to;
                     d.m.files.insert(std::move(node));
                   }});
  }
  for (const char* victim : {"/d/f2", "/d/f3", "/d/v0", "/d/v1"}) {
    const std::string path = victim;
    ops.push_back({{path}, [&d, path] {
                     O1_CHECK(d.sys.Unlink(path).ok());
                     d.m.files.erase(path);
                   }});
  }
  // Phase 6: truncate -- grow (zero-filled) then shrink.
  ops.push_back({{"/d/f4"}, [&d] {
                   auto fd = d.sys.Open(*d.proc, "/d/f4");
                   O1_CHECK(fd.ok());
                   O1_CHECK(d.sys.Ftruncate(*d.proc, *fd, 3 * kKiB).ok());
                   O1_CHECK(d.sys.Close(*d.proc, *fd).ok());
                   d.m.files["/d/f4"].resize(3 * kKiB, 0);
                 }});
  ops.push_back({{"/d/f5"}, [&d] {
                   auto fd = d.sys.Open(*d.proc, "/d/f5");
                   O1_CHECK(fd.ok());
                   O1_CHECK(d.sys.Ftruncate(*d.proc, *fd, 200).ok());
                   O1_CHECK(d.sys.Close(*d.proc, *fd).ok());
                   d.m.files["/d/f5"].resize(200);
                 }});
  // Phase 7: rewrite the FOM segments in place (exercises sidecar reuse).
  for (int i = 0; i < 4; ++i) {
    const std::string path = "/d/s" + std::to_string(i);
    ops.push_back({{path}, [&d, path] { d.SegWrite(path, /*create=*/false); }});
  }
  // Phase 8: delete one segment (its sidecar must go with it), then a final
  // round of writes into a fresh directory.
  ops.push_back({{"/d/s3"}, [&d] {
                   O1_CHECK(d.sys.fom().DeleteSegment("/d/s3").ok());
                   d.m.segs.erase("/d/s3");
                 }});
  ops.push_back({{"/d2"}, [&d] { O1_CHECK(d.sys.Mkdir(d.sys.pmfs(), "/d2").ok()); }});
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/d2/g" + std::to_string(i);
    ops.push_back({{path}, [&d, path] {
                     auto fd = d.sys.Creat(*d.proc, d.sys.pmfs(), path,
                                           FileFlags{.persistent = true});
                     O1_CHECK(fd.ok());
                     O1_CHECK(d.sys.Close(*d.proc, *fd).ok());
                     d.m.files[path] = {};
                     d.Pwrite(path, 0, 700);
                   }});
  }
  // Phase 9: a last pass of overwrites so late crash points still have
  // journal traffic ahead of them.
  for (int i = 4; i < 8; ++i) {
    const std::string path = "/d/f" + std::to_string(i);
    ops.push_back({{path}, [&d, path] { d.Pwrite(path, 64, 256); }});
  }
  return ops;
}

// Verifies recovered state against `m`, treating every path in `touched` as
// indeterminate (old or new state both legal).
void VerifyRecovered(System& sys, const Model& m,
                     const std::set<std::string>& touched) {
  ASSERT_TRUE(sys.pmfs().VerifyIntegrity().ok());
  auto scrub = sys.pmfs().Scrub();
  ASSERT_TRUE(scrub.ok());
  ASSERT_FALSE(scrub->degraded);
  ASSERT_EQ(scrub->files_quarantined, 0u);
  ASSERT_EQ(scrub->media_errors_found, 0u);
  ASSERT_TRUE(sys.pmfs().VerifyIntegrity().ok());

  // Persistent files: exact contents.
  for (const auto& [path, bytes] : m.files) {
    if (touched.contains(path)) {
      continue;
    }
    auto inode = sys.pmfs().LookupPath(path);
    ASSERT_TRUE(inode.ok()) << path << " lost";
    auto st = sys.pmfs().Stat(*inode);
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(st->size, bytes.size()) << path;
    if (!bytes.empty()) {
      std::vector<uint8_t> out(bytes.size());
      auto read = sys.pmfs().ReadAt(*inode, 0, out);
      ASSERT_TRUE(read.ok()) << path;
      ASSERT_EQ(*read, bytes.size());
      ASSERT_EQ(out, bytes) << path << " corrupted";
    }
  }

  // Persistent FOM segments: reopen and remap through a fresh process using
  // the pt-splice path, which rehydrates the NVM table sidecars.
  auto launched = sys.Launch(Backend::kFom, TinyImage());
  ASSERT_TRUE(launched.ok());
  Process* proc = *launched;
  for (const auto& [path, bytes] : m.segs) {
    if (touched.contains(path)) {
      continue;
    }
    auto seg = sys.fom().OpenSegment(path);
    ASSERT_TRUE(seg.ok()) << path << " lost";
    auto va = sys.fom().Map(proc->fom(), *seg, Prot::kRead,
                            MapOptions{.mechanism = MapMechanism::kPtSplice});
    ASSERT_TRUE(va.ok());
    std::vector<uint8_t> out(bytes.size());
    ASSERT_TRUE(sys.UserRead(*proc, *va, out).ok());
    ASSERT_EQ(out, bytes) << path << " corrupted";
    ASSERT_TRUE(sys.fom().Unmap(proc->fom(), *va).ok());
  }
  ASSERT_TRUE(sys.Exit(proc).ok());

  // No survivors beyond the model, table sidecars, and the interrupted op's
  // own paths (volatile files never survive, so anything else is a leak of
  // the journal replay).
  for (const std::string& path : sys.pmfs().ListPaths()) {
    const bool allowed = m.files.contains(path) || m.segs.contains(path) ||
                         path.starts_with("/.fom/tables/") || touched.contains(path);
    ASSERT_TRUE(allowed) << "unexpected survivor " << path;
  }
}

enum class SweepEvent { kWrite, kFlush };

// The sweep is embarrassingly parallel, so each (persistence, event) pair is
// split into kShards ctest cases; shard s takes crash indices s, s+kShards,
// s+2*kShards, ... Together the shards cover every index exactly once.
constexpr int kShards = 4;

struct Param {
  PersistenceModel persistence;
  SweepEvent event;
  int shard = 0;
};

class CrashSweep : public ::testing::TestWithParam<Param> {};

TEST_P(CrashSweep, EveryCrashPointRecovers) {
  const PersistenceModel persistence = GetParam().persistence;
  const SweepEvent event = GetParam().event;
  const auto shard = static_cast<uint64_t>(GetParam().shard);

  // Golden run: count the workload's events and capture the final model.
  uint64_t first = 0;
  uint64_t last = 0;
  {
    System sys(SweepConfig(persistence));
    auto launched = sys.Launch(Backend::kFom, TinyImage());
    ASSERT_TRUE(launched.ok());
    Process* proc = *launched;
    Rng rng(kSweepSeed);
    Model model;
    Driver driver{sys, proc, rng, model};
    auto ops = BuildWorkload(driver);
    FaultInjector& fi = sys.machine().fault_injector();
    first = event == SweepEvent::kWrite ? fi.nvm_line_writes() : fi.nvm_flushes();
    for (Op& op : ops) {
      op.run();
    }
    last = event == SweepEvent::kWrite ? fi.nvm_line_writes() : fi.nvm_flushes();
    // Sanity: the workload must be big enough to be a meaningful sweep, and
    // the end state must survive a clean crash.
    ASSERT_GE(ops.size(), 50u);
    ASSERT_GT(last, first);
    ASSERT_TRUE(sys.Crash().ok());
    VerifyRecovered(sys, model, {});
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  SCOPED_TRACE("sweeping shard " + std::to_string(shard) + " of " +
               std::to_string(last - first) + " crash points");

  for (uint64_t index = first + shard; index < last; index += kShards) {
    System sys(SweepConfig(persistence));
    auto launched = sys.Launch(Backend::kFom, TinyImage());
    ASSERT_TRUE(launched.ok());
    Process* proc = *launched;
    Rng rng(kSweepSeed);
    Model model;
    Driver driver{sys, proc, rng, model};
    auto ops = BuildWorkload(driver);

    FaultInjector& fi = sys.machine().fault_injector();
    if (persistence == PersistenceModel::kExplicitFlush) {
      // Unflushed lines land partially, not all-revert.
      fi.EnableTornPersists(/*seed=*/index * 2654435761ull + 1, /*persist_percent=*/50);
    }
    if (event == SweepEvent::kWrite) {
      fi.ArmCrashAtNvmWrite(index);
    } else {
      fi.ArmCrashAtFlush(index);
    }

    // Run until the armed event fires mid-op; the model snapshot from just
    // before that op is the reference state.
    Model snapshot;
    std::set<std::string> touched;
    for (Op& op : ops) {
      snapshot = model;
      op.run();
      if (fi.triggered()) {
        touched.insert(op.touched.begin(), op.touched.end());
        break;
      }
    }
    ASSERT_TRUE(fi.triggered()) << "index " << index << " never fired";
    ASSERT_TRUE(sys.Crash().ok()) << "index " << index;
    {
      SCOPED_TRACE("crash index " + std::to_string(index));
      VerifyRecovered(sys, snapshot, touched);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = info.param.persistence == PersistenceModel::kAutoDurable
                         ? "Auto"
                         : "Strict";
  name += info.param.event == SweepEvent::kWrite ? "Writes" : "Flushes";
  name += "Shard" + std::to_string(info.param.shard);
  return name;
}

std::vector<Param> SweepParams() {
  std::vector<Param> params;
  for (PersistenceModel persistence :
       {PersistenceModel::kAutoDurable, PersistenceModel::kExplicitFlush}) {
    for (SweepEvent event : {SweepEvent::kWrite, SweepEvent::kFlush}) {
      for (int shard = 0; shard < kShards; ++shard) {
        params.push_back(Param{persistence, event, shard});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashSweep, ::testing::ValuesIn(SweepParams()), ParamName);

}  // namespace
}  // namespace o1mem
