// Namespace property test: random directory/file/rename churn against a
// reference model (a plain set of paths with parent bookkeeping done the
// slow, obviously correct way).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/fs/namespace.h"
#include "src/support/rng.h"

namespace o1mem {
namespace {

// The oracle: files and dirs as flat sets, with the same rules.
struct Model {
  std::set<std::string> dirs;   // never contains "/"
  std::map<std::string, InodeId> files;

  static std::string Parent(const std::string& path) {
    const size_t slash = path.rfind('/');
    return slash == 0 ? "/" : path.substr(0, slash);
  }

  bool DirOk(const std::string& path) const { return path == "/" || dirs.contains(path); }

  bool Exists(const std::string& path) const {
    return dirs.contains(path) || files.contains(path);
  }

  bool HasChildren(const std::string& dir) const {
    const std::string prefix = dir + "/";
    for (const auto& d : dirs) {
      if (d.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
    for (const auto& [f, id] : files) {
      if (f.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
    return false;
  }

  void AddFileWithParents(const std::string& path, InodeId id) {
    files[path] = id;
    for (std::string p = Parent(path); p != "/"; p = Parent(p)) {
      dirs.insert(p);
    }
  }
};

class NamespaceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NamespaceProperty, AgreesWithOracle) {
  Rng rng(GetParam());
  Namespace ns;
  Model model;
  InodeId next_id = 1;

  // A small path vocabulary keeps collisions frequent (the interesting part).
  auto random_path = [&](int max_depth) {
    static const char* kNames[] = {"a", "b", "c", "data", "x"};
    std::string path;
    const int depth = 1 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(max_depth)));
    for (int i = 0; i < depth; ++i) {
      path += '/';
      path += kNames[rng.NextBelow(5)];
    }
    return path;
  };

  for (int step = 0; step < 600; ++step) {
    const uint64_t dice = rng.NextBelow(100);
    const std::string p = random_path(3);
    if (dice < 25) {
      // AddFile: allowed unless the path exists or an ancestor is a file.
      bool ancestor_is_file = false;
      for (std::string a = Model::Parent(p); a != "/"; a = Model::Parent(a)) {
        ancestor_is_file |= model.files.contains(a);
      }
      const bool expect_ok = !model.Exists(p) && !ancestor_is_file;
      const Status got = ns.AddFile(p, next_id);
      ASSERT_EQ(got.ok(), expect_ok) << p << " step " << step << ": " << got.ToString();
      if (expect_ok) {
        model.AddFileWithParents(p, next_id);
        ++next_id;
      }
    } else if (dice < 40) {
      // Mkdir: parent must exist as a dir, path must not exist.
      const bool expect_ok = !model.Exists(p) && model.DirOk(Model::Parent(p));
      ASSERT_EQ(ns.Mkdir(p).ok(), expect_ok) << p << " step " << step;
      if (expect_ok) {
        model.dirs.insert(p);
      }
    } else if (dice < 55) {
      // RemoveFile.
      const bool expect_ok = model.files.contains(p);
      auto got = ns.RemoveFile(p);
      ASSERT_EQ(got.ok(), expect_ok) << p;
      if (expect_ok) {
        ASSERT_EQ(got.value(), model.files.at(p));
        model.files.erase(p);
      }
    } else if (dice < 65) {
      // Rmdir: dir must exist and be empty.
      const bool expect_ok = model.dirs.contains(p) && !model.HasChildren(p);
      ASSERT_EQ(ns.Rmdir(p).ok(), expect_ok) << p;
      if (expect_ok) {
        model.dirs.erase(p);
      }
    } else if (dice < 80) {
      // Rename file (dir renames are covered by the dedicated unit tests;
      // the oracle for subtree moves with this vocabulary gets hairy).
      const std::string q = random_path(3);
      const bool src_is_file = model.files.contains(p);
      const bool expect_ok = src_is_file && !model.Exists(q) && model.DirOk(Model::Parent(q)) &&
                             p != q;
      if (!src_is_file && model.dirs.contains(p)) {
        continue;  // skip directory renames in the oracle loop
      }
      ASSERT_EQ(ns.Rename(p, q).ok(), expect_ok) << p << " -> " << q;
      if (expect_ok) {
        model.files[q] = model.files.at(p);
        model.files.erase(p);
      }
    } else {
      // Lookup queries.
      auto found = ns.LookupFile(p);
      ASSERT_EQ(found.ok(), model.files.contains(p)) << p;
      if (found.ok()) {
        ASSERT_EQ(found.value(), model.files.at(p));
      }
      ASSERT_EQ(ns.DirExists(p), model.dirs.contains(p)) << p;
    }
  }

  // Final sweep: the two worlds list the same files.
  auto files = ns.AllFiles();
  ASSERT_EQ(files.size(), model.files.size());
  for (const auto& [path, id] : files) {
    ASSERT_TRUE(model.files.contains(path)) << path;
    ASSERT_EQ(model.files.at(path), id) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NamespaceProperty, ::testing::Values(7, 14, 21, 28, 35));

}  // namespace
}  // namespace o1mem
