// Property test: both file systems behave like an ideal byte store.
//
// A random stream of create/write/read/resize/unlink operations runs against
// tmpfs and PMFS (both zeroing policies) in lockstep with a reference model
// (path -> byte vector). Reads must always return exactly the model's bytes
// (including zeros for holes); PMFS must additionally pass integrity
// verification throughout, and its persistent files must survive a crash
// with contents intact while volatile files vanish.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/fs/pmfs.h"
#include "src/fs/tmpfs.h"
#include "src/mm/phys_manager.h"
#include "src/support/rng.h"

namespace o1mem {
namespace {

enum class FsKind { kTmpfs, kPmfsEager, kPmfsEpoch };

struct Param {
  FsKind fs;
  uint64_t seed;
};

class FsProperty : public ::testing::TestWithParam<Param> {
 protected:
  FsProperty()
      : machine_(MachineConfig{.dram_bytes = 128 * kMiB, .nvm_bytes = 128 * kMiB}),
        phys_mgr_(&machine_) {
    switch (GetParam().fs) {
      case FsKind::kTmpfs:
        tmpfs_ = std::make_unique<Tmpfs>(&machine_, &phys_mgr_, 96 * kMiB);
        fs_ = tmpfs_.get();
        break;
      case FsKind::kPmfsEager:
        pmfs_ = std::make_unique<Pmfs>(&machine_, machine_.phys().nvm_base(), 128 * kMiB,
                                       ZeroPolicy::kEagerZero);
        fs_ = pmfs_.get();
        break;
      case FsKind::kPmfsEpoch:
        pmfs_ = std::make_unique<Pmfs>(&machine_, machine_.phys().nvm_base(), 128 * kMiB,
                                       ZeroPolicy::kZeroEpoch);
        fs_ = pmfs_.get();
        break;
    }
  }

  Machine machine_;
  PhysManager phys_mgr_;
  std::unique_ptr<Tmpfs> tmpfs_;
  std::unique_ptr<Pmfs> pmfs_;
  FileSystem* fs_ = nullptr;
};

TEST_P(FsProperty, BehavesLikeAByteStore) {
  Rng rng(GetParam().seed);
  std::map<std::string, std::vector<uint8_t>> model;  // reference contents
  std::map<std::string, InodeId> inodes;
  int created = 0;

  for (int step = 0; step < 300; ++step) {
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 20 && created < 40) {
      // Create.
      const std::string path = "/f" + std::to_string(created++);
      FileFlags flags;
      flags.persistent = GetParam().fs != FsKind::kTmpfs && rng.NextBool(0.5);
      auto inode = fs_->Create(path, flags);
      ASSERT_TRUE(inode.ok());
      inodes[path] = *inode;
      model[path] = {};
    } else if (dice < 55 && !model.empty()) {
      // Write at a random offset (may extend the file).
      auto it = std::next(model.begin(), static_cast<int>(rng.NextBelow(model.size())));
      const uint64_t offset = rng.NextBelow(96 * kKiB);
      std::vector<uint8_t> data(rng.NextInRange(1, 16 * kKiB));
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      auto wrote = fs_->WriteAt(inodes.at(it->first), offset, data);
      if (!wrote.ok()) {
        continue;  // quota/space pressure is legal; model unchanged
      }
      ASSERT_EQ(*wrote, data.size());
      auto& bytes = it->second;
      if (bytes.size() < offset + data.size()) {
        bytes.resize(offset + data.size(), 0);
      }
      std::copy(data.begin(), data.end(),
                bytes.begin() + static_cast<std::ptrdiff_t>(offset));
    } else if (dice < 75 && !model.empty()) {
      // Read a random window and compare with the model (EOF clamping too).
      auto it = std::next(model.begin(), static_cast<int>(rng.NextBelow(model.size())));
      const uint64_t offset = rng.NextBelow(128 * kKiB);
      std::vector<uint8_t> out(rng.NextInRange(1, 8 * kKiB), 0xEE);
      auto read = fs_->ReadAt(inodes.at(it->first), offset, out);
      ASSERT_TRUE(read.ok());
      const auto& bytes = it->second;
      const uint64_t expected =
          offset >= bytes.size() ? 0 : std::min<uint64_t>(out.size(), bytes.size() - offset);
      ASSERT_EQ(*read, expected) << it->first << " @" << offset;
      for (uint64_t i = 0; i < expected; ++i) {
        ASSERT_EQ(out[i], bytes[offset + i]) << it->first << " @" << offset + i;
      }
    } else if (dice < 85 && !model.empty()) {
      // Resize (both directions). Growth reads back as zeros.
      auto it = std::next(model.begin(), static_cast<int>(rng.NextBelow(model.size())));
      const uint64_t new_size = rng.NextBelow(128 * kKiB);
      Status s = fs_->Resize(inodes.at(it->first), new_size);
      if (!s.ok()) {
        continue;  // out of space
      }
      it->second.resize(new_size, 0);
    } else if (dice < 92 && !model.empty()) {
      // Unlink.
      auto it = std::next(model.begin(), static_cast<int>(rng.NextBelow(model.size())));
      ASSERT_TRUE(fs_->Unlink(it->first).ok());
      inodes.erase(it->first);
      model.erase(it);
    } else if (pmfs_ != nullptr && dice < 95) {
      ASSERT_TRUE(pmfs_->VerifyIntegrity().ok()) << "step " << step;
    }
  }

  // Full final sweep: every file's entire contents match the model.
  for (const auto& [path, bytes] : model) {
    auto stat = fs_->Stat(inodes.at(path));
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->size, bytes.size()) << path;
    std::vector<uint8_t> out(bytes.size() + 16, 0xEE);
    auto read = fs_->ReadAt(inodes.at(path), 0, out);
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(*read, bytes.size());
    for (size_t i = 0; i < bytes.size(); ++i) {
      ASSERT_EQ(out[i], bytes[i]) << path << " byte " << i;
    }
  }

  // Crash pass for PMFS: persistent files keep contents, volatile vanish.
  if (pmfs_ != nullptr) {
    std::map<std::string, bool> persistent;
    for (const auto& [path, id] : inodes) {
      persistent[path] = fs_->Stat(id)->persistent;
    }
    machine_.Crash();
    ASSERT_TRUE(pmfs_->OnCrash().ok());
    ASSERT_TRUE(pmfs_->VerifyIntegrity().ok());
    for (const auto& [path, bytes] : model) {
      auto found = pmfs_->LookupPath(path);
      if (!persistent.at(path)) {
        EXPECT_FALSE(found.ok()) << path << " should have vanished";
        continue;
      }
      ASSERT_TRUE(found.ok()) << path;
      std::vector<uint8_t> out(bytes.size());
      auto read = pmfs_->ReadAt(*found, 0, out);
      ASSERT_TRUE(read.ok());
      ASSERT_EQ(*read, bytes.size());
      for (size_t i = 0; i < bytes.size(); ++i) {
        ASSERT_EQ(out[i], bytes[i]) << path << " byte " << i << " after crash";
      }
    }
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string fs;
  switch (info.param.fs) {
    case FsKind::kTmpfs:
      fs = "Tmpfs";
      break;
    case FsKind::kPmfsEager:
      fs = "PmfsEager";
      break;
    case FsKind::kPmfsEpoch:
      fs = "PmfsEpoch";
      break;
  }
  return fs + "Seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FsProperty,
    ::testing::Values(Param{FsKind::kTmpfs, 1}, Param{FsKind::kTmpfs, 2},
                      Param{FsKind::kTmpfs, 3}, Param{FsKind::kPmfsEager, 1},
                      Param{FsKind::kPmfsEager, 2}, Param{FsKind::kPmfsEager, 3},
                      Param{FsKind::kPmfsEpoch, 1}, Param{FsKind::kPmfsEpoch, 2},
                      Param{FsKind::kPmfsEpoch, 3}),
    ParamName);

}  // namespace
}  // namespace o1mem
