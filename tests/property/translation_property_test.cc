// Property test: the MMU (TLBs + page walks + range walks + shootdowns)
// always agrees with a flat reference model of the address space.
//
// A random operation stream -- 4K/2M page maps and unmaps, range-entry
// installs and removals, TLB shootdowns, accesses -- is applied both to the
// simulated hardware and to a byte-granularity reference map. After every
// step a batch of random probe addresses must translate to exactly the
// reference's answer (including misses and protection denials).
#include <gtest/gtest.h>

#include <map>

#include "src/sim/machine.h"
#include "src/support/rng.h"

namespace o1mem {
namespace {

struct RefMapping {
  Paddr pbase;
  uint64_t bytes;
  Prot prot;
};

class TranslationModel {
 public:
  // Reference: sorted map vbase -> mapping; no overlaps by construction.
  bool Overlaps(Vaddr vbase, uint64_t bytes) const {
    auto next = ref_.lower_bound(vbase);
    if (next != ref_.end() && next->first < vbase + bytes) {
      return true;
    }
    if (next != ref_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second.bytes > vbase) {
        return true;
      }
    }
    return false;
  }

  void Add(Vaddr vbase, Paddr pbase, uint64_t bytes, Prot prot) {
    ref_.emplace(vbase, RefMapping{.pbase = pbase, .bytes = bytes, .prot = prot});
  }

  void Remove(Vaddr vbase) { ref_.erase(vbase); }

  // nullopt = unmapped.
  std::optional<std::pair<Paddr, Prot>> Lookup(Vaddr vaddr) const {
    auto it = ref_.upper_bound(vaddr);
    if (it == ref_.begin()) {
      return std::nullopt;
    }
    --it;
    if (vaddr >= it->first && vaddr < it->first + it->second.bytes) {
      return std::make_pair(it->second.pbase + (vaddr - it->first), it->second.prot);
    }
    return std::nullopt;
  }

  std::vector<Vaddr> Bases() const {
    std::vector<Vaddr> out;
    for (const auto& [vbase, m] : ref_) {
      out.push_back(vbase);
    }
    return out;
  }

  const std::map<Vaddr, RefMapping>& ref() const { return ref_; }

 private:
  std::map<Vaddr, RefMapping> ref_;
};

class TranslationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TranslationProperty, HardwareAgreesWithReferenceModel) {
  MachineConfig config;
  config.dram_bytes = 1 * kGiB;
  config.nvm_bytes = 0;
  // Tiny TLBs so replacement and staleness paths are exercised hard.
  config.mmu.l1_tlb_entries = 16;
  config.mmu.l1_tlb_ways = 4;
  config.mmu.l2_tlb_entries = 64;
  config.mmu.l2_tlb_ways = 8;
  config.mmu.range_tlb_entries = 4;
  config.mmu.pwc_entries = 8;
  Machine machine(config);
  auto as = machine.CreateAddressSpace();
  TranslationModel model;
  Rng rng(GetParam());

  constexpr Vaddr kVaSpan = 8 * kGiB;
  // Kind of mapping per live vbase, needed for correct teardown.
  std::map<Vaddr, int> kind;  // 0 = 4K page, 1 = 2M page, 2 = range

  for (int step = 0; step < 400; ++step) {
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 40) {
      // Install something new.
      const int what = static_cast<int>(rng.NextBelow(3));
      uint64_t bytes;
      Vaddr vbase;
      if (what == 0) {
        bytes = kPageSize;
        vbase = AlignDown(rng.NextBelow(kVaSpan), kPageSize);
      } else if (what == 1) {
        bytes = kLargePageSize;
        vbase = AlignDown(rng.NextBelow(kVaSpan), kLargePageSize);
      } else {
        bytes = AlignUp(rng.NextInRange(1, 64) * kPageSize, kPageSize);
        vbase = AlignDown(rng.NextBelow(kVaSpan), kPageSize);
      }
      if (model.Overlaps(vbase, bytes)) {
        continue;
      }
      const Paddr pbase = AlignDown(rng.NextBelow(config.dram_bytes - bytes),
                                    what == 1 ? kLargePageSize : kPageSize);
      const Prot prot = rng.NextBool(0.5) ? Prot::kReadWrite : Prot::kRead;
      if (what == 2) {
        ASSERT_TRUE(as->range_table()
                        .Insert({.vbase = vbase, .bytes = bytes, .pbase = pbase, .prot = prot})
                        .ok());
      } else {
        Status s = as->page_table().MapPage(vbase, pbase, bytes, prot);
        if (!s.ok()) {
          continue;  // e.g. 4K under an existing 2M region of the radix tree
        }
      }
      model.Add(vbase, pbase, bytes, prot);
      kind[vbase] = what;
    } else if (dice < 60 && !model.ref().empty()) {
      // Tear something down (with the mandatory shootdown).
      const auto bases = model.Bases();
      const Vaddr vbase = bases[rng.NextBelow(bases.size())];
      const uint64_t bytes = model.ref().at(vbase).bytes;
      if (kind.at(vbase) == 2) {
        ASSERT_TRUE(as->range_table().Remove(vbase).ok());
      } else {
        ASSERT_TRUE(as->page_table().UnmapPage(vbase, bytes).ok());
      }
      machine.mmu().ShootdownRange(as->asid(), vbase, bytes);
      model.Remove(vbase);
      kind.erase(vbase);
    } else if (dice < 65) {
      // Random gratuitous shootdown: must never break correctness.
      machine.mmu().ShootdownRange(as->asid(), AlignDown(rng.NextBelow(kVaSpan), kPageSize),
                                   rng.NextInRange(1, 512) * kPageSize);
    }

    // Probe: 8 random addresses + 2 targeted at live mappings.
    for (int probe = 0; probe < 10; ++probe) {
      Vaddr vaddr;
      if (probe < 8 || model.ref().empty()) {
        vaddr = rng.NextBelow(kVaSpan);
      } else {
        const auto bases = model.Bases();
        const Vaddr vbase = bases[rng.NextBelow(bases.size())];
        vaddr = vbase + rng.NextBelow(model.ref().at(vbase).bytes);
      }
      const auto expected = model.Lookup(vaddr);
      const bool want_write = rng.NextBool(0.3);
      auto got = machine.mmu().Translate(*as, vaddr,
                                         want_write ? AccessType::kWrite : AccessType::kRead);
      if (!expected.has_value()) {
        EXPECT_FALSE(got.ok()) << "step " << step << " vaddr " << vaddr;
        continue;
      }
      if (want_write && !HasProt(expected->second, Prot::kWrite)) {
        ASSERT_FALSE(got.ok()) << "step " << step << " vaddr " << vaddr;
        EXPECT_EQ(got.status().code(), StatusCode::kPermissionDenied);
        continue;
      }
      ASSERT_TRUE(got.ok()) << "step " << step << " vaddr " << vaddr << ": "
                            << got.status().ToString();
      EXPECT_EQ(got->paddr, expected->first) << "step " << step << " vaddr " << vaddr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace o1mem
