// Crash-recovery property test: a random stream of file-system and FOM
// operations with power failures injected at random points. After every
// recovery:
//   * PMFS integrity verification must pass;
//   * persistent files must exist with exactly the contents the model says
//     (the write(2) path is durable-on-return, so the model is exact);
//   * volatile files must be gone;
//   * the block bitmap's free count must equal total minus live extents.
// Runs on both persistence models -- the strict (explicit-flush) machine
// must give identical guarantees for the file-API path.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/os/system.h"
#include "src/support/rng.h"

namespace o1mem {
namespace {

struct Param {
  PersistenceModel persistence;
  uint64_t seed;
};

class CrashProperty : public ::testing::TestWithParam<Param> {};

TEST_P(CrashProperty, RecoveryInvariantsHoldUnderRandomCrashes) {
  SystemConfig config;
  config.machine.dram_bytes = 128 * kMiB;
  config.machine.nvm_bytes = 256 * kMiB;
  config.machine.persistence = GetParam().persistence;
  System sys(config);
  Rng rng(GetParam().seed);

  std::map<std::string, std::vector<uint8_t>> persistent_model;
  // Persistent FOM segments: path -> expected contents (fixed size).
  std::map<std::string, std::vector<uint8_t>> fom_model;
  int created = 0;
  Process* proc = nullptr;
  Process* fom_proc = nullptr;
  auto relaunch = [&] {
    auto launched = sys.Launch(Backend::kBaseline);
    O1_CHECK(launched.ok());
    proc = *launched;
    auto fom_launched = sys.Launch(Backend::kFom);
    O1_CHECK(fom_launched.ok());
    fom_proc = *fom_launched;
  };
  relaunch();

  for (int step = 0; step < 250; ++step) {
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 20 && created < 30) {
      const bool persistent = rng.NextBool(0.6);
      const std::string path = "/data/f" + std::to_string(created++);
      auto fd = sys.Creat(*proc, sys.pmfs(), path, FileFlags{.persistent = persistent});
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(sys.Close(*proc, *fd).ok());
      if (persistent) {
        persistent_model[path] = {};
      }
    } else if (dice < 55 && !persistent_model.empty()) {
      // Durable write through the file API.
      auto it = std::next(persistent_model.begin(),
                          static_cast<int>(rng.NextBelow(persistent_model.size())));
      auto fd = sys.Open(*proc, it->first);
      if (!fd.ok()) {
        continue;
      }
      const uint64_t offset = rng.NextBelow(32 * kKiB);
      std::vector<uint8_t> data(rng.NextInRange(1, 8 * kKiB));
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE(sys.Pwrite(*proc, *fd, offset, data).ok());
      ASSERT_TRUE(sys.Close(*proc, *fd).ok());
      auto& bytes = it->second;
      if (bytes.size() < offset + data.size()) {
        bytes.resize(offset + data.size(), 0);
      }
      std::copy(data.begin(), data.end(), bytes.begin() + static_cast<std::ptrdiff_t>(offset));
    } else if (dice < 65 && !persistent_model.empty()) {
      // Rename a persistent file.
      auto it = std::next(persistent_model.begin(),
                          static_cast<int>(rng.NextBelow(persistent_model.size())));
      const std::string to = "/data/renamed" + std::to_string(created++);
      ASSERT_TRUE(sys.Rename(it->first, to).ok());
      auto node = persistent_model.extract(it);
      node.key() = to;
      persistent_model.insert(std::move(node));
    } else if (dice < 75 && !persistent_model.empty()) {
      // Delete a persistent file.
      auto it = std::next(persistent_model.begin(),
                          static_cast<int>(rng.NextBelow(persistent_model.size())));
      ASSERT_TRUE(sys.Unlink(it->first).ok());
      persistent_model.erase(it);
    } else if (dice < 80) {
      // FOM noise: volatile segments that should vanish at the crash.
      (void)sys.fom().CreateSegment("/tmp/noise" + std::to_string(created++),
                                    rng.NextInRange(1, 64) * kPageSize);
    } else if (dice < 85 && fom_model.size() < 8) {
      // Persistent FOM segment: created, mapped, filled through the DAX
      // mapping, persisted with a user-space flush, unmapped. Contents must
      // survive every later crash.
      const std::string path = "/data/seg" + std::to_string(created++);
      const uint64_t bytes = rng.NextInRange(1, 16) * kPageSize;
      auto seg = sys.fom().CreateSegment(
          path, bytes, SegmentOptions{.flags = {.persistent = true}});
      ASSERT_TRUE(seg.ok());
      auto va = sys.fom().Map(fom_proc->fom(), *seg, Prot::kReadWrite);
      ASSERT_TRUE(va.ok());
      std::vector<uint8_t> data(bytes);
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE(sys.UserWrite(*fom_proc, *va, data).ok());
      ASSERT_TRUE(sys.UserFlush(*fom_proc, *va, bytes).ok());
      ASSERT_TRUE(sys.fom().Unmap(fom_proc->fom(), *va).ok());
      fom_model[path] = std::move(data);
    } else if (dice < 92) {
      // CRASH.
      ASSERT_TRUE(sys.Crash().ok()) << "step " << step;
      ASSERT_TRUE(sys.pmfs().VerifyIntegrity().ok()) << "step " << step;
      relaunch();
      // Persistent files: exact contents. Everything else in /tmp: gone.
      for (const auto& [path, bytes] : persistent_model) {
        auto inode = sys.pmfs().LookupPath(path);
        ASSERT_TRUE(inode.ok()) << path << " lost at step " << step;
        std::vector<uint8_t> out(bytes.size());
        if (!bytes.empty()) {
          auto read = sys.pmfs().ReadAt(*inode, 0, out);
          ASSERT_TRUE(read.ok());
          ASSERT_EQ(*read, bytes.size());
          ASSERT_EQ(out, bytes) << path << " corrupted at step " << step;
        }
      }
      // FOM persistent segments: remap through the relaunched FOM process
      // and compare the DAX contents byte for byte.
      for (const auto& [path, bytes] : fom_model) {
        auto seg = sys.fom().OpenSegment(path);
        ASSERT_TRUE(seg.ok()) << path << " lost at step " << step;
        auto va = sys.fom().Map(fom_proc->fom(), *seg, Prot::kRead);
        ASSERT_TRUE(va.ok());
        std::vector<uint8_t> out(bytes.size());
        ASSERT_TRUE(sys.UserRead(*fom_proc, *va, out).ok());
        ASSERT_EQ(out, bytes) << path << " corrupted at step " << step;
        ASSERT_TRUE(sys.fom().Unmap(fom_proc->fom(), *va).ok());
      }
      for (const std::string& path : sys.pmfs().ListPaths()) {
        const bool sidecar = path.starts_with("/.fom/tables/");
        ASSERT_TRUE(persistent_model.contains(path) || fom_model.contains(path) || sidecar)
            << "unexpected survivor " << path << " at step " << step;
      }
    }
  }

  // The FOM process holds mapped-but-unlinked launch segments (code, heap,
  // stack) whose blocks have no path; exit it so the path walk below sees
  // every live block.
  ASSERT_TRUE(sys.Exit(fom_proc).ok());

  // Final accounting: free space equals the data-area capacity (the region
  // minus superblock + journal slots) minus what the model holds.
  uint64_t live = 0;
  for (const auto& [path, bytes] : persistent_model) {
    auto st = sys.pmfs().Stat(*sys.pmfs().LookupPath(path));
    ASSERT_TRUE(st.ok());
    live += st->allocated_bytes;
  }
  // Volatile segments may still be alive (no crash since creation), and FOM
  // segments/table sidecars hold blocks too; account them all.
  for (const std::string& path : sys.pmfs().ListPaths()) {
    if (!persistent_model.contains(path)) {
      live += sys.pmfs().Stat(*sys.pmfs().LookupPath(path))->allocated_bytes;
    }
  }
  EXPECT_EQ(sys.pmfs().free_bytes(), sys.pmfs().quota_bytes() - live);
  EXPECT_TRUE(sys.pmfs().VerifyIntegrity().ok());
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  return std::string(info.param.persistence == PersistenceModel::kAutoDurable ? "Auto"
                                                                              : "Strict") +
         "Seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashProperty,
    ::testing::Values(Param{PersistenceModel::kAutoDurable, 11},
                      Param{PersistenceModel::kAutoDurable, 22},
                      Param{PersistenceModel::kAutoDurable, 33},
                      Param{PersistenceModel::kExplicitFlush, 11},
                      Param{PersistenceModel::kExplicitFlush, 22},
                      Param{PersistenceModel::kExplicitFlush, 33}),
    ParamName);

}  // namespace
}  // namespace o1mem
